//===- CheckerService.cpp - The checker half of a verification run --------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Extracted verbatim from the monolithic Verifier: the demux, the checker
// pool, violation publication, forensics and snapshot cuts moved here so
// the same machinery can run behind a SegmentTransport in a separate
// checker process (vyrd-checkd). Operation order is preserved exactly —
// the in-process composition must keep record streams and reports
// bit-identical to the pre-split engine.
//
//===----------------------------------------------------------------------===//

#include "vyrd/CheckerService.h"

#include "vyrd/Ring.h"
#include "vyrd/Serialize.h"
#include "vyrd/Verifier.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <thread>

using namespace vyrd;

//===----------------------------------------------------------------------===//
// CheckerService::ObjectState / CheckerService::CheckerPool
//===----------------------------------------------------------------------===//

/// Everything one registered object owns: its spec, shadow state and
/// checker pipeline, plus the demux/pool bookkeeping.
struct CheckerService::ObjectState {
  ObjectId Id = 0;
  std::string Name;
  std::unique_ptr<Spec> S;
  std::unique_ptr<Replayer> R;
  CheckerConfig CheckerCfg;
  std::unique_ptr<RefinementChecker> Checker;
  /// Records routed to this object so far (driving thread only).
  uint64_t Routed = 0;

  // Pool scheduling state, guarded by CheckerPool::M. An object is
  // "scheduled" from the moment it enters the runnable queue until the
  // worker that picked it up finds its pending queue empty, so at most
  // one worker touches Checker at a time and batches are fed FIFO.
  // ChunkQueue (not a deque) so the steady state — a few batches deep —
  // cycles through the same cache-hot chunks with zero heap traffic.
  ChunkQueue<std::vector<Action>> PendingBatches;
  bool Scheduled = false;
  /// Checker violations already copied into CheckerService::Live
  /// (accessed only by the thread currently owning the checker, like
  /// Checker).
  size_t Published = 0;
  /// The object's forensic bundle has been flushed (first violation
  /// only; same ownership rule as Published).
  bool ForensicWritten = false;
  /// Records dispatched to this object and not yet fed (pending batches
  /// plus the batch a worker is feeding right now). Guarded by
  /// CheckerPool::M.
  uint64_t PendingRecs = 0;
  /// Every record with Seq < FedExclusive has been fed to the checker.
  /// Guarded by CheckerPool::M; meaningful while PendingRecs > 0 (an
  /// idle object is checked through everything routed to it).
  uint64_t FedExclusive = 0;
};

/// The verification worker pool. Scheduling unit: one object. dispatch()
/// enqueues a demuxed batch on the object and makes the object runnable
/// if it isn't already; a worker that picks up an object owns it — and
/// thereby its checker, exclusively — until it has drained every pending
/// batch. Per-object order is FIFO through PendingBatches; cross-object
/// parallelism is bounded by min(objects, workers).
class CheckerService::CheckerPool {
public:
  CheckerPool(CheckerService &S, unsigned NumWorkers)
      : S(S), BP(S.Opts.Backpressure) {
    Workers.reserve(NumWorkers);
    for (unsigned I = 0; I < NumWorkers; ++I)
      Workers.emplace_back([this] { workerMain(); });
  }

  ~CheckerPool() { drainAndJoin(); }

  /// Called by the driving thread only. Takes \p Batch and leaves a
  /// recycled (empty, capacity-bearing) vector in its place, so the pump
  /// and the workers circulate a bounded set of batch buffers instead of
  /// allocating a fresh one per dispatch.
  ///
  /// With backpressure enabled the total records pending across objects
  /// are bounded by MaxPendingRecords: BP_Block (and BP_SpillToDisk,
  /// which has nothing left to spill here — the records are already in
  /// memory) parks the pump until workers drain below the bound, so the
  /// pressure propagates back into the log; BP_Shed drops observer
  /// executions from the batch while over the bound. Admission is sliced
  /// at the free room, so occupancy never exceeds the bound (the old
  /// batch-granular path could overshoot by a whole pump batch — with
  /// adaptive batch sizing, by up to MaxBatch records).
  void dispatch(ObjectState &O, std::vector<Action> &Batch) {
    std::unique_lock Lock(M);
    const bool Dynamic = S.Ctl && S.Ctl->dynamicPolicy();
    auto Active = [&] {
      return Dynamic ? S.Ctl->policy() : BP.Policy;
    };
    if (BP.Enabled) {
      BackpressurePolicy P = Active();
      if ((P == BackpressurePolicy::BP_Shed || Dynamic) &&
          Shed.hasClassifier()) {
        // With a dynamic policy the filter runs under every rung (new
        // sheds only while BP_Shed is active and over the bound) so open
        // shed windows close whole across de-escalations.
        size_t Kept = 0;
        for (size_t I = 0; I < Batch.size(); ++I) {
          bool Over = P == BackpressurePolicy::BP_Shed &&
                      PendingRecs + Kept >= BP.MaxPendingRecords;
          if (Shed.shouldShed(Batch[I], Over)) {
            ++Stats.ShedRecords;
            continue;
          }
          if (Kept != I)
            Batch[Kept] = std::move(Batch[I]);
          ++Kept;
        }
        if (size_t ShedNow = Batch.size() - Kept; ShedNow && S.Telem)
          S.Telem->count(Counter::C_ShedRecords, ShedNow);
        Batch.resize(Kept);
        if (Batch.empty())
          return; // whole batch shed; buffer reused as-is next round
      }
    }
    const size_t Total = Batch.size();
    size_t Begin = 0;
    bool MovedWhole = false;
    // Enqueues Batch[Begin, Begin + N) and makes the object runnable.
    // A whole-batch slice moves the vector itself (the recycled-buffer
    // protocol with the pump); a partial slice moves the records into a
    // freelist buffer so the next slice can still wait for room.
    auto EnqueueLocked = [&](size_t N) {
      std::vector<Action> Slice;
      if (Begin == 0 && N == Total) {
        Slice = std::move(Batch);
        if (FreeBatches.empty()) {
          Batch = std::vector<Action>();
        } else {
          Batch = std::move(FreeBatches.back());
          FreeBatches.pop_back();
        }
        MovedWhole = true;
      } else {
        if (!FreeBatches.empty()) {
          Slice = std::move(FreeBatches.back());
          FreeBatches.pop_back();
        }
        Slice.insert(Slice.end(),
                     std::make_move_iterator(Batch.begin() + Begin),
                     std::make_move_iterator(Batch.begin() + Begin + N));
      }
      PendingRecs += N;
      O.PendingRecs += N;
      Stats.PendingRecordsHwm =
          std::max(Stats.PendingRecordsHwm, PendingRecs);
      if (S.Telem)
        S.Telem->gaugeAdd(Gauge::G_PendingRecords, N);
      O.PendingBatches.push_back(std::move(Slice));
      if (!O.Scheduled) {
        O.Scheduled = true;
        ++ActiveObjects;
        Runnable.push_back(&O);
        WorkCV.notify_one();
      }
    };
    while (Begin < Total) {
      size_t N = Total - Begin;
      if (BP.Enabled && Active() != BackpressurePolicy::BP_Shed) {
        if (PendingRecs >= BP.MaxPendingRecords) {
          uint64_t T0 = telemetryNowNanos();
          SpaceCV.wait(Lock, [&] {
            return PendingRecs < BP.MaxPendingRecords ||
                   Active() == BackpressurePolicy::BP_Shed;
          });
          uint64_t Waited = telemetryNowNanos() - T0;
          ++Stats.BlockedAppends;
          Stats.BlockedNanos += Waited;
          if (S.Telem) {
            S.Telem->count(Counter::C_BlockedAppends);
            S.Telem->cell().record(Histo::H_BlockedNs, Waited);
          }
          continue; // re-decide: room may be partial, policy may differ
        }
        N = std::min<size_t>(N, BP.MaxPendingRecords - PendingRecs);
      }
      EnqueueLocked(N);
      Begin += N;
    }
    if (!MovedWhole)
      Batch.clear(); // records moved out slice-by-slice; keep capacity
  }

  /// The sequence number below which every record dispatched to the pool
  /// has been fed to its checker, capped at \p Upper (the pump's routed
  /// frontier). The pump passes this to Log::reclaimCheckedPrefix.
  uint64_t checkedWatermark(uint64_t Upper) {
    std::lock_guard Lock(M);
    uint64_t W = Upper;
    for (const auto &O : S.Objects)
      if (O->PendingRecs)
        W = std::min(W, O->FedExclusive);
    return W;
  }

  /// Installs the observer classifier BP_Shed consults (same contract as
  /// Log::setShedClassifier). Call before the pump dispatches.
  void setShedClassifier(std::function<bool(const Action &)> Fn) {
    std::lock_guard Lock(M);
    Shed.setClassifier(std::move(Fn));
  }

  BackpressureStats stats() const {
    std::lock_guard Lock(M);
    return Stats;
  }

  /// Mid-run barrier: waits until every dispatched batch has been fed
  /// (snapshot cuts need all checkers aligned exactly on the cut). The
  /// pool keeps running — unlike drainAndJoin, the workers are not
  /// stopped. Driving thread only; since it is the sole dispatcher, no
  /// new work can race in while it waits here.
  void quiesce() {
    std::unique_lock Lock(M);
    IdleCV.wait(Lock, [&] { return ActiveObjects == 0; });
  }

  /// Waits until every dispatched batch has been checked, then stops and
  /// joins the workers. Called by the driving thread after the stream is
  /// drained (no dispatch() can race with it). Idempotent.
  void drainAndJoin() {
    {
      std::unique_lock Lock(M);
      if (Joined)
        return;
      IdleCV.wait(Lock, [&] { return ActiveObjects == 0; });
      Stopping = true;
      Joined = true;
    }
    WorkCV.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

private:
  void workerMain() {
    TelemetryCell *TC =
        telemetryCompiledIn() && S.Telem ? &S.Telem->cell() : nullptr;
    std::unique_lock Lock(M);
    while (true) {
      WorkCV.wait(Lock, [&] { return Stopping || !Runnable.empty(); });
      if (Runnable.empty())
        return; // Stopping, nothing left to do.
      ObjectState *O = Runnable.front();
      Runnable.pop_front();
      // Drain the object. Hand-offs between workers are synchronized by
      // M: the previous owner released it under M before this worker
      // claimed it, so the checker's single-threaded contract holds.
      while (true) {
        if (O->PendingBatches.empty()) {
          O->Scheduled = false;
          if (--ActiveObjects == 0)
            IdleCV.notify_all();
          break;
        }
        std::vector<Action> Batch = std::move(O->PendingBatches.front());
        O->PendingBatches.pop_front();
        Lock.unlock();
        S.feedObject(*O, Batch, TC);
        uint64_t BatchN = Batch.size();
        uint64_t BatchEnd = BatchN ? Batch.back().Seq + 1 : 0;
        // Release the records outside the lock; hand the empty buffer
        // (capacity intact) back to the pump via the freelist.
        Batch.clear();
        Lock.lock();
        // Account the batch as fed only now: until this point it was
        // neither pending nor checked, and the watermark must not
        // advance past records still being fed (a reclaimed segment
        // would strand a concurrent spill reader).
        if (BatchN) {
          O->FedExclusive = std::max(O->FedExclusive, BatchEnd);
          O->PendingRecs -= BatchN;
          PendingRecs -= BatchN;
          if (S.Telem)
            S.Telem->gaugeSub(Gauge::G_PendingRecords, BatchN);
          if (BP.Enabled)
            SpaceCV.notify_one();
        }
        if (FreeBatches.size() < MaxFreeBatches)
          FreeBatches.push_back(std::move(Batch));
      }
    }
  }

  CheckerService &S;
  const BackpressureConfig BP;
  mutable std::mutex M;
  std::condition_variable WorkCV; ///< workers wait for runnable objects
  std::condition_variable IdleCV; ///< drainAndJoin waits for quiescence
  std::condition_variable SpaceCV; ///< BP_Block: pump waits for room
  ShedFilter Shed;                 ///< BP_Shed windows (guarded by M)
  BackpressureStats Stats;         ///< admission accounting (guarded by M)
  /// Records pending across all objects (dispatched, not yet fed).
  uint64_t PendingRecs = 0;
  std::deque<ObjectState *> Runnable;
  /// Consumed batch buffers awaiting reuse by dispatch() (bounded so a
  /// burst cannot pin memory forever).
  static constexpr size_t MaxFreeBatches = 64;
  std::vector<std::vector<Action>> FreeBatches;
  /// Objects currently scheduled (runnable or being drained by a worker).
  size_t ActiveObjects = 0;
  bool Stopping = false;
  bool Joined = false;
  std::vector<std::thread> Workers;
};

//===----------------------------------------------------------------------===//
// CheckerService
//===----------------------------------------------------------------------===//

CheckerService::CheckerService(CheckerServiceOptions O) : Opts(std::move(O)) {}

CheckerService::~CheckerService() = default;

ObjectId CheckerService::addObject(std::string Name, std::unique_ptr<Spec> S,
                                   std::unique_ptr<Replayer> R,
                                   CheckerConfig CC) {
  assert(S && "addObject requires a specification");
  assert((R || CC.Mode != CheckMode::CM_ViewRefinement) &&
         "view refinement requires a replayer for the shadow state");
  auto O = std::make_unique<ObjectState>();
  O->Id = static_cast<ObjectId>(Objects.size());
  O->Name = std::move(Name);
  O->S = std::move(S);
  O->R = std::move(R);
  // Armed forensics imply a flight recorder; a config that set its own
  // depth keeps it.
  if (!Opts.ForensicPrefix.empty() && CC.FlightRecorderDepth == 0)
    CC.FlightRecorderDepth = 64;
  O->CheckerCfg = CC;
  O->Checker =
      std::make_unique<RefinementChecker>(*O->S, O->R.get(), O->CheckerCfg);
  O->Checker->setTelemetry(Telem);
  if (Telem)
    Telem->registerObject(O->Id, O->Name.empty()
                                     ? "object" + std::to_string(O->Id)
                                     : O->Name);
  if (Tracer && !O->Name.empty())
    Tracer->setObjectName(O->Id, O->Name);
  ObjectId Id = O->Id;
  Objects.push_back(std::move(O));
  return Id;
}

CheckMode CheckerService::objectMode(ObjectId Id) const {
  assert(Id < Objects.size() && "mode of unregistered object");
  return Objects[Id]->CheckerCfg.Mode;
}

bool CheckerService::isObserverCall(const Action &A) const {
  return A.Obj < Objects.size() && Objects[A.Obj]->S->isObserver(A.Method);
}

void CheckerService::startPool(unsigned NumWorkers) {
  assert(!Pool && "startPool called twice");
  Pool = std::make_unique<CheckerPool>(*this, NumWorkers);
}

void CheckerService::setShedClassifier(
    std::function<bool(const Action &)> Fn) {
  if (Pool)
    Pool->setShedClassifier(std::move(Fn));
}

void CheckerService::feedObject(ObjectState &O,
                                const std::vector<Action> &Batch,
                                TelemetryCell *TC) {
  uint64_t T0 = TC ? telemetryNowNanos() : 0;
  for (const Action &A : Batch)
    O.Checker->feed(A);
  if (TC) {
    TC->count(Counter::C_CheckerActions, Batch.size());
    TC->record(Histo::H_FeedBatch, Batch.size());
    TC->record(Histo::H_FeedNs, telemetryNowNanos() - T0);
  }
  if (Telem)
    Telem->noteObjectChecked(O.Id, Batch.size());
  if (O.Checker->hasViolation()) {
    ViolationFlag.store(true, std::memory_order_release);
    publishObjectViolations(O);
  }
}

void CheckerService::publishObjectViolations(ObjectState &O) {
  const std::vector<Violation> &Vs = O.Checker->violations();
  if (Vs.size() == O.Published)
    return;
  Name Tag = O.Name.empty() ? Name() : internName(O.Name);
  {
    std::lock_guard Lock(Live.M);
    for (size_t I = O.Published; I < Vs.size(); ++I) {
      Violation V = Vs[I];
      V.Obj = O.Id;
      V.Object = Tag;
      Live.Violations.push_back(std::move(V));
    }
  }
  O.Published = Vs.size();
  maybeWriteForensic(O);
}

void CheckerService::maybeWriteForensic(ObjectState &O) {
  if (Opts.ForensicPrefix.empty() || O.ForensicWritten)
    return;
  // First violation that captured a bundle (bundles are parallel to
  // violations; entries are empty when the flight recorder is off).
  const std::vector<std::string> &Bundles = O.Checker->forensics();
  const std::string *Bundle = nullptr;
  for (const std::string &B : Bundles)
    if (!B.empty()) {
      Bundle = &B;
      break;
    }
  if (!Bundle)
    return;
  O.ForensicWritten = true;
  std::string Label =
      O.Name.empty() ? "object" + std::to_string(O.Id) : O.Name;
  std::string Path =
      Opts.ForensicPrefix + "." + Label + ".forensic.json";
  std::string Doc = "{\"schema\":\"vyrd-forensic-v1\",\"object\":{\"id\":" +
                    std::to_string(O.Id) + ",\"name\":\"" +
                    jsonEscape(Label) + "\"},\"checker\":" + *Bundle +
                    "}\n";
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "vyrd: cannot write forensic bundle %s\n",
                 Path.c_str());
    return;
  }
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fclose(F);
  std::lock_guard Lock(Live.M);
  Live.ForensicFiles.push_back(std::move(Path));
}

void CheckerService::routeRange(std::vector<Action> &Batch, size_t Begin,
                                size_t End, TelemetryCell *TC) {
  if (Route.size() != Objects.size())
    Route.resize(Objects.size());
  for (size_t I = Begin; I < End; ++I) {
    Action &A = Batch[I];
    if (Tracer)
      Tracer->noteAction(A);
    if (A.Obj < Route.size()) {
      Route[A.Obj].push_back(std::move(A));
    } else {
      if (!UnroutedRecords)
        FirstUnroutedSeq = A.Seq;
      ++UnroutedRecords;
    }
  }
  for (size_t I = 0; I < Route.size(); ++I) {
    if (Route[I].empty())
      continue;
    ObjectState &O = *Objects[I];
    O.Routed += Route[I].size();
    if (Telem)
      Telem->noteObjectRouted(O.Id, Route[I].size());
    if (Pool) {
      // dispatch() swaps in a recycled empty buffer for the next round.
      Pool->dispatch(O, Route[I]);
    } else {
      feedObject(O, Route[I], TC);
      Route[I].clear();
    }
  }
}

uint64_t CheckerService::checkedWatermark(uint64_t Upper) {
  return Pool ? Pool->checkedWatermark(Upper) : Upper;
}

void CheckerService::quiesce() {
  if (Pool)
    Pool->quiesce();
}

void CheckerService::takeSnapshot(uint64_t SegIndex, uint64_t CutSeq) {
  if (Opts.SnapshotBase.empty())
    return;
  // Every record below the cut has been routed; with a pool, wait until
  // the workers have actually fed them, so the serialized state is the
  // checkers' state exactly at the cut.
  if (Pool)
    Pool->quiesce();
  SnapshotFile SF;
  SF.SegmentIndex = SegIndex;
  SF.Watermark = CutSeq;
  for (auto &O : Objects) {
    ByteWriter W;
    // A dirty checker (violation recorded, spec diverged) or a spec /
    // replayer without serialization support makes the whole cut
    // unsnapshottable: a partial sidecar could not seed a resume.
    if (!O->Checker->saveState(W)) {
      if (Telem)
        Telem->count(Counter::C_SnapshotSkips);
      return;
    }
    SnapshotObject SO;
    SO.Id = O->Id;
    SO.Name = O->Name;
    SO.Blob = W.buffer();
    SF.Objects.push_back(std::move(SO));
  }
  std::string Path = snapshotSidecarPath(Opts.SnapshotBase, SegIndex);
  if (!writeSnapshotFile(Path, SF)) {
    std::fprintf(stderr, "vyrd: cannot write snapshot sidecar %s\n",
                 Path.c_str());
    if (Telem)
      Telem->count(Counter::C_SnapshotSkips);
    return;
  }
  if (Telem)
    Telem->count(Counter::C_SnapshotWrites);
  if (Tracer)
    Tracer->noteVerifierInstant(CutSeq, "snapshot: segment " +
                                            std::to_string(SegIndex));
}

bool CheckerService::restoreFromSnapshot(const SnapshotFile &Snap,
                                         std::string &Err) {
  for (auto &O : Objects) {
    const SnapshotObject *SO = Snap.find(O->Id);
    if (!SO) {
      Err = "snapshot for segment " + std::to_string(Snap.SegmentIndex) +
            " carries no state for object " + std::to_string(O->Id);
      return false;
    }
    ByteReader Blob(SO->Blob.data(), SO->Blob.size());
    if (!O->Checker->restoreState(Blob)) {
      Err = "snapshot blob for object " + std::to_string(O->Id) +
            " does not restore (incompatible spec/replayer?)";
      return false;
    }
  }
  return true;
}

void CheckerService::finishChecking() {
  if (Finished)
    return;
  Finished = true;
  if (Pool)
    Pool->drainAndJoin();
  for (auto &O : Objects) {
    O->Checker->finish();
    if (O->Checker->hasViolation()) {
      ViolationFlag.store(true, std::memory_order_release);
      publishObjectViolations(*O);
    }
  }
}

void CheckerService::buildReport(VerifierReport &R) {
  for (auto &OS : Objects) {
    ObjectReport OR;
    OR.Id = OS->Id;
    OR.Name = OS->Name;
    OR.Stats = OS->Checker->stats();
    OR.Records = OS->Routed;
    OR.Violations = OS->Checker->violations();
    Name Tag = OS->Name.empty() ? Name() : internName(OS->Name);
    for (Violation &V : OR.Violations) {
      V.Obj = OS->Id;
      V.Object = Tag;
    }
    R.Stats.merge(OR.Stats);
    R.Violations.insert(R.Violations.end(), OR.Violations.begin(),
                        OR.Violations.end());
    R.Objects.push_back(std::move(OR));
  }
  // Merge the per-object violation lists back into witness order.
  sortViolationsBySeq(R.Violations);
  if (UnroutedRecords) {
    Violation V;
    V.Kind = ViolationKind::VK_Instrumentation;
    V.Seq = FirstUnroutedSeq;
    V.Message = std::to_string(UnroutedRecords) +
                " log records reference unregistered object ids (hooks "
                "outliving their verifier, or log corruption)";
    R.Violations.push_back(V);
    ViolationFlag.store(true, std::memory_order_release);
  }
}

void CheckerService::mergePoolStats(BackpressureStats &S) const {
  if (Pool)
    S.merge(Pool->stats());
}

std::vector<Violation> CheckerService::liveViolations() const {
  std::lock_guard Lock(Live.M);
  return Live.Violations;
}

std::vector<std::string> CheckerService::forensicFiles() const {
  std::lock_guard Lock(Live.M);
  return Live.ForensicFiles;
}

void CheckerService::addForensicFile(std::string Path) {
  std::lock_guard Lock(Live.M);
  Live.ForensicFiles.push_back(std::move(Path));
}
