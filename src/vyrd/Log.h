//===- Log.h - Execution logs connecting program and verifier --*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The log decouples the instrumented program from refinement checking
/// (Sec. 4.2): implementation threads append records as they run; the
/// verification thread reads them, concurrently (online) or afterwards
/// (offline). Three implementations are provided: MemoryLog (a guarded
/// queue), FileLog (durable binary file whose tail is kept in memory for
/// fast access, as in the paper), and BufferedLog (per-thread sharded
/// rings merged off the hot path; see BufferedLog.h).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_LOG_H
#define VYRD_LOG_H

#include "vyrd/Action.h"
#include "vyrd/Backpressure.h"
#include "vyrd/Ring.h"
#include "vyrd/Serialize.h"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vyrd {

class Telemetry;
class LogFileReader;

/// The producer side of a log: the handle instrumentation hooks append
/// through. Log itself is a LogWriter (append forwards to the log), and
/// sharded backends hand out one writer per producer thread so the hot
/// path never touches shared state (see Log::writer).
class LogWriter {
public:
  virtual ~LogWriter();

  /// Appends \p A, assigning its sequence number. The returned number is a
  /// total order consistent with the order appends become visible (the
  /// witness order the checker relies on).
  virtual uint64_t append(Action A) = 0;
};

/// Abstract append/consume log. Appends may come from many threads; records
/// are consumed in append order by a single reader.
class Log : public LogWriter {
public:
  ~Log() override;

  /// Marks the log complete. After close(), next() drains remaining records
  /// and then returns false. Idempotent. Must not race with appends: call
  /// it after the producer threads are done.
  virtual void close() = 0;

  /// Blocks until a record is available or the log is closed and drained.
  /// \returns false on end of log.
  virtual bool next(Action &Out) = 0;

  /// Non-blocking variant: returns false with \p End=false when no record is
  /// ready yet, and false with \p End=true at end of log.
  virtual bool tryNext(Action &Out, bool &End) = 0;

  /// Batch consumption: clears \p Out, blocks until at least one record is
  /// available (or end of log), then moves up to \p Max ready records into
  /// \p Out without further blocking. \returns false (with \p Out empty)
  /// only at end of log. Readers that batch amortize one wakeup and one
  /// lock round trip over the whole batch; the default implementation is
  /// built on next()/tryNext(), backends may override with something
  /// cheaper.
  virtual bool nextBatch(std::vector<Action> &Out, size_t Max);

  /// The append handle the calling thread should use. The default is the
  /// log itself (append is fully thread-safe); sharded backends return a
  /// per-thread handle registered on first use. The returned reference
  /// stays valid until the log is destroyed, but must only be used by the
  /// thread that called writer().
  virtual LogWriter &writer() { return *this; }

  /// Number of records appended so far.
  virtual uint64_t appendCount() const = 0;

  /// Bytes of serialized log produced so far (0 for purely in-memory logs).
  virtual uint64_t byteCount() const { return 0; }

  /// Attaches a telemetry hub: appends count Counter::C_LogAppends (with
  /// sampled Histo::H_AppendNs latencies) and BufferedLog's flusher feeds
  /// the flush-batch/occupancy metrics. Attach before producers start and
  /// keep \p T alive until the log is destroyed; pass nullptr to detach.
  void setTelemetry(Telemetry *T) {
    Telem.store(T, std::memory_order_release);
  }

  /// Admission counters of the backend's bounded stage. All zero for
  /// unbounded configurations (the base default).
  virtual BackpressureStats backpressureStats() const { return {}; }

  /// Subscribes the bounded stage to a dynamic admission policy: every
  /// admission decision reads the current BackpressurePolicy ordinal from
  /// \p Cell instead of the static BackpressureConfig::Policy. The
  /// AdaptiveController owns the cell (its escalation state); it must
  /// outlive the log. Install before producers start; null (the default)
  /// keeps the static policy.
  void setDynamicPolicy(const std::atomic<uint8_t> *Cell) {
    DynPolicy.store(Cell, std::memory_order_release);
  }

  /// Subscribes the backend's drain stage (BufferedLog's flusher emit
  /// quantum) to the adaptive batch target. Backends without a drain
  /// quantum ignore it. Same lifetime rules as setDynamicPolicy.
  void setBatchTargetHint(const std::atomic<size_t> *Cell) {
    BatchHint.store(Cell, std::memory_order_release);
  }

  /// Dynamic-policy nudge: called (from the pump thread) right after the
  /// installed policy cell changed, so producers parked on a
  /// policy-specific wait (BP_Block's space CV) re-evaluate under the new
  /// rung instead of waiting for the next room notification. Default
  /// no-op.
  virtual void onPolicyChange() {}

  /// Installs the observer classifier the BP_Shed policy consults (see
  /// ShedFilter::setClassifier). Must be called before producers start;
  /// without a classifier BP_Shed sheds nothing. No-op on backends
  /// without a bounded stage.
  virtual void setShedClassifier(std::function<bool(const Action &)> Fn) {
    (void)Fn;
  }

  /// Checked-prefix reclamation: every record with Seq < \p Watermark has
  /// been fully checked and will never be read again. Segmented
  /// file-backed logs delete covered segment files; other backends
  /// ignore it. Called from the verification (pump) thread.
  virtual void reclaimCheckedPrefix(uint64_t Watermark) { (void)Watermark; }

  /// Moves segment rotations performed since the last call into \p Out
  /// (appended, oldest first) — the cut points the Verifier snapshots
  /// checker state at (docs/SNAPSHOTS.md). Only segmented file-backed
  /// backends produce cuts; the default leaves \p Out unchanged. Called
  /// from the verification (pump) thread.
  virtual void takeSegmentCuts(std::vector<SegmentCut> &Out) { (void)Out; }

protected:
  /// The attached hub, or null. Hot paths should read it once and cache
  /// the per-thread cell.
  Telemetry *telemetry() const {
    return Telem.load(std::memory_order_acquire);
  }

  /// The admission policy currently in force: the dynamic cell's value
  /// when one is installed, the static configuration otherwise.
  BackpressurePolicy activePolicy(const BackpressureConfig &BP) const {
    const std::atomic<uint8_t> *C = DynPolicy.load(std::memory_order_acquire);
    return C ? static_cast<BackpressurePolicy>(
                   C->load(std::memory_order_relaxed))
             : BP.Policy;
  }

  /// Whether a dynamic policy cell is installed (the policy can change
  /// mid-run; spill-capable backends must then track their delivery
  /// frontier from the start — see FileLog).
  bool hasDynamicPolicy() const {
    return DynPolicy.load(std::memory_order_acquire) != nullptr;
  }

  /// The adaptive drain quantum, or \p Default when none is installed.
  size_t batchTargetHint(size_t Default) const {
    const std::atomic<size_t> *C = BatchHint.load(std::memory_order_acquire);
    return C ? C->load(std::memory_order_relaxed) : Default;
  }

private:
  std::atomic<Telemetry *> Telem{nullptr};
  std::atomic<const std::atomic<uint8_t> *> DynPolicy{nullptr};
  std::atomic<const std::atomic<size_t> *> BatchHint{nullptr};
};

/// In-memory log: a mutex-guarded queue with a condition variable for the
/// reader. Records are released as they are consumed. With a
/// BackpressureConfig the queue is bounded: BP_Block parks the producer
/// until the reader makes room, BP_Shed drops observer executions
/// (BP_SpillToDisk has no disk here and degrades to BP_Block — the
/// Verifier's validate() rejects the combination up front).
class MemoryLog : public Log {
public:
  MemoryLog();
  explicit MemoryLog(const BackpressureConfig &BP);
  ~MemoryLog() override;

  uint64_t append(Action A) override;
  void close() override;
  bool next(Action &Out) override;
  bool tryNext(Action &Out, bool &End) override;
  /// Bulk drain: one lock round trip and one producer wakeup for the
  /// whole batch instead of per record — the sync cost the adaptive
  /// batch target amortizes under backlog.
  bool nextBatch(std::vector<Action> &Out, size_t Max) override;
  uint64_t appendCount() const override;
  BackpressureStats backpressureStats() const override;
  void setShedClassifier(std::function<bool(const Action &)> Fn) override;
  void onPolicyChange() override;

private:
  bool overLimitLocked() const;
  void popLocked(Action &Out);

  mutable std::mutex M;
  std::condition_variable CV;
  /// BP_Block producers wait here; separate from CV so a room-making pop
  /// never wakes the reader and vice versa.
  std::condition_variable SpaceCV;
  ChunkQueue<Action> Q; // chunk-recycling: see Ring.h
  uint64_t NextSeq = 0;
  bool Closed = false;

  BackpressureConfig BP;
  ShedFilter Shed;        // guarded by M
  BackpressureStats Stats; // guarded by M
  uint64_t QueueBytes = 0; // estimated bytes Q pins (BP enabled only)
};

/// File-backed log. Every record is serialized and written to the file; the
/// encoded tail is also kept in an in-memory queue so the online reader does
/// not touch the disk (Sec. 4.2: "the log is a file whose tail is kept in
/// memory for faster access"). The file can be re-read later with
/// loadLogFile for post-mortem checking.
///
/// With a BackpressureConfig the in-memory tail is bounded. BP_Block
/// parks the producer; BP_SpillToDisk stops retaining over-limit records
/// in the tail (they are on disk anyway) and the reader re-reads the
/// spilled region through a tailing LogFileReader when it catches up;
/// BP_Shed drops observer executions from the tail only — the disk log
/// stays complete for post-mortem re-checking, the accounting says
/// exactly what the online checker did not see. SegmentBytes > 0 rotates
/// the output into a segment chain (SegmentSink) that
/// reclaimCheckedPrefix() trims as checkers advance.
class FileLog : public Log {
public:
  /// Creates/truncates \p Path. \p Valid reports whether the file opened.
  /// With \p RetainTail false no in-memory tail is kept (next() then only
  /// reports end-of-log after close): use for logging-only measurement
  /// runs where nothing consumes the log online.
  FileLog(const std::string &Path, bool &Valid, bool RetainTail = true);
  FileLog(const std::string &Path, bool &Valid, const BackpressureConfig &BP,
          bool RetainTail = true);
  ~FileLog() override;

  uint64_t append(Action A) override;
  void close() override;
  bool next(Action &Out) override;
  bool tryNext(Action &Out, bool &End) override;
  uint64_t appendCount() const override;
  uint64_t byteCount() const override;
  BackpressureStats backpressureStats() const override;
  void setShedClassifier(std::function<bool(const Action &)> Fn) override;
  void onPolicyChange() override;
  void reclaimCheckedPrefix(uint64_t Watermark) override;
  void takeSegmentCuts(std::vector<SegmentCut> &Out) override;

  const std::string &path() const { return Path; }

private:
  bool overLimitLocked() const;
  bool readyLocked() const;
  bool spillCapable() const;
  void admitTailLocked(std::unique_lock<std::mutex> &Lock, Action &&A);
  bool tryNextLocked(Action &Out, bool &End);
  bool spillNextLocked(Action &Out);
  void popTailLocked(Action &Out);
  void noteShedGapLocked(uint64_t Seq);

  std::string Path;
  SegmentSink Sink; ///< the disk side: file(s), encoder, rotation

  mutable std::mutex M;
  std::condition_variable CV;
  std::condition_variable SpaceCV; // BP_Block producers wait for room
  ChunkQueue<Action> Tail; // decoded tail for the online reader
  uint64_t NextSeq = 0;
  bool Closed = false;
  bool RetainTail = true;

  BackpressureConfig BP;
  ShedFilter Shed;         // guarded by M
  BackpressureStats Stats; // guarded by M
  uint64_t TailBytes = 0;  // estimated bytes Tail pins (BP enabled only)
  /// Spill bookkeeping (guarded by M): the next sequence number the
  /// reader delivers, and the catch-up reader over the sink's file(s)
  /// positioned so its next record is SpillNextSeq.
  uint64_t Delivered = 0;
  std::unique_ptr<LogFileReader> SpillReader;
  uint64_t SpillNextSeq = 0;
  bool SpillFailed = false; // latched on corrupt spilled region
  /// Seq ranges [first, second) dropped by BP_Shed while spill-capable
  /// (dynamic policy): those records exist on disk, so the catch-up
  /// reader must skip them instead of resurrecting them as spill
  /// deliveries. Sheds are bursty, so the ranges stay few; entries below
  /// Delivered are pruned as the reader passes them. Guarded by M.
  std::vector<std::pair<uint64_t, uint64_t>> ShedGaps;
  /// Segment telemetry deltas already forwarded (pump thread only).
  uint64_t SegCreatedSeen = 0;
  uint64_t SegReclaimedSeen = 0;
};

/// Streaming reader over a log file produced by FileLog/BufferedLog:
/// decodes one record at a time out of a bounded read window, so multi-GB
/// logs are processed in O(window) memory. loadLogFile and
/// `vyrd-logdump --stats` are built on it; the window only grows when a
/// single record is larger than it.
///
/// Segment chains (docs/LOGFORMAT.md, v4) are walked transparently: a
/// file carrying a segment header continues into `base.<index+1>` when
/// the current segment is exhausted, and opening a chain's *base* path
/// that does not exist itself falls back to the earliest live segment.
/// Rotation order guarantees a successor's existence proves its
/// predecessor is complete on disk, so leftover undecodable bytes before
/// a successor are real corruption.
///
/// Tailing mode (setTailing) reads a file a writer is still appending
/// to: end-of-file is treated as "no more data *yet*" — next() returns
/// false without latching EOF or flagging a record truncated at the
/// write frontier as malformed, and a later call re-probes the file and
/// the chain. FileLog/BufferedLog spill readers run in this mode.
class LogFileReader {
public:
  explicit LogFileReader(const std::string &Path);
  ~LogFileReader();

  LogFileReader(const LogFileReader &) = delete;
  LogFileReader &operator=(const LogFileReader &) = delete;

  /// False when the file could not be opened or its header is malformed.
  bool valid() const { return File && !Malformed; }
  /// The stream's format version (meaningful while valid()).
  uint32_t version() const { return Version; }
  /// True once undecodable (or mid-record truncated) bytes were hit.
  bool malformed() const { return Malformed; }
  /// Encoded bytes consumed so far (progress reporting on huge logs).
  uint64_t bytesConsumed() const { return Consumed; }
  /// Chain index of the segment currently being read (0 outside chains).
  uint64_t segmentIndex() const { return ChainIndex; }

  /// See the class comment; must be set before the first next() that
  /// could hit end-of-file.
  void setTailing(bool T) { Tailing = T; }

  /// Decodes the next record into \p Out. \returns false at clean end of
  /// file (of the whole chain), on malformed input — distinguish via
  /// malformed() — or, in tailing mode, when no complete record is
  /// available yet.
  bool next(Action &Out);

private:
  void refill();
  bool advanceSegment();

  std::FILE *File = nullptr;
  ActionDecoder Decoder;
  std::vector<uint8_t> Buf; ///< undecoded window is [Start, End)
  size_t Start = 0;
  size_t End = 0;
  uint64_t Consumed = 0;
  uint32_t Version = 1;
  bool Eof = false;
  bool Malformed = false;
  bool Tailing = false;
  /// Non-empty while walking a segment chain: the chain's base path and
  /// the 1-based index of the segment currently open.
  std::string ChainBase;
  uint64_t ChainIndex = 0;
};

/// Decodes all records of a log file previously produced by FileLog.
/// \returns false if the file cannot be read or is malformed.
bool loadLogFile(const std::string &Path, std::vector<Action> &Out);

} // namespace vyrd

#endif // VYRD_LOG_H
