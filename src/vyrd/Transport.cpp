//===- Transport.cpp - Shipping closed log segments across processes ------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Transport.h"

#include "vyrd/Backpressure.h"
#include "vyrd/CheckerService.h"
#include "vyrd/Serialize.h"
#include "vyrd/Snapshot.h"
#include "vyrd/Telemetry.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vyrd;

//===----------------------------------------------------------------------===//
// Endpoint parsing
//===----------------------------------------------------------------------===//

size_t vyrd::maxUnixSocketPathLen() {
  return sizeof(sockaddr_un::sun_path) - 1;
}

bool vyrd::parseShipEndpoint(const std::string &Spec, ShipEndpoint &Out,
                             std::string &Err) {
  if (Spec.rfind("unix:", 0) == 0) {
    Out.IsUnix = true;
    Out.Path = Spec.substr(5);
    if (Out.Path.empty()) {
      Err = "unix endpoint needs a socket path (unix:<path>)";
      return false;
    }
    if (Out.Path.size() > maxUnixSocketPathLen()) {
      Err = "unix socket path exceeds the sockaddr_un limit of " +
            std::to_string(maxUnixSocketPathLen()) + " bytes: " + Out.Path;
      return false;
    }
    return true;
  }
  if (Spec.rfind("tcp:", 0) == 0) {
    std::string Rest = Spec.substr(4);
    size_t Colon = Rest.rfind(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 == Rest.size()) {
      Err = "tcp endpoint needs host and port (tcp:<host>:<port>)";
      return false;
    }
    Out.IsUnix = false;
    Out.Host = Rest.substr(0, Colon);
    std::string PortStr = Rest.substr(Colon + 1);
    char *End = nullptr;
    unsigned long P = std::strtoul(PortStr.c_str(), &End, 10);
    if (!End || *End != '\0' || P == 0 || P > 65535) {
      Err = "tcp endpoint port must be in [1, 65535]: " + PortStr;
      return false;
    }
    Out.Port = static_cast<uint16_t>(P);
    return true;
  }
  Err = "unknown endpoint scheme (use unix:<path> or tcp:<host>:<port>): " +
        Spec;
  return false;
}

//===----------------------------------------------------------------------===//
// Wire framing
//===----------------------------------------------------------------------===//

namespace {

/// CRC-32 lookup table (IEEE 802.3 / zlib polynomial, reflected).
const uint32_t *crcTable() {
  static uint32_t Table[256];
  static bool Init = [] {
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      Table[I] = C;
    }
    return true;
  }();
  (void)Init;
  return Table;
}

uint32_t readLE32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | static_cast<uint32_t>(P[1]) << 8 |
         static_cast<uint32_t>(P[2]) << 16 |
         static_cast<uint32_t>(P[3]) << 24;
}

void appendLE32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V & 0xFF));
  Out.push_back(static_cast<char>((V >> 8) & 0xFF));
  Out.push_back(static_cast<char>((V >> 16) & 0xFF));
  Out.push_back(static_cast<char>((V >> 24) & 0xFF));
}

} // namespace

uint32_t wire::crc32(const void *Data, size_t Len, uint32_t Seed) {
  const uint32_t *T = crcTable();
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint32_t C = ~Seed;
  for (size_t I = 0; I < Len; ++I)
    C = T[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return ~C;
}

void wire::appendFrame(std::string &Out, uint8_t Type, const void *Payload,
                       size_t Len) {
  Out.append(reinterpret_cast<const char *>(FrameMagic), 4);
  Out.push_back(static_cast<char>(Type));
  appendLE32(Out, static_cast<uint32_t>(Len));
  Out.append(static_cast<const char *>(Payload), Len);
  uint32_t C = crc32(&Type, 1);
  C = crc32(Payload, Len, C);
  appendLE32(Out, C);
}

void wire::FrameParser::feed(const void *Data, size_t Len) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  Buf.insert(Buf.end(), P, P + Len);
}

bool wire::FrameParser::scanToMagic() {
  size_t Start = Pos;
  while (Pos + sizeof(FrameMagic) <= Buf.size() &&
         std::memcmp(Buf.data() + Pos, FrameMagic, sizeof(FrameMagic)) != 0)
    ++Pos;
  if (Pos != Start)
    ++Resyncs;
  return Pos + sizeof(FrameMagic) <= Buf.size();
}

bool wire::FrameParser::next(Frame &Out) {
  // Frame layout: magic[4] type[1] len[4] payload[len] crc[4].
  constexpr size_t HeaderBytes = 9;
  for (;;) {
    bool HaveMagic = scanToMagic();
    if (!HaveMagic || Buf.size() - Pos < HeaderBytes)
      break; // need more bytes (or final <4-byte tail)
    uint8_t Type = Buf[Pos + 4];
    uint32_t Len = readLE32(Buf.data() + Pos + 5);
    if (Len > MaxFramePayload) {
      // Not a real frame (corrupt length would make us wait forever for
      // bytes that never come): treat the magic as coincidental and scan
      // on from the next byte.
      ++CrcErrors;
      ++Pos;
      continue;
    }
    size_t Total = HeaderBytes + static_cast<size_t>(Len) + 4;
    if (Buf.size() - Pos < Total)
      break; // frame still in flight
    uint32_t C = crc32(&Buf[Pos + 4], 1);
    C = crc32(Buf.data() + Pos + HeaderBytes, Len, C);
    if (C != readLE32(Buf.data() + Pos + HeaderBytes + Len)) {
      ++CrcErrors;
      ++Pos;
      continue;
    }
    Out.Type = Type;
    Out.Payload.assign(Buf.begin() + Pos + HeaderBytes,
                       Buf.begin() + Pos + HeaderBytes + Len);
    Pos += Total;
    if (Pos == Buf.size() || Pos >= (64u << 10)) {
      Buf.erase(Buf.begin(), Buf.begin() + Pos);
      Pos = 0;
    }
    return true;
  }
  if (Pos) {
    Buf.erase(Buf.begin(), Buf.begin() + Pos);
    Pos = 0;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// SegmentTransport / InProcessTransport
//===----------------------------------------------------------------------===//

SegmentTransport::~SegmentTransport() = default;

namespace {

/// Reads a whole file. \returns false when it cannot be opened/read.
bool readFileImage(const std::string &Path, std::vector<uint8_t> &Out) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  if (Size < 0) {
    std::fclose(F);
    return false;
  }
  std::fseek(F, 0, SEEK_SET);
  Out.resize(static_cast<size_t>(Size));
  size_t N = Size ? std::fread(Out.data(), 1, Out.size(), F) : 0;
  std::fclose(F);
  return N == Out.size();
}

/// Decodes a whole segment (or plain-log) image into \p Batch. \returns
/// false on a bad header or a record that does not decode (a truncated
/// tail); records decoded up to that point are kept.
bool decodeSegmentImage(const std::vector<uint8_t> &Img,
                        std::vector<Action> &Batch, LogSegmentInfo &SegInfo) {
  ByteReader R(Img.data(), Img.size());
  uint32_t V = readLogHeader(R, &SegInfo);
  if (V == 0)
    return false;
  ActionDecoder D;
  D.setVersion(V);
  Action A;
  while (D.decode(R, A))
    Batch.push_back(A);
  return R.atEnd();
}

} // namespace

InProcessTransport::InProcessTransport(CheckerService &Svc) : Svc(Svc) {}

bool InProcessTransport::shipSegment(const ShipSegmentInfo &Seg) {
  if (!Healthy)
    return false;
  std::vector<uint8_t> Img;
  if (!readFileImage(Seg.Path, Img)) {
    Healthy = false;
    return false;
  }
  std::vector<Action> Batch;
  LogSegmentInfo SegInfo;
  bool Clean = decodeSegmentImage(Img, Batch, SegInfo);
  if (First) {
    First = false;
    if (SegInfo.FirstSeq > 0) {
      // Mid-chain start: the records before this segment are gone, so
      // the checkers must be seeded from the sidecar or the feed would
      // be unsound.
      SnapshotFile SF;
      std::string Err;
      if (Seg.SnapPath.empty() || !readSnapshotFile(Seg.SnapPath, SF) ||
          !Svc.restoreFromSnapshot(SF, Err)) {
        Healthy = false;
        return false;
      }
    }
  }
  if (!Batch.empty()) {
    uint64_t End = Batch.back().Seq + 1;
    Svc.routeRange(Batch, 0, Batch.size(), nullptr);
    Acked.store(End, std::memory_order_release);
    ++St.Acks;
  }
  ++St.Segments;
  St.Bytes += Img.size();
  if (!Clean) {
    Healthy = false;
    return false;
  }
  return true;
}

bool InProcessTransport::shipClose(uint64_t FinalSeqExclusive, unsigned) {
  Svc.finishChecking();
  Acked.store(FinalSeqExclusive, std::memory_order_release);
  ++St.Acks;
  return Healthy;
}

//===----------------------------------------------------------------------===//
// SocketTransport
//===----------------------------------------------------------------------===//

SocketTransport::SocketTransport(const ShipperOptions &O, Telemetry *Telem)
    : Opts(O), Telem(Telem) {
  std::string Err;
  if (!parseShipEndpoint(Opts.Endpoint, Ep, Err)) {
    std::fprintf(stderr, "vyrd: bad ship endpoint: %s\n", Err.c_str());
    Healthy.store(false, std::memory_order_release);
  }
}

SocketTransport::~SocketTransport() { dropConnection(); }

void SocketTransport::dropConnection() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  // A reconnect starts a fresh byte stream; stale half-frames must not
  // poison it.
  Parser = wire::FrameParser();
}

bool SocketTransport::connectOnce() {
  int S = -1;
  if (Ep.IsUnix) {
    S = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (S < 0)
      return false;
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Ep.Path.c_str(), sizeof(Addr.sun_path) - 1);
    if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      ::close(S);
      return false;
    }
  } else {
    addrinfo Hints;
    std::memset(&Hints, 0, sizeof(Hints));
    Hints.ai_family = AF_UNSPEC;
    Hints.ai_socktype = SOCK_STREAM;
    addrinfo *Res = nullptr;
    if (::getaddrinfo(Ep.Host.c_str(), std::to_string(Ep.Port).c_str(),
                      &Hints, &Res) != 0)
      return false;
    for (addrinfo *AI = Res; AI; AI = AI->ai_next) {
      S = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
      if (S < 0)
        continue;
      if (::connect(S, AI->ai_addr, AI->ai_addrlen) == 0)
        break;
      ::close(S);
      S = -1;
    }
    ::freeaddrinfo(Res);
    if (S < 0)
      return false;
  }
  Fd = S;
  // (Re-)open the session. On a resume the receiver recognizes the
  // stream name, skips already-fed records and re-acks its watermark.
  ByteWriter W;
  W.str(Opts.StreamName.empty() ? "stream" : Opts.StreamName);
  W.str(Opts.Program);
  W.u8(Opts.ViewLevel ? 1 : 0);
  std::string Out;
  wire::appendFrame(Out, wire::FT_Hello, W.buffer().data(), W.size());
  if (!sendAll(Out)) {
    dropConnection();
    return false;
  }
  return true;
}

bool SocketTransport::ensureConnected() {
  return Fd >= 0 || connectOnce();
}

bool SocketTransport::sendAll(const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

void SocketTransport::handleFrame(const wire::Frame &F) {
  if (F.Type != wire::FT_WatermarkAck)
    return;
  ByteReader R(F.Payload.data(), F.Payload.size());
  uint64_t W = R.varint();
  if (!R.ok())
    return;
  if (W > Acked.load(std::memory_order_acquire)) {
    Acked.store(W, std::memory_order_release);
    if (Telem)
      Telem->gaugeSet(Gauge::G_ShipAckedWatermark, W);
  }
  {
    std::lock_guard Lock(M);
    ++St.Acks;
  }
  if (Telem)
    Telem->count(Counter::C_ShipAcks);
}

void SocketTransport::drainAcks() {
  if (Fd < 0)
    return;
  uint8_t Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), MSG_DONTWAIT);
    if (N > 0) {
      Parser.feed(Buf, static_cast<size_t>(N));
      wire::Frame F;
      while (Parser.next(F))
        handleFrame(F);
      continue;
    }
    if (N == 0) {
      dropConnection(); // peer closed
      return;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    dropConnection();
    return;
  }
}

void SocketTransport::backoffSleep(unsigned Attempt) {
  uint64_t Ms = Opts.BackoffInitialMs ? Opts.BackoffInitialMs : 1;
  for (unsigned I = 1; I < Attempt; ++I) {
    Ms *= 2;
    if (Ms >= Opts.BackoffCapMs)
      break;
  }
  if (Opts.BackoffCapMs && Ms > Opts.BackoffCapMs)
    Ms = Opts.BackoffCapMs;
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

bool SocketTransport::sendSegmentOnce(const ShipSegmentInfo &Seg,
                                      uint64_t &BytesOut) {
  BytesOut = 0;
  // The sidecar travels first so a receiver picking the chain up
  // mid-stream can seed its checkers before the segment's records.
  if (!Seg.SnapPath.empty()) {
    std::vector<uint8_t> Snap;
    if (readFileImage(Seg.SnapPath, Snap)) {
      ByteWriter W;
      W.varint(Seg.Index);
      W.bytes(Snap.data(), Snap.size());
      std::string Out;
      wire::appendFrame(Out, wire::FT_Snapshot, W.buffer().data(), W.size());
      if (!sendAll(Out))
        return false;
      BytesOut += Snap.size();
    }
  }
  std::vector<uint8_t> Img;
  if (!readFileImage(Seg.Path, Img))
    return false;
  {
    ByteWriter W;
    W.varint(Seg.Index);
    W.varint(Img.size());
    std::string Out;
    wire::appendFrame(Out, wire::FT_SegmentBegin, W.buffer().data(), W.size());
    if (!sendAll(Out))
      return false;
  }
  for (size_t Off = 0; Off < Img.size(); Off += wire::ChunkBytes) {
    size_t N = std::min(wire::ChunkBytes, Img.size() - Off);
    std::string Out;
    wire::appendFrame(Out, wire::FT_SegmentChunk, Img.data() + Off, N);
    if (!sendAll(Out))
      return false;
  }
  {
    ByteWriter W;
    W.varint(Seg.Index);
    std::string Out;
    wire::appendFrame(Out, wire::FT_SegmentEnd, W.buffer().data(), W.size());
    if (!sendAll(Out))
      return false;
  }
  BytesOut += Img.size();
  return true;
}

bool SocketTransport::shipSegment(const ShipSegmentInfo &Seg) {
  if (!healthy())
    return false;
  unsigned Attempt = 0;
  for (;;) {
    uint64_t Bytes = 0;
    if (ensureConnected() && sendSegmentOnce(Seg, Bytes)) {
      {
        std::lock_guard Lock(M);
        ++St.Segments;
        St.Bytes += Bytes;
      }
      if (Telem) {
        Telem->count(Counter::C_ShipSegments);
        Telem->count(Counter::C_ShipBytes, Bytes);
      }
      drainAcks();
      return true;
    }
    // A connection that died mid-segment restarts the whole segment:
    // the receiver drops its partial assembly at the next SegmentBegin.
    dropConnection();
    if (Attempt >= Opts.MaxRetries)
      break;
    ++Attempt;
    {
      std::lock_guard Lock(M);
      ++St.Retries;
    }
    if (Telem)
      Telem->count(Counter::C_ShipRetries);
    backoffSleep(Attempt);
  }
  Healthy.store(false, std::memory_order_release);
  return false;
}

bool SocketTransport::shipClose(uint64_t FinalSeqExclusive,
                                unsigned TimeoutMs) {
  if (!healthy())
    return false;
  ByteWriter W;
  W.varint(FinalSeqExclusive);
  std::string Out;
  wire::appendFrame(Out, wire::FT_Close, W.buffer().data(), W.size());
  unsigned Attempt = 0;
  for (;;) {
    if (ensureConnected() && sendAll(Out))
      break;
    dropConnection();
    if (Attempt >= Opts.MaxRetries) {
      Healthy.store(false, std::memory_order_release);
      return false;
    }
    ++Attempt;
    {
      std::lock_guard Lock(M);
      ++St.Retries;
    }
    if (Telem)
      Telem->count(Counter::C_ShipRetries);
    backoffSleep(Attempt);
  }
  if (!waitForAck(FinalSeqExclusive, TimeoutMs)) {
    Healthy.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

bool SocketTransport::waitForAck(uint64_t Target, unsigned TimeoutMs) {
  uint64_t Deadline =
      telemetryNowNanos() + static_cast<uint64_t>(TimeoutMs) * 1000000;
  for (;;) {
    drainAcks();
    if (Acked.load(std::memory_order_acquire) >= Target)
      return true;
    uint64_t Now = telemetryNowNanos();
    if (Now >= Deadline)
      return false;
    uint64_t LeftMs = (Deadline - Now) / 1000000 + 1;
    if (Fd < 0) {
      // Reconnect so the receiver's Hello-resume path re-acks; back off
      // briefly when it refuses.
      if (!connectOnce())
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<uint64_t>(LeftMs, 20)));
      continue;
    }
    pollfd P{Fd, POLLIN, 0};
    ::poll(&P, 1, static_cast<int>(std::min<uint64_t>(LeftMs, 100)));
  }
}

SegmentTransport::Stats SocketTransport::stats() const {
  std::lock_guard Lock(M);
  return St;
}

//===----------------------------------------------------------------------===//
// SegmentShipper / shipChain
//===----------------------------------------------------------------------===//

SegmentShipper::SegmentShipper(SegmentTransport &T, const std::string &Base,
                               Telemetry *Telem)
    : T(T), Base(Base), Telem(Telem) {}

void SegmentShipper::shipIndex(uint64_t Index) {
  ShipSegmentInfo Info;
  Info.Index = Index;
  Info.Path = logSegmentPath(Base, Index);
  std::string Snap = snapshotSidecarPath(Base, Index);
  struct stat Sb;
  if (::stat(Snap.c_str(), &Sb) == 0)
    Info.SnapPath = std::move(Snap);
  if (T.shipSegment(Info))
    ++Shipped;
}

void SegmentShipper::noteCut(uint64_t CutIndex) {
  if (CutIndex <= OpenIndex)
    return;
  if (Telem)
    Telem->gaugeSet(Gauge::G_ShipUnshippedSegments, CutIndex - OpenIndex);
  while (OpenIndex < CutIndex) {
    if (!T.healthy())
      return; // degrade path owns the surviving chain from here
    shipIndex(OpenIndex);
    ++OpenIndex;
    if (Telem)
      Telem->gaugeSet(Gauge::G_ShipUnshippedSegments, CutIndex - OpenIndex);
  }
}

bool SegmentShipper::finish(uint64_t FinalSeqExclusive, unsigned TimeoutMs) {
  if (!T.healthy())
    return false;
  // The log is closed, so the segment that was still open at the last
  // cut is complete on disk now.
  shipIndex(OpenIndex);
  if (Telem)
    Telem->gaugeSet(Gauge::G_ShipUnshippedSegments, 0);
  if (!T.healthy())
    return false;
  return T.shipClose(FinalSeqExclusive, TimeoutMs);
}

bool vyrd::shipChain(const std::string &Base, SegmentTransport &T,
                     uint64_t FinalSeqExclusive, unsigned CloseTimeoutMs,
                     std::string &Err) {
  std::vector<ChainSegment> Chain;
  if (!enumerateChain(Base, Chain)) {
    Err = "no log chain found at " + Base;
    return false;
  }
  for (const ChainSegment &C : Chain) {
    ShipSegmentInfo Info;
    Info.Index = C.Index;
    Info.Path = C.Path;
    if (C.HasSnapshot)
      Info.SnapPath = snapshotSidecarPath(Base, C.Index);
    if (!T.shipSegment(Info)) {
      Err = "shipping " + C.Path + " to " + T.describe() + " failed";
      return false;
    }
  }
  if (!T.shipClose(FinalSeqExclusive, CloseTimeoutMs)) {
    Err = "close/final ack from " + T.describe() + " failed";
    return false;
  }
  return true;
}
