//===- Instrument.h - Hooks the implementation code calls -------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation side of VYRD (Sec. 6.1): small helper objects the
/// implementation code calls to record call/return/commit/write actions
/// into the log. Hooks are cheap no-ops when logging is disabled, and the
/// logging level controls whether write records (needed only for view
/// refinement) are emitted, so the Table 2 "I/O vs view logging overhead"
/// distinction falls out of one switch.
///
/// A hook must be invoked atomically with the action it records; in
/// practice the data structures call hooks while still holding the lock
/// that protects the recorded update, exactly as the paper prescribes.
///
/// This file also provides the chaos scheduler: seeded random yields at
/// hook and race points. On the paper's hardware, preemption provided the
/// interleaving diversity; on a single-core container the chaos points
/// restore it so the seeded races actually fire.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_INSTRUMENT_H
#define VYRD_INSTRUMENT_H

#include "vyrd/Action.h"
#include "vyrd/Log.h"
#include "vyrd/Telemetry.h"

#include <atomic>
#include <cstdint>

namespace vyrd {

/// How much the hooks record.
enum class LogLevel : uint8_t {
  /// Record nothing (measures the bare program).
  LL_None,
  /// Calls, returns, commits, commit-block brackets: enough for I/O
  /// refinement.
  LL_IO,
  /// Additionally record shared-variable writes and replay ops: enough for
  /// view refinement.
  LL_View,
};

/// Returns the calling thread's dense VYRD thread id (assigned on first
/// use, starting at 0). Ids are recycled: when a thread exits, its id
/// returns to a free-list and the next new thread adopts it, so everything
/// indexed by ThreadId (checker open-exec tables, BufferedLog shards)
/// stays bounded by the peak live-thread count under thread churn.
ThreadId currentTid();

/// Seeded random-yield injector. Global, cheap, disabled by default.
class Chaos {
public:
  /// Enables chaos with yield probability 1/\p Inverse at every chaos
  /// point. \p Seed makes runs reproducible per thread: every enable()
  /// starts a fresh session, and each thread's yield-decision stream is a
  /// pure function of (Seed, its ThreadId) from the session start.
  static void enable(uint32_t Inverse, uint64_t Seed);
  static void disable();

  /// A potential preemption point; implementations sprinkle these inside
  /// critical regions and races. \returns whether this point yielded, so
  /// tests can pin the decision sequence.
  static bool point();

private:
  static std::atomic<uint32_t> InverseProb;
  static std::atomic<uint64_t> BaseSeed;
  static std::atomic<uint64_t> Session;
};

/// The hook object shared by all threads operating on one verified data
/// structure instance. Copies are cheap (pointer + level).
///
/// Records are appended through the log's per-thread writer handle
/// (Log::writer), not Log::append: for sharded backends (BufferedLog) the
/// handle is the calling thread's own lock-free shard, so the hot path
/// performs no locking; for the mutex-guarded backends the handle is the
/// log itself and behaves exactly as a direct append.
class Hooks {
public:
  Hooks() : L(nullptr), Level(LogLevel::LL_None) {}
  Hooks(Log *L, LogLevel Level, Telemetry *T = nullptr, ObjectId Obj = 0)
      : L(L), Level(Level), Telem(T), Obj(Obj) {}

  LogLevel level() const { return Level; }
  bool enabled() const { return L && Level != LogLevel::LL_None; }
  /// Whether write/replay records are being collected.
  bool viewLevel() const { return L && Level == LogLevel::LL_View; }
  Log *log() const { return L; }
  /// The verified object every record emitted through this hook is stamped
  /// with (Verifier::registerObject hands out one Hooks per object).
  ObjectId object() const { return Obj; }

  void call(Name Method, ValueList Args) const {
    if (enabled())
      emit(Action::call(currentTid(), Method, std::move(Args)));
    Chaos::point();
  }
  void ret(Name Method, Value V) const {
    if (enabled())
      emit(Action::ret(currentTid(), Method, std::move(V)));
    Chaos::point();
  }
  void commit() const {
    if (enabled())
      emit(Action::commit(currentTid()));
  }
  void write(Name Var, Value V) const {
    if (viewLevel())
      emit(Action::write(currentTid(), Var, std::move(V)));
  }
  void replayOp(Name Op, ValueList Payload) const {
    if (viewLevel())
      emit(Action::replayOp(currentTid(), Op, std::move(Payload)));
  }
  void blockBegin() const {
    if (viewLevel())
      emit(Action::blockBegin(currentTid()));
  }
  void blockEnd() const {
    if (viewLevel())
      emit(Action::blockEnd(currentTid()));
  }

private:
  /// Appends via the calling thread's writer handle. The handle lookup is
  /// a thread-local cache hit for sharded backends and `return *this` for
  /// the others, so it stays on the fast path (as is the telemetry cell
  /// lookup when a hub is attached).
  void emit(Action A) const {
    if (telemetryCompiledIn() && Telem)
      Telem->count(Counter::C_HookRecords);
    A.Obj = Obj;
    L->writer().append(std::move(A));
  }

  Log *L;
  LogLevel Level;
  Telemetry *Telem = nullptr;
  ObjectId Obj = 0;
};

/// RAII bracket logging the call on construction and the return on
/// destruction (with the value set via setReturn).
class MethodScope {
public:
  MethodScope(const Hooks &H, Name Method, ValueList Args)
      : H(H), Method(Method) {
    H.call(Method, std::move(Args));
  }
  ~MethodScope() { H.ret(Method, Ret); }

  MethodScope(const MethodScope &) = delete;
  MethodScope &operator=(const MethodScope &) = delete;

  /// Records the value the method is about to return.
  void setReturn(Value V) { Ret = std::move(V); }

private:
  const Hooks &H;
  Name Method;
  Value Ret;
};

/// RAII commit block bracket (Sec. 5.2).
class CommitBlock {
public:
  explicit CommitBlock(const Hooks &H) : H(H) { H.blockBegin(); }
  ~CommitBlock() { H.blockEnd(); }

  CommitBlock(const CommitBlock &) = delete;
  CommitBlock &operator=(const CommitBlock &) = delete;

private:
  const Hooks &H;
};

} // namespace vyrd

#endif // VYRD_INSTRUMENT_H
