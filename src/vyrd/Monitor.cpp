//===- Monitor.cpp - Live introspection endpoint for a running verifier ---===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Monitor.h"

#include "vyrd/Value.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vyrd;

MonitorSource::~MonitorSource() = default;

//===----------------------------------------------------------------------===//
// MonitorRegistry
//===----------------------------------------------------------------------===//

void MonitorRegistry::add(const std::string &Name,
                          std::shared_ptr<MonitorSource> Src) {
  std::lock_guard<std::mutex> G(M);
  for (auto &E : Sources)
    if (E.first == Name) {
      E.second = std::move(Src);
      return;
    }
  Sources.emplace_back(Name, std::move(Src));
}

void MonitorRegistry::remove(const std::string &Name) {
  std::lock_guard<std::mutex> G(M);
  Sources.erase(std::remove_if(Sources.begin(), Sources.end(),
                               [&](const auto &E) {
                                 return E.first == Name;
                               }),
                Sources.end());
}

std::vector<std::string> MonitorRegistry::names() const {
  std::lock_guard<std::mutex> G(M);
  std::vector<std::string> Out;
  Out.reserve(Sources.size());
  for (const auto &E : Sources)
    Out.push_back(E.first);
  return Out;
}

std::shared_ptr<MonitorSource>
MonitorRegistry::resolve(const std::string &Name) const {
  std::lock_guard<std::mutex> G(M);
  for (const auto &E : Sources)
    if (E.first == Name)
      return E.second;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Response renderers
//===----------------------------------------------------------------------===//

namespace {

std::string objectLabel(const ObjectTelemetry &OT, size_t Index) {
  return OT.Name.empty() ? "object" + std::to_string(Index) : OT.Name;
}

std::string violationJson(const Violation &V) {
  char Buf[128];
  std::string Out = "{\"kind\":\"";
  Out += violationKindName(V.Kind);
  std::snprintf(Buf, sizeof(Buf), "\",\"seq\":%" PRIu64 ",\"tid\":%u",
                V.Seq, V.Tid);
  Out += Buf;
  Out += ",\"object\":\"";
  Out += jsonEscape(V.Object.valid() ? std::string(V.Object.str())
                                     : std::string());
  Out += "\",\"method\":\"";
  Out += jsonEscape(V.Method.valid() ? std::string(V.Method.str())
                                     : std::string());
  std::snprintf(Buf, sizeof(Buf), "\",\"methods_checked\":%" PRIu64,
                V.MethodsChecked);
  Out += Buf;
  Out += ",\"message\":\"" + jsonEscape(V.Message) + "\"}";
  return Out;
}

/// Violations attributed to object id \p Obj.
size_t violationsFor(const std::vector<Violation> &V, uint32_t Obj) {
  size_t N = 0;
  for (const Violation &X : V)
    N += X.Obj == Obj;
  return N;
}

} // namespace

const char *monitor::healthVerdict(const TelemetrySnapshot &S,
                                   size_t Violations) {
  if (Violations)
    return "violating";
  if (S.Stalled)
    return "stalled";
  if (S.counter(Counter::C_ShedRecords))
    return "degraded";
  return "ok";
}

std::string monitor::listJson(const TelemetrySnapshot &S,
                              const std::vector<Violation> &V) {
  char Buf[160];
  std::string Out = "{\"objects\":[";
  for (size_t O = 0; O < S.Objects.size(); ++O) {
    const ObjectTelemetry &OT = S.Objects[O];
    Out += O ? ",{" : "{";
    Out += "\"id\":" + std::to_string(O) + ",\"name\":\"" +
           jsonEscape(objectLabel(OT, O)) + "\"";
    std::snprintf(Buf, sizeof(Buf),
                  ",\"routed\":%" PRIu64 ",\"checked\":%" PRIu64
                  ",\"backlog\":%" PRIu64 ",\"violations\":%zu}",
                  OT.Routed, OT.Checked, OT.Backlog,
                  violationsFor(V, static_cast<uint32_t>(O)));
    Out += Buf;
  }
  Out += "]}";
  return Out;
}

std::string monitor::statsJson(const TelemetrySnapshot &S,
                               const std::vector<Violation> &V,
                               const std::vector<std::string> &Forensics) {
  // Wrap the telemetry JSON (already one object) with live-run fields.
  std::string Out = "{\"telemetry\":" + S.json();
  Out += ",\"health\":\"";
  Out += healthVerdict(S, V.size());
  Out += "\",\"violations\":" + std::to_string(V.size());
  Out += ",\"forensic_files\":[";
  for (size_t I = 0; I < Forensics.size(); ++I) {
    Out += I ? ",\"" : "\"";
    Out += jsonEscape(Forensics[I]) + "\"";
  }
  Out += "]}";
  return Out;
}

std::string monitor::violationsJson(const std::vector<Violation> &V) {
  std::string Out = "{\"violations\":[";
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      Out += ",";
    Out += violationJson(V[I]);
  }
  Out += "]}";
  return Out;
}

std::string monitor::healthJson(const TelemetrySnapshot &S,
                                const std::vector<Violation> &V) {
  char Buf[160];
  std::string Out = "{\"health\":\"";
  Out += healthVerdict(S, V.size());
  std::snprintf(Buf, sizeof(Buf),
                "\",\"violations\":%zu,\"checker_lag\":%" PRIu64
                ",\"stalled\":%s,\"shed_records\":%" PRIu64 "}",
                V.size(), S.CheckerLag, S.Stalled ? "true" : "false",
                S.counter(Counter::C_ShedRecords));
  Out += Buf;
  return Out;
}

std::string monitor::promText(const TelemetrySnapshot &S,
                              size_t Violations) {
  char Buf[192];
  std::string Out;
  // Counters: monotonically increasing -> _total counter metrics.
  for (size_t C = 0; C < NumCounters; ++C) {
    const char *N = counterName(static_cast<Counter>(C));
    std::snprintf(Buf, sizeof(Buf),
                  "# TYPE vyrd_%s_total counter\nvyrd_%s_total %" PRIu64
                  "\n",
                  N, N, S.Counters[C]);
    Out += Buf;
  }
  // Gauges: current level plus the all-time high-watermark.
  for (size_t G = 0; G < NumGauges; ++G) {
    const char *N = gaugeName(static_cast<Gauge>(G));
    std::snprintf(Buf, sizeof(Buf),
                  "# TYPE vyrd_%s gauge\nvyrd_%s %" PRIu64
                  "\nvyrd_%s_hwm %" PRIu64 "\n",
                  N, N, S.Gauges[G], N, S.GaugeHwms[G]);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "# TYPE vyrd_checker_lag gauge\nvyrd_checker_lag %" PRIu64
                "\n# TYPE vyrd_stalled gauge\nvyrd_stalled %d\n"
                "# TYPE vyrd_violations_total counter\n"
                "vyrd_violations_total %zu\n",
                S.CheckerLag, S.Stalled ? 1 : 0, Violations);
  Out += Buf;
  // Per-object pipeline counters, labelled by object name.
  for (size_t O = 0; O < S.Objects.size(); ++O) {
    const ObjectTelemetry &OT = S.Objects[O];
    std::string L = jsonEscape(objectLabel(OT, O)); // \" escapes suffice
    std::snprintf(Buf, sizeof(Buf),
                  "vyrd_object_routed_total{object=\"%s\"} %" PRIu64
                  "\nvyrd_object_checked_total{object=\"%s\"} %" PRIu64
                  "\nvyrd_object_backlog{object=\"%s\"} %" PRIu64 "\n",
                  L.c_str(), OT.Routed, L.c_str(), OT.Checked, L.c_str(),
                  OT.Backlog);
    Out += Buf;
  }
  // Histograms: cumulative buckets keyed by the power-of-two upper bound
  // (bucket B covers values of bit width B, so its bound is 2^B - 1).
  for (size_t H = 0; H < NumHistos; ++H) {
    const HistoSnapshot &HS = S.Histos[H];
    if (!HS.Count)
      continue;
    const char *N = histoName(static_cast<Histo>(H));
    std::snprintf(Buf, sizeof(Buf), "# TYPE vyrd_%s histogram\n", N);
    Out += Buf;
    uint64_t Cum = 0;
    size_t Last = 0;
    for (size_t B = 0; B < NumHistoBuckets; ++B)
      if (HS.Buckets[B])
        Last = B;
    for (size_t B = 0; B <= Last; ++B) {
      Cum += HS.Buckets[B];
      uint64_t Bound = B ? ((B >= 64 ? ~0ull : (1ull << B)) - 1) : 0;
      std::snprintf(Buf, sizeof(Buf),
                    "vyrd_%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", N,
                    Bound, Cum);
      Out += Buf;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "vyrd_%s_bucket{le=\"+Inf\"} %" PRIu64 "\nvyrd_%s_sum %"
                  PRIu64 "\nvyrd_%s_count %" PRIu64 "\n",
                  N, HS.Count, N, HS.Sum, N, HS.Count);
    Out += Buf;
  }
  return Out;
}

std::string monitor::topText(const TelemetrySnapshot &S,
                             const std::vector<Violation> &V) {
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                "vyrd: %s  lag=%" PRIu64 "  pending=%" PRIu64
                "  violations=%zu\n",
                healthVerdict(S, V.size()), S.CheckerLag,
                S.gauge(Gauge::G_PendingRecords), V.size());
  std::string Out = Buf;
  Out += S.str();
  for (const Violation &X : V) {
    Out += "  ! ";
    Out += X.str();
    Out += "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// MonitorServer
//===----------------------------------------------------------------------===//

namespace {

/// A request line longer than this is a protocol abuse; the client is
/// answered with an error and closed.
constexpr size_t MaxRequestBytes = 4096;
/// Pending unsent output above this closes the client (slow consumer);
/// the verifier-side thread must never buffer unboundedly.
constexpr size_t MaxOutputBytes = 4 << 20;

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace

struct MonitorServer::Client {
  int Fd = -1;
  std::string In;  ///< bytes received, not yet newline-terminated
  std::string Out; ///< bytes queued, not yet written
  bool CloseAfterFlush = false;
  /// watch mode: 0 = off, else interval in milliseconds.
  uint64_t WatchIntervalMs = 0;
  uint64_t NextWatchNs = 0;
  /// Registry mode: the session this connection attached to with
  /// `mon <name>` (null until then). The shared_ptr keeps the session's
  /// source alive across its removal from the registry.
  std::shared_ptr<MonitorSource> Bound;
};

MonitorSource *MonitorServer::sourceFor(Client &C) {
  if (Registry)
    return C.Bound.get();
  return Src;
}

MonitorServer::MonitorServer(const MonitorOptions &O, MonitorSource &Src)
    : Opts(O), Src(&Src) {
  bindSocket();
}

MonitorServer::MonitorServer(const MonitorOptions &O, MonitorRegistry &Reg)
    : Opts(O), Registry(&Reg) {
  bindSocket();
}

void MonitorServer::bindSocket() {
  if (Opts.SocketPath.empty()) {
    Error = "no socket path configured";
    return;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long: " + Opts.SocketPath;
    return;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ListenFd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return;
  }
  // A stale socket file from a killed run would fail bind(); replace it.
  unlink(Opts.SocketPath.c_str());
  if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
          0 ||
      listen(ListenFd, 8) != 0 || !setNonBlocking(ListenFd) ||
      pipe(WakeFds) != 0) {
    Error = std::string("bind/listen: ") + std::strerror(errno);
    close(ListenFd);
    ListenFd = -1;
    return;
  }
  setNonBlocking(WakeFds[0]);
  Valid = true;
  Server = std::thread([this] { serverMain(); });
}

MonitorServer::~MonitorServer() { stop(); }

void MonitorServer::wake() {
  char B = 'w';
  ssize_t Ignored = write(WakeFds[1], &B, 1);
  (void)Ignored;
}

void MonitorServer::stop() {
  if (!Valid)
    return;
  if (!StopFlag.exchange(true))
    wake();
  if (Server.joinable())
    Server.join();
  for (auto &C : Clients)
    close(C->Fd);
  Clients.clear();
  close(ListenFd);
  close(WakeFds[0]);
  close(WakeFds[1]);
  ListenFd = WakeFds[0] = WakeFds[1] = -1;
  unlink(Opts.SocketPath.c_str());
  Valid = false;
}

bool MonitorServer::handleRequest(Client &C, const std::string &Line) {
  // Trim and split off the command word.
  size_t B = Line.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return true; // empty line: ignore
  size_t E = Line.find_last_not_of(" \t\r");
  std::string Req = Line.substr(B, E - B + 1);
  std::string Cmd = Req.substr(0, Req.find_first_of(" \t"));
  Requests.fetch_add(1, std::memory_order_relaxed);

  // Commands needing no snapshot first.
  if (Cmd == "detach" || Cmd == "quit") {
    C.Out += "{\"ok\":true}\n";
    C.CloseAfterFlush = true;
    return true;
  }
  if (Registry) {
    if (Cmd == "mon") {
      size_t NB = Req.find_first_not_of(" \t", Cmd.size());
      std::string Name =
          NB == std::string::npos ? std::string() : Req.substr(NB);
      std::shared_ptr<MonitorSource> S = Registry->resolve(Name);
      if (S) {
        C.Bound = std::move(S);
        C.Out += "{\"ok\":true,\"session\":\"" + jsonEscape(Name) +
                 "\"}\n";
      } else {
        C.Out += "{\"error\":\"unknown session: " + jsonEscape(Name) +
                 "\"}\n";
      }
      return true;
    }
    if (!C.Bound) {
      // Before an attach, `list` enumerates the sessions; every data
      // command needs a bound session first.
      if (Cmd == "list") {
        std::string Out = "{\"sessions\":[";
        std::vector<std::string> Names = Registry->names();
        for (size_t I = 0; I < Names.size(); ++I) {
          Out += I ? ",\"" : "\"";
          Out += jsonEscape(Names[I]) + "\"";
        }
        C.Out += Out + "]}\n";
      } else {
        C.Out += "{\"error\":\"no session attached (use: mon <name>)\","
                 "\"commands\":[\"list\",\"mon\",\"detach\"]}\n";
      }
      return true;
    }
  }

  MonitorSource &Source = *sourceFor(C);
  TelemetrySnapshot S = Source.telemetrySnapshot();
  std::vector<Violation> V = Source.liveViolations();
  if (Cmd == "list") {
    C.Out += monitor::listJson(S, V) + "\n";
  } else if (Cmd == "stats") {
    C.Out += monitor::statsJson(S, V, Source.forensicFiles()) + "\n";
  } else if (Cmd == "violations") {
    C.Out += monitor::violationsJson(V) + "\n";
  } else if (Cmd == "health") {
    C.Out += monitor::healthJson(S, V) + "\n";
  } else if (Cmd == "prom") {
    C.Out += monitor::promText(S, V.size());
    C.Out += "# EOF\n";
  } else if (Cmd == "top") {
    C.Out += monitor::topText(S, V);
    C.Out += "# EOF\n";
  } else if (Cmd == "watch") {
    uint64_t Ms = 1000;
    if (Req.size() > Cmd.size())
      Ms = std::strtoull(Req.c_str() + Cmd.size(), nullptr, 10);
    C.WatchIntervalMs = std::min<uint64_t>(std::max<uint64_t>(Ms, 10),
                                           60000);
    C.NextWatchNs = telemetryNowNanos(); // first snapshot immediately
  } else {
    C.Out += "{\"error\":\"unknown command: " + jsonEscape(Cmd) +
             "\",\"commands\":[\"list\",\"stats\",\"violations\","
             "\"health\",\"watch\",\"prom\",\"top\",\"detach\"]}\n";
  }
  return true;
}

void MonitorServer::serverMain() {
  std::vector<pollfd> Fds;
  while (!StopFlag.load(std::memory_order_relaxed)) {
    Fds.clear();
    Fds.push_back({WakeFds[0], POLLIN, 0});
    Fds.push_back({ListenFd, POLLIN, 0});
    for (auto &C : Clients)
      Fds.push_back({C->Fd,
                     static_cast<short>(POLLIN |
                                        (C->Out.empty() ? 0 : POLLOUT)),
                     0});

    // Poll timeout: the nearest watch deadline, else a coarse tick.
    uint64_t Now = telemetryNowNanos();
    int64_t TimeoutMs = 500;
    for (auto &C : Clients)
      if (C->WatchIntervalMs) {
        int64_t D =
            (int64_t(C->NextWatchNs) - int64_t(Now)) / 1000000 + 1;
        TimeoutMs = std::min(TimeoutMs, std::max<int64_t>(D, 0));
      }
    poll(Fds.data(), Fds.size(), static_cast<int>(TimeoutMs));

    if (Fds[0].revents & POLLIN) { // drain the wake pipe
      char Buf[64];
      while (read(WakeFds[0], Buf, sizeof(Buf)) > 0)
        ;
    }

    // New connections.
    if (Fds[1].revents & POLLIN) {
      for (;;) {
        int Fd = accept(ListenFd, nullptr, nullptr);
        if (Fd < 0)
          break;
        setNonBlocking(Fd);
        auto C = std::make_unique<Client>();
        C->Fd = Fd;
        if (Clients.size() >= Opts.MaxClients) {
          C->Out = "{\"error\":\"too many clients\"}\n";
          C->CloseAfterFlush = true;
        }
        Clients.push_back(std::move(C));
      }
    }

    // Client I/O. Fds[i + 2] pairs with Clients[i] (both appended in
    // order above; Clients is not mutated between the two loops).
    Now = telemetryNowNanos();
    for (size_t I = 0; I < Clients.size(); ++I) {
      Client &C = *Clients[I];
      short Rev = I + 2 < Fds.size() ? Fds[I + 2].revents : 0;
      bool Dead = (Rev & (POLLERR | POLLHUP | POLLNVAL)) != 0;

      if (!Dead && (Rev & POLLIN)) {
        char Buf[4096];
        for (;;) {
          ssize_t N = read(C.Fd, Buf, sizeof(Buf));
          if (N > 0) {
            C.In.append(Buf, static_cast<size_t>(N));
            if (C.In.size() > MaxRequestBytes) {
              C.Out += "{\"error\":\"request too long\"}\n";
              C.CloseAfterFlush = true;
              C.In.clear();
              break;
            }
            continue;
          }
          if (N == 0)
            Dead = true; // orderly shutdown from the peer
          break;         // N < 0: EAGAIN or error; either way stop reading
        }
        size_t Pos;
        while (!C.CloseAfterFlush &&
               (Pos = C.In.find('\n')) != std::string::npos) {
          std::string Line = C.In.substr(0, Pos);
          C.In.erase(0, Pos + 1);
          handleRequest(C, Line);
        }
      }

      // watch ticks (even on quiet polls).
      if (!Dead && C.WatchIntervalMs && Now >= C.NextWatchNs) {
        if (MonitorSource *WS = sourceFor(C))
          C.Out += monitor::statsJson(WS->telemetrySnapshot(),
                                      WS->liveViolations(),
                                      WS->forensicFiles()) +
                   "\n";
        C.NextWatchNs = Now + C.WatchIntervalMs * 1000000ull;
      }

      if (!Dead && !C.Out.empty()) {
        ssize_t N = send(C.Fd, C.Out.data(), C.Out.size(), MSG_NOSIGNAL);
        if (N > 0)
          C.Out.erase(0, static_cast<size_t>(N));
        else if (N < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
          Dead = true;
        if (C.Out.size() > MaxOutputBytes)
          Dead = true; // slow consumer; do not buffer unboundedly
      }
      if (Dead || (C.CloseAfterFlush && C.Out.empty())) {
        close(C.Fd);
        C.Fd = -1;
      }
    }
    Clients.erase(std::remove_if(Clients.begin(), Clients.end(),
                                 [](const std::unique_ptr<Client> &C) {
                                   return C->Fd < 0;
                                 }),
                  Clients.end());
  }
}
