//===- Telemetry.h - Pipeline metrics, lag gauge, watchdog ------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability for the verification pipeline: lock-free per-thread
/// counters and fixed-bucket histograms covering every stage
/// (instrumentation hooks, log append, flusher merge, checker feed, view
/// comparison), a checker-lag gauge (distance in sequence numbers between
/// the newest producer ticket and the last record the checker consumed), an
/// optional sampler thread that records the lag over time, and a watchdog
/// that reports a stalled verifier after a configurable quiet period.
///
/// Design constraints (docs/OBSERVABILITY.md has the full metric list):
///
///  * The hot path must stay hot. Each thread writes to its own cell
///    (registered on first use, like BufferedLog's shards), so an update
///    is one relaxed load+store on an exclusively owned cache line — no
///    RMW, no sharing. Readers (snapshot(), the sampler) read the same
///    atomics relaxed; totals are exact once the writers are quiescent and
///    a close approximation while they run.
///  * Instrumented call sites hold a `Telemetry *` (or a cached
///    `TelemetryCell *`) that is null when telemetry is off, so the
///    disabled path is one predictable branch. Defining
///    VYRD_DISABLE_TELEMETRY turns `telemetryCompiledIn()` into a
///    compile-time false and the guarded sites fold away entirely.
///  * Latency histograms on the append path are *sampled* (every 64th
///    record) so the clock reads cannot dominate a ~25 ns append.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_TELEMETRY_H
#define VYRD_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vyrd {

/// Compile-time switch: with VYRD_DISABLE_TELEMETRY defined every guarded
/// call site (`if (telemetryCompiledIn() && Cell) ...`) is dead code.
constexpr bool telemetryCompiledIn() {
#ifdef VYRD_DISABLE_TELEMETRY
  return false;
#else
  return true;
#endif
}

/// Monotonic nanoseconds (CLOCK_MONOTONIC); the pipeline's one time base.
uint64_t telemetryNowNanos();

/// Event counters, one slot per thread cell. Names/units: counterName().
enum class Counter : uint8_t {
  /// Records emitted by instrumentation hooks (call/ret/commit/write/...).
  C_HookRecords,
  /// Records appended to the log (any backend, any producer).
  C_LogAppends,
  /// Backoff rounds spent waiting for shard-ring space (BufferedLog).
  C_AppendStalls,
  /// Flusher rounds that merged at least one record into the global order.
  C_FlushBatches,
  /// Records the flusher merged into the global order.
  C_FlushedRecords,
  /// Reorder-ring regrowths (a producer stalled between ticket and
  /// publish while others ran more than a ring ahead).
  C_ReorderGrows,
  /// Batches the verification thread pulled from the log.
  C_CheckerBatches,
  /// Actions fed to the refinement checker.
  C_CheckerActions,
  /// Sampler iterations that recorded a checker-lag sample.
  C_LagSamples,
  /// Watchdog stall reports (consumer quiet too long with work pending).
  C_WatchdogStalls,
  /// Observer evaluations answered from the checker's memo table (incl.
  /// same-version skips) vs answered by an actual Spec::returnAllowed
  /// call. Flushed once per checker at finish().
  C_ObsMemoHits,
  C_ObsMemoMisses,
  /// Records dropped by the BP_Shed backpressure policy (whole observer
  /// executions; see docs/ARCHITECTURE.md, "Bounded pipeline").
  C_ShedRecords,
  /// Records that bypassed an over-limit in-memory queue and were
  /// re-read from disk (BP_SpillToDisk).
  C_SpilledRecords,
  /// Appends that had to wait for queue space (BP_Block).
  C_BlockedAppends,
  /// Log segment files created / reclaimed (SegmentSink rotation and
  /// checked-prefix deletion).
  C_SegmentsCreated,
  C_SegmentsReclaimed,
  /// Snapshot sidecars written at segment cuts / cuts where the snapshot
  /// was skipped (late cut on an async flusher, a dirty checker, or an
  /// unsupported spec) / sidecars loaded by a resuming or epoch checker
  /// (docs/SNAPSHOTS.md).
  C_SnapshotWrites,
  C_SnapshotSkips,
  C_SnapshotLoads,
  /// Epochs fully checked by epochCheck (one per (object, epoch) task).
  C_EpochsChecked,
  /// Adaptive-pipeline policy transitions (AdaptiveController): rungs
  /// climbed / descended on the BP_Block -> BP_SpillToDisk -> BP_Shed
  /// escalation ladder.
  C_PolicyEscalations,
  C_PolicyDeescalations,
  /// gaugeSub calls that would have driven a gauge below zero (mismatched
  /// add/sub pair somewhere); the gauge is clamped at 0 instead of
  /// wrapping, and this counter flags the accounting bug.
  C_GaugeUnderflow,
  /// Segment shipping, producer side (docs/SHIPPING.md): closed segments
  /// / encoded bytes shipped to the remote checker, watermark acks
  /// received back, connect/send attempts that had to be retried, and
  /// records re-checked locally after a degrade to SD_LocalCheck.
  C_ShipSegments,
  C_ShipBytes,
  C_ShipAcks,
  C_ShipRetries,
  C_ShipFallbackRecords,
  /// Segment shipping, receiver side (vyrd-checkd): segments / records
  /// accepted and fed, frames rejected by their CRC, resyncs to the next
  /// frame magic after garbage or truncation, and partially transferred
  /// segments discarded at connection loss.
  C_ShipSegmentsRecv,
  C_ShipRecordsRecv,
  C_ShipCrcErrors,
  C_ShipResyncs,
  C_ShipPartialDrops,
  NumCounters
};

/// Fixed-bucket histograms (power-of-two buckets, see HistoSnapshot).
enum class Histo : uint8_t {
  /// Sampled latency of one log append, nanoseconds.
  H_AppendNs,
  /// Records merged per flusher emit round.
  H_FlushBatch,
  /// Pipeline occupancy at emit time: tickets issued but not yet merged
  /// (reorder ring + unpublished + undrained records).
  H_ReorderOccupancy,
  /// Records per batch the verification thread consumed.
  H_FeedBatch,
  /// Latency of feeding one batch through the checker, nanoseconds.
  H_FeedNs,
  /// Cost of one viewI/viewS comparison, nanoseconds.
  H_ViewCompareNs,
  /// Sampled checker lag, in sequence numbers (sampler thread).
  H_CheckerLag,
  /// Time one BP_Block append spent waiting for queue space, nanoseconds
  /// (every blocked append records; unblocked appends record nothing).
  H_BlockedNs,
  NumHistos
};

/// Instantaneous pipeline levels with high-watermark tracking. Unlike
/// counters (per-thread cells, summed at snapshot), gauges are shared
/// add/sub atomics on the hub: several stages move the same level (e.g.
/// the log's tail and the checker pool both hold pending records), so
/// the current value must be a single point of truth. Names: gaugeName().
enum class Gauge : uint8_t {
  /// Records admitted to an in-memory queue (log tail / pool pending)
  /// and not yet consumed by the checker side.
  G_PendingRecords,
  /// Estimated bytes those pending records pin (actionFootprintBytes).
  G_TailBytes,
  /// Log segment files currently on disk.
  G_SegmentsLive,
  /// (object, epoch) tasks currently being checked by epochCheck.
  G_EpochsInFlight,
  /// Records between the resume point's watermark and the end of the log
  /// at restore time: how much re-checking a cold restart saved relative
  /// to a from-zero replay would be (appendCount - watermark).
  G_RestartLag,
  /// The adaptive controller's current pump-batch target (records per
  /// pump loop / flusher drain quantum). Static pipelines leave it 0.
  G_PumpBatchTarget,
  /// The admission policy currently in force, as its BackpressurePolicy
  /// ordinal (0 = block, 1 = spill, 2 = shed). Written by the pump on
  /// escalation/de-escalation, read by the monitor sampler.
  G_PolicyActive,
  /// Remote-checker watermark: every record with Seq below this has been
  /// acked by the checker fleet (drives producer-side reclamation).
  G_ShipAckedWatermark,
  /// Closed segments queued at the shipper, not yet on the wire.
  G_ShipUnshippedSegments,
  NumGauges
};

constexpr size_t NumCounters = static_cast<size_t>(Counter::NumCounters);
constexpr size_t NumHistos = static_cast<size_t>(Histo::NumHistos);
constexpr size_t NumGauges = static_cast<size_t>(Gauge::NumGauges);
/// Bucket B holds values whose bit width is B: bucket 0 is {0}, bucket
/// B >= 1 covers [2^(B-1), 2^B - 1]. 40 buckets cover every value the
/// pipeline can produce (nanosecond latencies up to ~18 minutes).
constexpr size_t NumHistoBuckets = 40;

/// Metric metadata (for rendering and docs).
const char *counterName(Counter C);
const char *histoName(Histo H);
/// Unit suffix for a histogram ("ns", "records", "seq").
const char *histoUnit(Histo H);
const char *gaugeName(Gauge G);

/// One histogram's frozen contents.
struct HistoSnapshot {
  uint64_t Buckets[NumHistoBuckets] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;

  double mean() const { return Count ? double(Sum) / double(Count) : 0; }
  /// Upper bound of the bucket containing the \p P-th percentile
  /// (P in [0,100]); 0 when empty.
  uint64_t percentileBound(double P) const;
  uint64_t max() const; ///< upper bound of the highest non-empty bucket
};

/// Per-object pipeline counters at snapshot time (multi-object engine:
/// the demux routes records per verified object, each with its own
/// checker pipeline).
struct ObjectTelemetry {
  std::string Name;
  /// Records the demux routed to this object's pipeline.
  uint64_t Routed = 0;
  /// Records this object's checker has consumed.
  uint64_t Checked = 0;
  /// Routed - Checked: the object's private checker lag (records queued
  /// for the checker pool but not yet fed).
  uint64_t Backlog = 0;
};

/// A frozen, consistent-enough copy of every metric. Exact once writers
/// are quiescent (e.g. in VerifierReport); a close approximation live.
struct TelemetrySnapshot {
  uint64_t Counters[NumCounters] = {};
  HistoSnapshot Histos[NumHistos] = {};
  /// Gauge level at snapshot time and its all-time high-watermark.
  uint64_t Gauges[NumGauges] = {};
  uint64_t GaugeHwms[NumGauges] = {};
  /// Producer-minus-consumer distance at snapshot time (0 without a
  /// producer probe).
  uint64_t CheckerLag = 0;
  /// Watchdog state at snapshot time.
  bool Stalled = false;
  /// One entry per registered object, in object-id order; empty unless
  /// the hub saw Telemetry::registerObject.
  std::vector<ObjectTelemetry> Objects;

  uint64_t counter(Counter C) const {
    return Counters[static_cast<size_t>(C)];
  }
  const HistoSnapshot &histo(Histo H) const {
    return Histos[static_cast<size_t>(H)];
  }
  uint64_t gauge(Gauge G) const { return Gauges[static_cast<size_t>(G)]; }
  uint64_t gaugeHwm(Gauge G) const {
    return GaugeHwms[static_cast<size_t>(G)];
  }

  /// Multi-line human-readable rendering.
  std::string str() const;
  /// Machine-readable rendering: {"counters":{...},"histograms":{...},...}.
  std::string json() const;
};

/// One thread's private metric storage. Single writer (the owning
/// thread); concurrent relaxed readers. Obtained via Telemetry::cell()
/// and cacheable for the lifetime of the Telemetry object.
class alignas(64) TelemetryCell {
public:
  void count(Counter C, uint64_t N = 1) {
    std::atomic<uint64_t> &A = Counters[static_cast<size_t>(C)];
    A.store(A.load(std::memory_order_relaxed) + N,
            std::memory_order_relaxed);
  }

  void record(Histo H, uint64_t Value) {
    size_t B = bucketOf(Value);
    std::atomic<uint64_t> &A = Buckets[static_cast<size_t>(H)][B];
    A.store(A.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
    std::atomic<uint64_t> &S = Sums[static_cast<size_t>(H)];
    S.store(S.load(std::memory_order_relaxed) + Value,
            std::memory_order_relaxed);
  }

  static size_t bucketOf(uint64_t Value) {
    size_t B = 64 - static_cast<size_t>(__builtin_clzll(Value | 1));
    if (Value == 0)
      B = 0;
    return B < NumHistoBuckets ? B : NumHistoBuckets - 1;
  }

private:
  friend class Telemetry;

  std::atomic<uint64_t> Counters[NumCounters] = {};
  std::atomic<uint64_t> Buckets[NumHistos][NumHistoBuckets] = {};
  std::atomic<uint64_t> Sums[NumHistos] = {};
};

/// The per-pipeline telemetry hub: owns the thread cells, the consumer
/// gauge and the optional sampler/watchdog thread. One instance per
/// Verifier (or standalone in tests/benches). All methods thread-safe.
class Telemetry {
public:
  struct Options {
    /// Sampler period; 0 disables the sampler thread entirely.
    unsigned SampleIntervalUs = 0;
    /// Report a stall when the consumer gauge has not advanced for this
    /// long while the checker lag is non-zero. 0 disables the watchdog.
    /// Requires the sampler (stalls are detected at sample points).
    unsigned WatchdogQuietMs = 0;
    /// Returns the newest producer ticket (e.g. Log::appendCount). Called
    /// from the sampler thread and from checkerLag()/snapshot().
    std::function<uint64_t()> ProducerProbe;
    /// Invoked (from the sampler thread) once per detected stall episode.
    /// Default: a one-line warning on stderr.
    std::function<void(const std::string &)> StallReport;
  };

  Telemetry();
  explicit Telemetry(Options O);
  ~Telemetry();

  Telemetry(const Telemetry &) = delete;
  Telemetry &operator=(const Telemetry &) = delete;

  /// The calling thread's cell, registered on first use. The reference
  /// stays valid until the Telemetry object is destroyed; hot paths
  /// should cache it.
  TelemetryCell &cell();

  /// Convenience single-shot updates (cell lookup included).
  void count(Counter C, uint64_t N = 1) { cell().count(C, N); }
  void record(Histo H, uint64_t V) { cell().record(H, V); }

  /// Consumer gauge: sequence number up to which the checker has consumed
  /// the log (exclusive). Single logical writer (verification thread).
  void noteConsumed(uint64_t Seq) {
    Consumed.store(Seq, std::memory_order_relaxed);
  }
  uint64_t consumedSeq() const {
    return Consumed.load(std::memory_order_relaxed);
  }

  /// Producer ticket minus consumer gauge; 0 without a producer probe.
  uint64_t checkerLag() const;

  /// Gauge updates: shared atomics (see the Gauge enum for why these are
  /// not per-cell). gaugeAdd maintains the high-watermark; gaugeSet is
  /// for levels owned by one component (e.g. live segment count).
  void gaugeAdd(Gauge G, uint64_t N) {
    uint64_t Now = GaugeNow[static_cast<size_t>(G)].fetch_add(
                       N, std::memory_order_relaxed) +
                   N;
    raiseGaugeHwm(G, Now);
  }
  void gaugeSub(Gauge G, uint64_t N) {
    // Clamp at zero: a mismatched add/sub pair must not wrap the level to
    // ~2^64 (which would also poison the HWM via the next gaugeAdd).
    std::atomic<uint64_t> &A = GaugeNow[static_cast<size_t>(G)];
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (!A.compare_exchange_weak(Cur, Cur >= N ? Cur - N : 0,
                                    std::memory_order_relaxed))
      ;
    if (Cur < N)
      count(Counter::C_GaugeUnderflow);
  }
  void gaugeSet(Gauge G, uint64_t V) {
    GaugeNow[static_cast<size_t>(G)].store(V, std::memory_order_relaxed);
    raiseGaugeHwm(G, V);
  }
  uint64_t gauge(Gauge G) const {
    return GaugeNow[static_cast<size_t>(G)].load(std::memory_order_relaxed);
  }
  uint64_t gaugeHwm(Gauge G) const {
    return GaugeHwm[static_cast<size_t>(G)].load(std::memory_order_relaxed);
  }

  /// Sum of one counter across every registered cell (convenience for
  /// watchdog messages that must not pay for a full snapshot).
  uint64_t counterTotal(Counter C) const;

  /// Registers a verified object's counter pair (multi-object engine).
  /// \p Obj ids must be dense and registered before the pipeline starts;
  /// \p ObjName labels the snapshot entry. Idempotent per id.
  void registerObject(uint32_t Obj, std::string ObjName);
  /// Demux accounting: \p N more records were routed to \p Obj.
  void noteObjectRouted(uint32_t Obj, uint64_t N);
  /// Checker accounting: \p Obj's checker consumed \p N more records.
  void noteObjectChecked(uint32_t Obj, uint64_t N);
  /// Records routed to but not yet checked for \p Obj (0 for unknown ids).
  uint64_t objectBacklog(uint32_t Obj) const;

  /// Watchdog verdict: is the consumer currently quiet with work pending?
  bool stalled() const { return StallFlag.load(std::memory_order_relaxed); }

  /// Starts/stops the sampler thread (the constructor starts it when
  /// Options::SampleIntervalUs is non-zero). Idempotent.
  void startSampler();
  void stopSampler();

  TelemetrySnapshot snapshot() const;

private:
  void samplerMain();

  void raiseGaugeHwm(Gauge G, uint64_t Now) {
    std::atomic<uint64_t> &H = GaugeHwm[static_cast<size_t>(G)];
    uint64_t Cur = H.load(std::memory_order_relaxed);
    while (Now > Cur &&
           !H.compare_exchange_weak(Cur, Now, std::memory_order_relaxed))
      ;
  }

  Options Opts;
  const uint64_t InstanceId;

  mutable std::mutex RegistryM;
  std::vector<std::unique_ptr<TelemetryCell>> CellByTid;

  /// Per-object counter pairs, index = object id. Guarded by RegistryM
  /// (updates are per consumed batch, not per record, so the lock is off
  /// the hot path); the atomics let snapshot() read mid-update values.
  struct ObjectCounters {
    std::string Name;
    std::atomic<uint64_t> Routed{0};
    std::atomic<uint64_t> Checked{0};
  };
  std::vector<std::unique_ptr<ObjectCounters>> ObjectsById;

  std::atomic<uint64_t> Consumed{0};
  std::atomic<bool> StallFlag{false};

  std::atomic<uint64_t> GaugeNow[NumGauges] = {};
  std::atomic<uint64_t> GaugeHwm[NumGauges] = {};

  std::thread Sampler;
  std::atomic<bool> SamplerStop{false};
  bool SamplerRunning = false;
};

} // namespace vyrd

#endif // VYRD_TELEMETRY_H
