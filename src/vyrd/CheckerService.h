//===- CheckerService.h - The checker half of a verification run -*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CheckerService is the consumer half of the split Verifier: everything
/// downstream of the log — the per-object Spec + Replayer +
/// RefinementChecker pipelines, the demux that routes record batches to
/// them, the optional checker worker pool, snapshot cuts, violation
/// publication and forensic bundles, and the final per-object report.
/// It knows nothing about where records come from: the in-process
/// Verifier's pump feeds it straight from the shared log (the historical
/// single-process pipeline, bit-for-bit), while `vyrd-checkd` feeds it
/// from segments arriving over a SegmentTransport in another process
/// entirely (docs/SHIPPING.md).
///
/// Threading contract (inherited from the monolithic Verifier): one
/// driving thread — the pump — calls addObject (before any routing),
/// routeRange, takeSnapshot, checkedWatermark and finishChecking;
/// violationSeen, liveViolations and forensicFiles are safe from any
/// thread. With startPool(), routed batches are checked on pool workers
/// with per-object affinity; without it they are fed inline on the
/// driving thread.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_CHECKERSERVICE_H
#define VYRD_CHECKERSERVICE_H

#include "vyrd/Adaptive.h"
#include "vyrd/Backpressure.h"
#include "vyrd/Checker.h"
#include "vyrd/Replayer.h"
#include "vyrd/Snapshot.h"
#include "vyrd/Spec.h"
#include "vyrd/Telemetry.h"
#include "vyrd/Trace.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vyrd {

struct VerifierReport;

/// Configuration of the checker half (the slice of VerifierConfig it
/// needs; the Verifier copies these fields over, vyrd-checkd fills them
/// from its command line).
struct CheckerServiceOptions {
  /// Bound + admission policy of the pool's per-object batch queues
  /// (the log-side half of the same config lives with the log).
  BackpressureConfig Backpressure;
  /// Forensic bundle prefix; empty disables bundles (see
  /// VerifierConfig::ForensicPrefix for the full contract).
  std::string ForensicPrefix;
  /// Chain base path snapshot sidecars are written next to
  /// (VerifierConfig::LogFilePath); empty disables takeSnapshot.
  std::string SnapshotBase;
};

/// The per-object checking pipelines plus everything that drives them.
class CheckerService {
public:
  explicit CheckerService(CheckerServiceOptions Opts);
  ~CheckerService();

  CheckerService(const CheckerService &) = delete;
  CheckerService &operator=(const CheckerService &) = delete;

  /// Observability wiring; call before addObject (the checkers capture
  /// the telemetry hub at construction). All may stay null.
  void setTelemetry(Telemetry *T) { Telem = T; }
  void setTracer(TraceRecorder *T) { Tracer = T; }
  /// The adaptive controller consulted by the pool's admission path for
  /// the dynamically active policy (may stay null: the static policy
  /// from Options.Backpressure applies).
  void setController(AdaptiveController *C) { Ctl = C; }

  /// Registers one verified object (see Verifier::registerObject for the
  /// contract; \p R may be null in CM_IORefinement mode). Must precede
  /// startPool() and any routing.
  ObjectId addObject(std::string Name, std::unique_ptr<Spec> S,
                     std::unique_ptr<Replayer> R, CheckerConfig CC);

  size_t objectCount() const { return Objects.size(); }
  /// The check mode object \p Id was registered with (selects the hook
  /// logging level on the producer side).
  CheckMode objectMode(ObjectId Id) const;
  /// Does \p A start an observer-only execution on its object? (The
  /// BP_Shed classifier; unrouteable records answer false.) Pure const
  /// query, callable concurrently with checking.
  bool isObserverCall(const Action &A) const;

  /// Starts \p NumWorkers checker pool workers. Without this call every
  /// batch is fed inline on the routing thread (the historical
  /// CheckerThreads = 1 behavior).
  void startPool(unsigned NumWorkers);
  /// Installs the observer classifier BP_Shed consults on the pool (no-op
  /// without a pool; the log-side classifier is the producer's business).
  void setShedClassifier(std::function<bool(const Action &)> Fn);

  /// Demuxes Batch[Begin, End) per object and dispatches/feeds each
  /// object's slice. Records whose ObjectId matches no registered object
  /// are counted and surface as a VK_Instrumentation violation in the
  /// report.
  void routeRange(std::vector<Action> &Batch, size_t Begin, size_t End,
                  TelemetryCell *TC);

  /// The sequence number below which every routed record has been fed to
  /// its checker, capped at \p Upper (the caller's routed frontier).
  /// Drives Log::reclaimCheckedPrefix.
  uint64_t checkedWatermark(uint64_t Upper);

  /// Waits until every dispatched batch has been fed (no-op without a
  /// pool). The pool keeps running.
  void quiesce();

  /// Aligns every checker on the cut (quiescing the pool), serializes
  /// the checkers and writes the sidecar for segment \p SegIndex next to
  /// Options.SnapshotBase. No-op when SnapshotBase is empty.
  void takeSnapshot(uint64_t SegIndex, uint64_t CutSeq);

  /// Seeds every checker from \p Snap (a v5 sidecar) before any record
  /// is routed — the cold-pickup path for a chain whose prefix was
  /// reclaimed. Fails (with \p Err set) when an object has no blob or a
  /// blob does not restore.
  bool restoreFromSnapshot(const SnapshotFile &Snap, std::string &Err);

  /// End of stream: drains and joins the pool, finishes every checker
  /// and publishes final violations. Idempotent.
  void finishChecking();

  /// Thread-safe peek: has any checker found a violation yet?
  bool violationSeen() const {
    return ViolationFlag.load(std::memory_order_acquire);
  }

  /// Fills the checking side of \p R: per-object reports, the merged
  /// stats and witness-ordered violation list, and the
  /// VK_Instrumentation violation for unrouted records. Call after
  /// finishChecking(); log-side fields (LogRecords, LogBytes, the log's
  /// backpressure stats) are the caller's.
  void buildReport(VerifierReport &R);
  /// Merges the pool's admission accounting into \p S (no-op without a
  /// pool).
  void mergePoolStats(BackpressureStats &S) const;

  /// Copies of the live (monitor-served) state. Safe from any thread.
  std::vector<Violation> liveViolations() const;
  std::vector<std::string> forensicFiles() const;
  /// Appends an externally written bundle (the degraded-run bundle) to
  /// the live forensic list.
  void addForensicFile(std::string Path);

private:
  struct ObjectState;
  class CheckerPool;
  friend class CheckerPool;

  void feedObject(ObjectState &O, const std::vector<Action> &Batch,
                  TelemetryCell *TC);
  void publishObjectViolations(ObjectState &O);
  void maybeWriteForensic(ObjectState &O);

  CheckerServiceOptions Opts;
  Telemetry *Telem = nullptr;
  TraceRecorder *Tracer = nullptr;
  AdaptiveController *Ctl = nullptr;
  std::vector<std::unique_ptr<ObjectState>> Objects;
  std::unique_ptr<CheckerPool> Pool;
  /// Demux scratch, one slot per object (sized on first routeRange).
  std::vector<std::vector<Action>> Route;
  std::atomic<bool> ViolationFlag{false};
  /// Records whose ObjectId matched no registered object. Driving thread
  /// only.
  uint64_t UnroutedRecords = 0;
  uint64_t FirstUnroutedSeq = 0;
  bool Finished = false;

  /// Violations and forensic paths published as checkers record them.
  /// Written by whichever thread owns the reporting checker, read by the
  /// monitor thread and report assembly.
  struct LiveState {
    mutable std::mutex M;
    std::vector<Violation> Violations;
    std::vector<std::string> ForensicFiles;
  };
  LiveState Live;
};

} // namespace vyrd

#endif // VYRD_CHECKERSERVICE_H
