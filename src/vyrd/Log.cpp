//===- Log.cpp - Execution logs connecting program and verifier ----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Log.h"

#include "vyrd/Telemetry.h"

#include <cassert>
#include <cstring>

using namespace vyrd;

namespace {

/// Append accounting shared by the mutex-guarded backends: counts the
/// append and, when \p T0 is non-zero (a sample point), records the
/// latency — mirroring what BufferedLog's shards do so backend
/// comparisons stay apples-to-apples.
void countAppend(Telemetry *T, uint64_t T0) {
  if (!telemetryCompiledIn() || !T)
    return;
  TelemetryCell &TC = T->cell();
  TC.count(Counter::C_LogAppends);
  if (T0)
    TC.record(Histo::H_AppendNs, telemetryNowNanos() - T0);
}

/// Every 64th append per thread is a latency-sample point.
bool sampleTick() {
  thread_local uint64_t Tick = 0;
  return (Tick++ & 63) == 0;
}

} // namespace

LogWriter::~LogWriter() = default;
Log::~Log() = default;

bool Log::nextBatch(std::vector<Action> &Out, size_t Max) {
  Out.clear();
  if (Max == 0)
    Max = 1;
  Action A;
  if (!next(A))
    return false;
  Out.push_back(std::move(A));
  bool End = false;
  while (Out.size() < Max && tryNext(A, End))
    Out.push_back(std::move(A));
  return true;
}

//===----------------------------------------------------------------------===//
// MemoryLog
//===----------------------------------------------------------------------===//

MemoryLog::MemoryLog() = default;
MemoryLog::~MemoryLog() = default;

uint64_t MemoryLog::append(Action A) {
  Telemetry *T = telemetry();
  uint64_t T0 = 0;
  if (telemetryCompiledIn() && T && sampleTick())
    T0 = telemetryNowNanos();
  uint64_t Seq;
  {
    std::lock_guard Lock(M);
    assert(!Closed && "append after close");
    A.Seq = NextSeq++;
    Seq = A.Seq;
    Q.push_back(std::move(A));
    CV.notify_one();
  }
  countAppend(T, T0);
  return Seq;
}

void MemoryLog::close() {
  std::lock_guard Lock(M);
  Closed = true;
  CV.notify_all();
}

bool MemoryLog::next(Action &Out) {
  std::unique_lock Lock(M);
  CV.wait(Lock, [&] { return !Q.empty() || Closed; });
  if (Q.empty())
    return false;
  Out = std::move(Q.front());
  Q.pop_front();
  return true;
}

bool MemoryLog::tryNext(Action &Out, bool &End) {
  std::lock_guard Lock(M);
  if (!Q.empty()) {
    Out = std::move(Q.front());
    Q.pop_front();
    End = false;
    return true;
  }
  End = Closed;
  return false;
}

uint64_t MemoryLog::appendCount() const {
  std::lock_guard Lock(M);
  return NextSeq;
}

//===----------------------------------------------------------------------===//
// FileLog
//===----------------------------------------------------------------------===//

FileLog::FileLog(const std::string &Path, bool &Valid, bool RetainTail)
    : Path(Path), RetainTail(RetainTail) {
  File = std::fopen(Path.c_str(), "wb");
  Valid = File != nullptr;
  if (File) {
    // Open with the format header (docs/LOGFORMAT.md) so readers can tell
    // the record layout; readers still accept headerless v1 files.
    ByteWriter HW;
    writeLogHeader(HW);
    std::fwrite(HW.buffer().data(), 1, HW.size(), File);
    Bytes = HW.size();
  }
}

FileLog::~FileLog() {
  if (File)
    std::fclose(File);
}

uint64_t FileLog::append(Action A) {
  Telemetry *T = telemetry();
  uint64_t T0 = 0;
  if (telemetryCompiledIn() && T && sampleTick())
    T0 = telemetryNowNanos();
  uint64_t Seq;
  {
    std::lock_guard Lock(M);
    assert(!Closed && "append after close");
    A.Seq = NextSeq++;
    Seq = A.Seq;
    Scratch.clear();
    Encoder.encode(A, Scratch);
    if (File)
      std::fwrite(Scratch.buffer().data(), 1, Scratch.size(), File);
    Bytes += Scratch.size();
    if (RetainTail) {
      Tail.push_back(std::move(A));
      CV.notify_one();
    }
  }
  countAppend(T, T0);
  return Seq;
}

void FileLog::close() {
  std::lock_guard Lock(M);
  Closed = true;
  if (File)
    std::fflush(File);
  CV.notify_all();
}

bool FileLog::next(Action &Out) {
  std::unique_lock Lock(M);
  CV.wait(Lock, [&] { return !Tail.empty() || Closed; });
  if (Tail.empty())
    return false;
  Out = std::move(Tail.front());
  Tail.pop_front();
  return true;
}

bool FileLog::tryNext(Action &Out, bool &End) {
  std::lock_guard Lock(M);
  if (!Tail.empty()) {
    Out = std::move(Tail.front());
    Tail.pop_front();
    End = false;
    return true;
  }
  End = Closed;
  return false;
}

uint64_t FileLog::appendCount() const {
  std::lock_guard Lock(M);
  return NextSeq;
}

uint64_t FileLog::byteCount() const {
  std::lock_guard Lock(M);
  return Bytes;
}

//===----------------------------------------------------------------------===//
// loadLogFile
//===----------------------------------------------------------------------===//

/// Read-window granularity: one fread and one decode sweep per megabyte
/// of log. Only a single record larger than the window forces growth.
static constexpr size_t ReaderChunk = 1 << 20;

LogFileReader::LogFileReader(const std::string &Path) {
  File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return;
  Buf.resize(ReaderChunk);
  refill();
  ByteReader R(Buf.data(), End);
  Version = readLogHeader(R);
  if (Version == 0) {
    Malformed = true; // magic present but header malformed/unknown
    return;
  }
  Decoder.setVersion(Version);
  Start = R.position(); // 0 for headerless v1 streams
  Consumed = R.position();
}

LogFileReader::~LogFileReader() {
  if (File)
    std::fclose(File);
}

void LogFileReader::refill() {
  // Compact the undecoded suffix to the front, then top the window up.
  if (Start > 0) {
    std::memmove(Buf.data(), Buf.data() + Start, End - Start);
    End -= Start;
    Start = 0;
  }
  if (End == Buf.size())
    Buf.resize(Buf.size() * 2); // one record larger than the window
  size_t N = std::fread(Buf.data() + End, 1, Buf.size() - End, File);
  End += N;
  if (N == 0)
    Eof = true;
}

bool LogFileReader::next(Action &Out) {
  if (!File || Malformed)
    return false;
  while (true) {
    if (Start < End) {
      // Speculative decode: on failure this may be a record truncated at
      // the window end, so roll the decoder's name table back and retry
      // with more data before declaring the stream malformed.
      size_t SavedNames = Decoder.nameCount();
      ByteReader R(Buf.data() + Start, End - Start);
      if (Decoder.decode(R, Out)) {
        Start += R.position();
        Consumed += R.position();
        return true;
      }
      Decoder.truncateNames(SavedNames);
    }
    if (Eof) {
      if (Start != End)
        Malformed = true; // trailing undecodable bytes
      return false;
    }
    refill();
  }
}

bool vyrd::loadLogFile(const std::string &Path, std::vector<Action> &Out) {
  LogFileReader Reader(Path);
  if (!Reader.valid())
    return false;
  Action A;
  while (Reader.next(A))
    Out.push_back(std::move(A));
  return !Reader.malformed();
}
