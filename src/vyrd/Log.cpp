//===- Log.cpp - Execution logs connecting program and verifier ----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Log.h"

#include "vyrd/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace vyrd;

namespace {

/// Append accounting shared by the mutex-guarded backends: counts the
/// append and, when \p T0 is non-zero (a sample point), records the
/// latency — mirroring what BufferedLog's shards do so backend
/// comparisons stay apples-to-apples.
void countAppend(Telemetry *T, uint64_t T0) {
  if (!telemetryCompiledIn() || !T)
    return;
  TelemetryCell &TC = T->cell();
  TC.count(Counter::C_LogAppends);
  if (T0)
    TC.record(Histo::H_AppendNs, telemetryNowNanos() - T0);
}

/// Every 64th append per thread is a latency-sample point.
bool sampleTick() {
  thread_local uint64_t Tick = 0;
  return (Tick++ & 63) == 0;
}

/// Shared-gauge accounting for a record entering / leaving a bounded
/// in-memory queue (see the Gauge enum: these are hub-level levels, not
/// per-thread counters).
void gaugeAdmit(Telemetry *T, size_t FootprintBytes) {
  if (!telemetryCompiledIn() || !T)
    return;
  T->gaugeAdd(Gauge::G_PendingRecords, 1);
  T->gaugeAdd(Gauge::G_TailBytes, FootprintBytes);
}

void gaugeRelease(Telemetry *T, size_t FootprintBytes) {
  if (!telemetryCompiledIn() || !T)
    return;
  T->gaugeSub(Gauge::G_PendingRecords, 1);
  T->gaugeSub(Gauge::G_TailBytes, FootprintBytes);
}

} // namespace

LogWriter::~LogWriter() = default;
Log::~Log() = default;

bool Log::nextBatch(std::vector<Action> &Out, size_t Max) {
  Out.clear();
  if (Max == 0)
    Max = 1;
  Action A;
  if (!next(A))
    return false;
  Out.push_back(std::move(A));
  bool End = false;
  while (Out.size() < Max && tryNext(A, End))
    Out.push_back(std::move(A));
  return true;
}

//===----------------------------------------------------------------------===//
// MemoryLog
//===----------------------------------------------------------------------===//

MemoryLog::MemoryLog() = default;
MemoryLog::MemoryLog(const BackpressureConfig &BPConfig) : BP(BPConfig) {}
MemoryLog::~MemoryLog() = default;

bool MemoryLog::overLimitLocked() const {
  return Q.size() >= BP.MaxPendingRecords ||
         (BP.MaxTailBytes && QueueBytes >= BP.MaxTailBytes);
}

uint64_t MemoryLog::append(Action A) {
  Telemetry *T = telemetry();
  uint64_t T0 = 0;
  if (telemetryCompiledIn() && T && sampleTick())
    T0 = telemetryNowNanos();
  uint64_t Seq;
  {
    std::unique_lock Lock(M);
    assert(!Closed && "append after close");
    A.Seq = NextSeq++;
    Seq = A.Seq;
    if (BP.Enabled) {
      BackpressurePolicy P = activePolicy(BP);
      bool Over = overLimitLocked();
      // With a dynamic policy the shed filter is consulted even while the
      // active policy is not BP_Shed (with OverLimit pinned false): a
      // record continuing an execution whose call was shed under an
      // earlier escalation must go down with it, whatever the policy is
      // by the time it arrives — executions are dropped whole or not at
      // all.
      if ((P == BackpressurePolicy::BP_Shed || hasDynamicPolicy()) &&
          Shed.shouldShed(A, Over && P == BackpressurePolicy::BP_Shed)) {
        // Dropped entirely — there is no disk copy here. The sequence
        // number stays consumed so the witness order of admitted records
        // is unchanged (the checker never needs dense numbers).
        ++Stats.ShedRecords;
        if (telemetryCompiledIn() && T)
          T->count(Counter::C_ShedRecords);
        countAppend(T, T0);
        return Seq;
      }
      if (P != BackpressurePolicy::BP_Shed && Over) {
        // BP_Block — and BP_SpillToDisk, which has nowhere to spill in a
        // purely in-memory log and degrades to blocking (validate()
        // rejects the combination for Verifier-owned logs). A dynamic
        // policy escalating past BP_Block wakes the waiters through
        // onPolicyChange() and re-decides admission under the new rung.
        ++Stats.BlockedAppends;
        uint64_t W0 = telemetryNowNanos();
        SpaceCV.wait(Lock, [&] {
          return !overLimitLocked() || Closed ||
                 activePolicy(BP) == BackpressurePolicy::BP_Shed;
        });
        uint64_t Waited = telemetryNowNanos() - W0;
        Stats.BlockedNanos += Waited;
        if (telemetryCompiledIn() && T) {
          T->count(Counter::C_BlockedAppends);
          T->record(Histo::H_BlockedNs, Waited);
        }
        if (!Closed && overLimitLocked() &&
            activePolicy(BP) == BackpressurePolicy::BP_Shed &&
            Shed.shouldShed(A, true)) {
          ++Stats.ShedRecords;
          if (telemetryCompiledIn() && T)
            T->count(Counter::C_ShedRecords);
          countAppend(T, T0);
          return Seq;
        }
      }
      size_t FP = actionFootprintBytes(A);
      QueueBytes += FP;
      Stats.PendingRecordsHwm =
          std::max<uint64_t>(Stats.PendingRecordsHwm, Q.size() + 1);
      Stats.TailBytesHwm = std::max<uint64_t>(Stats.TailBytesHwm, QueueBytes);
      gaugeAdmit(T, FP);
    }
    Q.push_back(std::move(A));
    CV.notify_one();
  }
  countAppend(T, T0);
  return Seq;
}

void MemoryLog::close() {
  std::lock_guard Lock(M);
  Closed = true;
  CV.notify_all();
  SpaceCV.notify_all();
}

void MemoryLog::popLocked(Action &Out) {
  Out = std::move(Q.front());
  Q.pop_front();
  if (BP.Enabled) {
    size_t FP = actionFootprintBytes(Out);
    QueueBytes -= std::min<uint64_t>(FP, QueueBytes);
    gaugeRelease(telemetry(), FP);
    SpaceCV.notify_one();
  }
}

bool MemoryLog::next(Action &Out) {
  std::unique_lock Lock(M);
  CV.wait(Lock, [&] { return !Q.empty() || Closed; });
  if (Q.empty())
    return false;
  popLocked(Out);
  return true;
}

bool MemoryLog::tryNext(Action &Out, bool &End) {
  std::unique_lock Lock(M);
  if (!Q.empty()) {
    popLocked(Out);
    End = false;
    return true;
  }
  End = Closed;
  return false;
}

bool MemoryLog::nextBatch(std::vector<Action> &Out, size_t Max) {
  Out.clear();
  if (Max == 0)
    Max = 1;
  std::unique_lock Lock(M);
  CV.wait(Lock, [&] { return !Q.empty() || Closed; });
  if (Q.empty())
    return false;
  uint64_t FPSum = 0;
  while (!Q.empty() && Out.size() < Max) {
    Out.push_back(std::move(Q.front()));
    Q.pop_front();
    if (BP.Enabled)
      FPSum += actionFootprintBytes(Out.back());
  }
  if (BP.Enabled) {
    QueueBytes -= std::min<uint64_t>(FPSum, QueueBytes);
    if (Telemetry *T = telemetry(); telemetryCompiledIn() && T) {
      T->gaugeSub(Gauge::G_PendingRecords, Out.size());
      T->gaugeSub(Gauge::G_TailBytes, FPSum);
    }
    // One wakeup for the whole batch: the base-class per-record path
    // notified once per pop, which on a saturated bounded queue meant a
    // producer/consumer context-switch pair every record.
    SpaceCV.notify_all();
  }
  return true;
}

uint64_t MemoryLog::appendCount() const {
  std::lock_guard Lock(M);
  return NextSeq;
}

BackpressureStats MemoryLog::backpressureStats() const {
  std::lock_guard Lock(M);
  return Stats;
}

void MemoryLog::setShedClassifier(std::function<bool(const Action &)> Fn) {
  std::lock_guard Lock(M);
  Shed.setClassifier(std::move(Fn));
}

void MemoryLog::onPolicyChange() {
  std::lock_guard Lock(M);
  SpaceCV.notify_all();
}

//===----------------------------------------------------------------------===//
// FileLog
//===----------------------------------------------------------------------===//

FileLog::FileLog(const std::string &Path, bool &Valid, bool RetainTail)
    : FileLog(Path, Valid, BackpressureConfig(), RetainTail) {}

FileLog::FileLog(const std::string &Path, bool &Valid,
                 const BackpressureConfig &BPConfig, bool RetainTail)
    : Path(Path), RetainTail(RetainTail), BP(BPConfig) {
  // Plain-file mode (SegmentBytes == 0) writes the same v3 header and
  // byte stream as the historical single-FILE implementation; segmented
  // mode rotates into a chain (docs/LOGFORMAT.md, v4).
  Valid = Sink.open(Path, BP.SegmentBytes);
}

FileLog::~FileLog() = default;

bool FileLog::overLimitLocked() const {
  return Tail.size() >= BP.MaxPendingRecords ||
         (BP.MaxTailBytes && TailBytes >= BP.MaxTailBytes);
}

bool FileLog::spillCapable() const {
  // Static spill configurations, plus any dynamic-policy configuration
  // (the escalation ladder of a file-backed log always contains the
  // spill rung): the reader must then track its delivery frontier from
  // the start — a mid-run escalation into spill with a stale frontier
  // would re-deliver the whole file.
  return BP.Enabled && RetainTail &&
         (BP.Policy == BackpressurePolicy::BP_SpillToDisk ||
          hasDynamicPolicy());
}

void FileLog::noteShedGapLocked(uint64_t Seq) {
  if (!ShedGaps.empty() && ShedGaps.back().second == Seq)
    ++ShedGaps.back().second;
  else
    ShedGaps.push_back({Seq, Seq + 1});
}

void FileLog::admitTailLocked(std::unique_lock<std::mutex> &Lock,
                              Action &&A) {
  Telemetry *T = telemetry();
  if (BP.Enabled) {
    bool Blocked = false;
    bool Admit = true;
    uint64_t W0 = 0;
    for (;;) {
      BackpressurePolicy P = activePolicy(BP);
      bool Over = overLimitLocked();
      // The shed filter is consulted whenever the policy is (or, with a
      // dynamic ladder, could earlier have been) BP_Shed: records
      // continuing an execution whose call was shed must go down with
      // it regardless of the rung in force now.
      if (P == BackpressurePolicy::BP_Shed || hasDynamicPolicy()) {
        if (Shed.shouldShed(A, Over && P == BackpressurePolicy::BP_Shed)) {
          // Dropped from the *tail* only: the record is already on disk,
          // so post-mortem re-checking sees the complete log. The
          // accounting says exactly what the online checker did not.
          ++Stats.ShedRecords;
          if (telemetryCompiledIn() && T)
            T->count(Counter::C_ShedRecords);
          if (spillCapable())
            noteShedGapLocked(A.Seq); // not a spill gap: never re-read
          Admit = false;
          break;
        }
        if (P == BackpressurePolicy::BP_Shed)
          break; // shed admits everything it does not drop
      }
      if (P == BackpressurePolicy::BP_SpillToDisk) {
        if (Over) {
          // The disk copy is the overflow buffer; the reader re-reads the
          // gap through a tailing LogFileReader when it catches up.
          ++Stats.SpilledRecords;
          if (telemetryCompiledIn() && T)
            T->count(Counter::C_SpilledRecords);
          Admit = false;
        }
        break;
      }
      // BP_Block.
      if (!Over || Closed)
        break;
      if (!Blocked) {
        Blocked = true;
        ++Stats.BlockedAppends;
        W0 = telemetryNowNanos();
      }
      SpaceCV.wait(Lock, [&] {
        return !overLimitLocked() || Closed ||
               activePolicy(BP) != BackpressurePolicy::BP_Block;
      });
      // Loop: the policy may have escalated while we slept — re-decide
      // admission under the new rung.
    }
    if (Blocked) {
      uint64_t Waited = telemetryNowNanos() - W0;
      Stats.BlockedNanos += Waited;
      if (telemetryCompiledIn() && T) {
        T->count(Counter::C_BlockedAppends);
        T->record(Histo::H_BlockedNs, Waited);
      }
    }
    if (!Admit)
      return;
    size_t FP = actionFootprintBytes(A);
    TailBytes += FP;
    Stats.PendingRecordsHwm =
        std::max<uint64_t>(Stats.PendingRecordsHwm, Tail.size() + 1);
    Stats.TailBytesHwm = std::max<uint64_t>(Stats.TailBytesHwm, TailBytes);
    gaugeAdmit(T, FP);
  }
  Tail.push_back(std::move(A));
  CV.notify_one();
}

uint64_t FileLog::append(Action A) {
  Telemetry *T = telemetry();
  uint64_t T0 = 0;
  if (telemetryCompiledIn() && T && sampleTick())
    T0 = telemetryNowNanos();
  uint64_t Seq;
  {
    std::unique_lock Lock(M);
    assert(!Closed && "append after close");
    A.Seq = NextSeq++;
    Seq = A.Seq;
    // To disk first (one buffered fwrite, as before), so every sequence
    // number below NextSeq is reachable through the sink — the invariant
    // the spill reader relies on.
    Sink.write(A);
    Sink.flushPending();
    if (RetainTail)
      admitTailLocked(Lock, std::move(A));
  }
  countAppend(T, T0);
  return Seq;
}

void FileLog::close() {
  std::lock_guard Lock(M);
  Closed = true;
  Sink.sync();
  CV.notify_all();
  SpaceCV.notify_all();
}

void FileLog::popTailLocked(Action &Out) {
  Out = std::move(Tail.front());
  Tail.pop_front();
  if (BP.Enabled) {
    size_t FP = actionFootprintBytes(Out);
    TailBytes -= std::min<uint64_t>(FP, TailBytes);
    gaugeRelease(telemetry(), FP);
    SpaceCV.notify_one();
    // Monotone: a stale pop (a record the spill reader already
    // delivered from disk while its producer was still blocked) must
    // not rewind the frontier, or the next tail record is delivered
    // twice.
    if (spillCapable() && Out.Seq + 1 > Delivered) {
      Delivered = Out.Seq + 1;
      if (SpillReader)
        SpillReader.reset(); // stale: positioned inside a finished gap
      while (!ShedGaps.empty() && ShedGaps.front().second <= Delivered)
        ShedGaps.erase(ShedGaps.begin());
    }
  }
}

bool FileLog::spillNextLocked(Action &Out) {
  // Called with Delivered < NextSeq: the record exists at the sink (it
  // was written before NextSeq advanced past it), at worst still in
  // stdio buffers — which sync() pushes down.
  if (!SpillReader || SpillNextSeq != Delivered) {
    Sink.sync();
    auto R = std::make_unique<LogFileReader>(Sink.pathForSeq(Delivered));
    R->setTailing(true);
    if (!R->valid())
      return false;
    SpillReader = std::move(R);
    SpillNextSeq = Delivered; // reads below skip up to it
  }
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    Action A;
    while (SpillReader->next(A)) {
      SpillNextSeq = A.Seq + 1;
      if (A.Seq < Delivered)
        continue; // the reader opened at a segment boundary before the gap
      // Records shed from the tail under a dynamic policy exist on disk
      // too; the catch-up reader must not resurrect them.
      while (!ShedGaps.empty() && ShedGaps.front().second <= A.Seq)
        ShedGaps.erase(ShedGaps.begin());
      if (!ShedGaps.empty() && A.Seq >= ShedGaps.front().first) {
        Delivered = A.Seq + 1;
        continue;
      }
      Delivered = A.Seq + 1; // every on-disk seq is delivered or skipped
      Out = std::move(A);
      return true;
    }
    if (SpillReader->malformed()) {
      // Disk corruption in the spilled region: the gap can never be
      // delivered. Latch the failure (instead of reopening forever) and
      // let the reader run out at the gap.
      std::fprintf(stderr,
                   "vyrd: spill re-read failed (malformed log near seq "
                   "%llu); online checking truncated\n",
                   static_cast<unsigned long long>(Delivered));
      SpillReader.reset();
      SpillFailed = true;
      return false;
    }
    Sink.sync(); // the record may still be buffered; retry once synced
  }
  return false;
}

bool FileLog::readyLocked() const {
  if (!Tail.empty())
    return true;
  return spillCapable() && !SpillFailed && Delivered < NextSeq;
}

bool FileLog::tryNextLocked(Action &Out, bool &End) {
  if (!spillCapable()) {
    if (!Tail.empty()) {
      popTailLocked(Out);
      End = false;
      return true;
    }
    End = Closed;
    return false;
  }
  // Spill mode: deliver strictly in sequence order, preferring the tail
  // and filling gaps (spilled regions) from the sink's file(s).
  // Overlap happens under a block-base dynamic ladder: a producer
  // blocked on space has already written its record to disk, so a fast
  // reader can spill-read it before the producer wakes and pushes it
  // into the tail.
  while (!Tail.empty() && Tail.front().Seq < Delivered) {
    Action Drop;
    popTailLocked(Drop); // already delivered from disk
  }
  if (!Tail.empty() && Tail.front().Seq == Delivered) {
    popTailLocked(Out);
    End = false;
    return true;
  }
  if (Delivered < NextSeq && !SpillFailed) {
    End = false;
    return spillNextLocked(Out); // false = not visible yet, caller retries
  }
  End = Closed;
  return false;
}

bool FileLog::next(Action &Out) {
  std::unique_lock Lock(M);
  while (true) {
    CV.wait(Lock, [&] { return readyLocked() || Closed; });
    bool End = false;
    if (tryNextLocked(Out, End))
      return true;
    if (End)
      return false;
    // Spill data momentarily invisible (stdio buffering around a
    // rotation); spillNextLocked has already synced, so retrying is
    // enough — the loop converges within an attempt or two.
  }
}

bool FileLog::tryNext(Action &Out, bool &End) {
  std::unique_lock Lock(M);
  return tryNextLocked(Out, End);
}

uint64_t FileLog::appendCount() const {
  std::lock_guard Lock(M);
  return NextSeq;
}

uint64_t FileLog::byteCount() const { return Sink.bytesWritten(); }

BackpressureStats FileLog::backpressureStats() const {
  std::lock_guard Lock(M);
  BackpressureStats S = Stats;
  S.merge(Sink.stats());
  return S;
}

void FileLog::setShedClassifier(std::function<bool(const Action &)> Fn) {
  std::lock_guard Lock(M);
  Shed.setClassifier(std::move(Fn));
}

void FileLog::onPolicyChange() {
  std::lock_guard Lock(M);
  SpaceCV.notify_all();
}

void FileLog::takeSegmentCuts(std::vector<SegmentCut> &Out) {
  if (BP.SegmentBytes)
    Sink.drainCuts(Out);
}

void FileLog::reclaimCheckedPrefix(uint64_t Watermark) {
  if (!BP.SegmentBytes)
    return;
  if (BP.ReclaimSegments)
    Sink.reclaimThrough(Watermark);
  if (Telemetry *T = telemetry(); telemetryCompiledIn() && T) {
    T->gaugeSet(Gauge::G_SegmentsLive, Sink.liveSegments());
    BackpressureStats S = Sink.stats();
    if (S.SegmentsCreated > SegCreatedSeen) {
      T->count(Counter::C_SegmentsCreated, S.SegmentsCreated - SegCreatedSeen);
      SegCreatedSeen = S.SegmentsCreated;
    }
    if (S.SegmentsReclaimed > SegReclaimedSeen) {
      T->count(Counter::C_SegmentsReclaimed,
               S.SegmentsReclaimed - SegReclaimedSeen);
      SegReclaimedSeen = S.SegmentsReclaimed;
    }
  }
}

//===----------------------------------------------------------------------===//
// loadLogFile
//===----------------------------------------------------------------------===//

/// Read-window granularity: one fread and one decode sweep per megabyte
/// of log. Only a single record larger than the window forces growth.
static constexpr size_t ReaderChunk = 1 << 20;

/// How far the ctor probes `base.000001`, `base.000002`, ... for the
/// earliest live segment when the base path itself does not exist (the
/// front of the chain may have been reclaimed).
static constexpr uint64_t MaxSegmentProbe = 1 << 16;

LogFileReader::LogFileReader(const std::string &Path) {
  std::string Opened = Path;
  File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    // A segmented chain has no file at its base path — fall back to the
    // earliest segment still on disk (reclamation trims from the front).
    for (uint64_t I = 1; I <= MaxSegmentProbe && !File; ++I) {
      Opened = logSegmentPath(Path, I);
      File = std::fopen(Opened.c_str(), "rb");
    }
    if (!File)
      return;
  }
  Buf.resize(ReaderChunk);
  refill();
  ByteReader R(Buf.data(), End);
  LogSegmentInfo Seg;
  Version = readLogHeader(R, &Seg);
  if (Version == 0) {
    Malformed = true; // magic present but header malformed/unknown
    return;
  }
  if (Version == LogSegmentVersion) {
    // Chain walking needs the base path; a segment file renamed to
    // something else is still readable, just as a single segment.
    uint64_t PathIndex = 0;
    if (splitLogSegmentPath(Opened, ChainBase, PathIndex))
      ChainIndex = Seg.Index;
  }
  Decoder.setVersion(Version);
  Start = R.position(); // 0 for headerless v1 streams
  Consumed = R.position();
}

LogFileReader::~LogFileReader() {
  if (File)
    std::fclose(File);
}

void LogFileReader::refill() {
  // Compact the undecoded suffix to the front, then top the window up.
  if (Start > 0) {
    std::memmove(Buf.data(), Buf.data() + Start, End - Start);
    End -= Start;
    Start = 0;
  }
  if (End == Buf.size())
    Buf.resize(Buf.size() * 2); // one record larger than the window
  size_t N = std::fread(Buf.data() + End, 1, Buf.size() - End, File);
  End += N;
  if (N == 0) {
    Eof = true;
    if (Tailing)
      std::clearerr(File); // the writer may append more; re-probe later
  }
}

bool LogFileReader::advanceSegment() {
  if (ChainBase.empty())
    return false;
  std::string NextPath = logSegmentPath(ChainBase, ChainIndex + 1);
  std::FILE *NF = std::fopen(NextPath.c_str(), "rb");
  if (!NF)
    return false; // no successor (yet)
  // Peek the successor's header before committing to the switch: right
  // after rotation it may exist with its header still in the writer's
  // stdio buffer.
  uint8_t Hdr[32]; // magic + three varints is at most 25 bytes
  size_t HN = std::fread(Hdr, 1, sizeof(Hdr), NF);
  ByteReader R(Hdr, HN);
  LogSegmentInfo Seg;
  uint32_t V = readLogHeader(R, &Seg);
  if (V != LogSegmentVersion) {
    std::fclose(NF);
    if (Tailing || HN == 0)
      return false; // header not flushed yet / crashed mid-rotation
    Malformed = true;
    return false;
  }
  // A complete successor header proves the predecessor was flushed and
  // closed first (SegmentSink's rotation order), so leftover undecodable
  // bytes in it are real corruption.
  if (Start != End) {
    std::fclose(NF);
    Malformed = true;
    return false;
  }
  std::fclose(File);
  File = NF;
  std::fseek(File, static_cast<long>(R.position()), SEEK_SET);
  Eof = false;
  Start = End = 0;
  Consumed += R.position();
  // Segments are self-contained: fresh name-interning table per file.
  Decoder = ActionDecoder();
  Decoder.setVersion(V);
  ChainIndex = Seg.Index;
  return true;
}

bool LogFileReader::next(Action &Out) {
  if (!File || Malformed)
    return false;
  while (true) {
    if (Start < End) {
      // Speculative decode: on failure this may be a record truncated at
      // the window end, so roll the decoder's name table back and retry
      // with more data before declaring the stream malformed.
      size_t SavedNames = Decoder.nameCount();
      ByteReader R(Buf.data() + Start, End - Start);
      if (Decoder.decode(R, Out)) {
        Start += R.position();
        Consumed += R.position();
        return true;
      }
      Decoder.truncateNames(SavedNames);
    }
    Eof = false; // re-probe: tailed files grow, chains gain successors
    size_t Had = End - Start;
    refill();
    if (!Eof && End - Start != Had)
      continue; // new bytes: retry the decode
    // At the (current) end of this file: continue into the successor
    // segment if one exists.
    if (advanceSegment())
      continue;
    if (Malformed)
      return false;
    if (Tailing)
      return false; // no complete record *yet*; caller retries later
    if (Start != End)
      Malformed = true; // trailing undecodable bytes
    return false;
  }
}

bool vyrd::loadLogFile(const std::string &Path, std::vector<Action> &Out) {
  LogFileReader Reader(Path);
  if (!Reader.valid())
    return false;
  Action A;
  while (Reader.next(A))
    Out.push_back(std::move(A));
  return !Reader.malformed();
}
