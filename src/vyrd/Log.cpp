//===- Log.cpp - Execution logs connecting program and verifier ----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Log.h"

#include "vyrd/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace vyrd;

namespace {

/// Append accounting shared by the mutex-guarded backends: counts the
/// append and, when \p T0 is non-zero (a sample point), records the
/// latency — mirroring what BufferedLog's shards do so backend
/// comparisons stay apples-to-apples.
void countAppend(Telemetry *T, uint64_t T0) {
  if (!telemetryCompiledIn() || !T)
    return;
  TelemetryCell &TC = T->cell();
  TC.count(Counter::C_LogAppends);
  if (T0)
    TC.record(Histo::H_AppendNs, telemetryNowNanos() - T0);
}

/// Every 64th append per thread is a latency-sample point.
bool sampleTick() {
  thread_local uint64_t Tick = 0;
  return (Tick++ & 63) == 0;
}

/// Shared-gauge accounting for a record entering / leaving a bounded
/// in-memory queue (see the Gauge enum: these are hub-level levels, not
/// per-thread counters).
void gaugeAdmit(Telemetry *T, size_t FootprintBytes) {
  if (!telemetryCompiledIn() || !T)
    return;
  T->gaugeAdd(Gauge::G_PendingRecords, 1);
  T->gaugeAdd(Gauge::G_TailBytes, FootprintBytes);
}

void gaugeRelease(Telemetry *T, size_t FootprintBytes) {
  if (!telemetryCompiledIn() || !T)
    return;
  T->gaugeSub(Gauge::G_PendingRecords, 1);
  T->gaugeSub(Gauge::G_TailBytes, FootprintBytes);
}

} // namespace

LogWriter::~LogWriter() = default;
Log::~Log() = default;

bool Log::nextBatch(std::vector<Action> &Out, size_t Max) {
  Out.clear();
  if (Max == 0)
    Max = 1;
  Action A;
  if (!next(A))
    return false;
  Out.push_back(std::move(A));
  bool End = false;
  while (Out.size() < Max && tryNext(A, End))
    Out.push_back(std::move(A));
  return true;
}

//===----------------------------------------------------------------------===//
// MemoryLog
//===----------------------------------------------------------------------===//

MemoryLog::MemoryLog() = default;
MemoryLog::MemoryLog(const BackpressureConfig &BPConfig) : BP(BPConfig) {}
MemoryLog::~MemoryLog() = default;

bool MemoryLog::overLimitLocked() const {
  return Q.size() >= BP.MaxPendingRecords ||
         (BP.MaxTailBytes && QueueBytes >= BP.MaxTailBytes);
}

uint64_t MemoryLog::append(Action A) {
  Telemetry *T = telemetry();
  uint64_t T0 = 0;
  if (telemetryCompiledIn() && T && sampleTick())
    T0 = telemetryNowNanos();
  uint64_t Seq;
  {
    std::unique_lock Lock(M);
    assert(!Closed && "append after close");
    A.Seq = NextSeq++;
    Seq = A.Seq;
    if (BP.Enabled) {
      bool Over = overLimitLocked();
      if (BP.Policy == BackpressurePolicy::BP_Shed &&
          Shed.shouldShed(A, Over)) {
        // Dropped entirely — there is no disk copy here. The sequence
        // number stays consumed so the witness order of admitted records
        // is unchanged (the checker never needs dense numbers).
        ++Stats.ShedRecords;
        if (telemetryCompiledIn() && T)
          T->count(Counter::C_ShedRecords);
        countAppend(T, T0);
        return Seq;
      }
      if (BP.Policy != BackpressurePolicy::BP_Shed && Over) {
        // BP_Block — and BP_SpillToDisk, which has nowhere to spill in a
        // purely in-memory log and degrades to blocking (validate()
        // rejects the combination for Verifier-owned logs).
        ++Stats.BlockedAppends;
        uint64_t W0 = telemetryNowNanos();
        SpaceCV.wait(Lock, [&] { return !overLimitLocked() || Closed; });
        uint64_t Waited = telemetryNowNanos() - W0;
        Stats.BlockedNanos += Waited;
        if (telemetryCompiledIn() && T) {
          T->count(Counter::C_BlockedAppends);
          T->record(Histo::H_BlockedNs, Waited);
        }
      }
      size_t FP = actionFootprintBytes(A);
      QueueBytes += FP;
      Stats.PendingRecordsHwm =
          std::max<uint64_t>(Stats.PendingRecordsHwm, Q.size() + 1);
      Stats.TailBytesHwm = std::max<uint64_t>(Stats.TailBytesHwm, QueueBytes);
      gaugeAdmit(T, FP);
    }
    Q.push_back(std::move(A));
    CV.notify_one();
  }
  countAppend(T, T0);
  return Seq;
}

void MemoryLog::close() {
  std::lock_guard Lock(M);
  Closed = true;
  CV.notify_all();
  SpaceCV.notify_all();
}

void MemoryLog::popLocked(Action &Out) {
  Out = std::move(Q.front());
  Q.pop_front();
  if (BP.Enabled) {
    size_t FP = actionFootprintBytes(Out);
    QueueBytes -= std::min<uint64_t>(FP, QueueBytes);
    gaugeRelease(telemetry(), FP);
    SpaceCV.notify_one();
  }
}

bool MemoryLog::next(Action &Out) {
  std::unique_lock Lock(M);
  CV.wait(Lock, [&] { return !Q.empty() || Closed; });
  if (Q.empty())
    return false;
  popLocked(Out);
  return true;
}

bool MemoryLog::tryNext(Action &Out, bool &End) {
  std::unique_lock Lock(M);
  if (!Q.empty()) {
    popLocked(Out);
    End = false;
    return true;
  }
  End = Closed;
  return false;
}

uint64_t MemoryLog::appendCount() const {
  std::lock_guard Lock(M);
  return NextSeq;
}

BackpressureStats MemoryLog::backpressureStats() const {
  std::lock_guard Lock(M);
  return Stats;
}

void MemoryLog::setShedClassifier(std::function<bool(const Action &)> Fn) {
  std::lock_guard Lock(M);
  Shed.setClassifier(std::move(Fn));
}

//===----------------------------------------------------------------------===//
// FileLog
//===----------------------------------------------------------------------===//

FileLog::FileLog(const std::string &Path, bool &Valid, bool RetainTail)
    : FileLog(Path, Valid, BackpressureConfig(), RetainTail) {}

FileLog::FileLog(const std::string &Path, bool &Valid,
                 const BackpressureConfig &BPConfig, bool RetainTail)
    : Path(Path), RetainTail(RetainTail), BP(BPConfig) {
  // Plain-file mode (SegmentBytes == 0) writes the same v3 header and
  // byte stream as the historical single-FILE implementation; segmented
  // mode rotates into a chain (docs/LOGFORMAT.md, v4).
  Valid = Sink.open(Path, BP.SegmentBytes);
}

FileLog::~FileLog() = default;

bool FileLog::overLimitLocked() const {
  return Tail.size() >= BP.MaxPendingRecords ||
         (BP.MaxTailBytes && TailBytes >= BP.MaxTailBytes);
}

bool FileLog::spillModeOn() const {
  return BP.Enabled && BP.Policy == BackpressurePolicy::BP_SpillToDisk &&
         RetainTail;
}

void FileLog::admitTailLocked(std::unique_lock<std::mutex> &Lock,
                              Action &&A) {
  Telemetry *T = telemetry();
  if (BP.Enabled) {
    bool Over = overLimitLocked();
    switch (BP.Policy) {
    case BackpressurePolicy::BP_Shed:
      if (Shed.shouldShed(A, Over)) {
        // Dropped from the *tail* only: the record is already on disk, so
        // post-mortem re-checking sees the complete log. The accounting
        // says exactly what the online checker did not.
        ++Stats.ShedRecords;
        if (telemetryCompiledIn() && T)
          T->count(Counter::C_ShedRecords);
        return;
      }
      break;
    case BackpressurePolicy::BP_SpillToDisk:
      if (Over) {
        // The disk copy is the overflow buffer; the reader re-reads the
        // gap through a tailing LogFileReader when it catches up.
        ++Stats.SpilledRecords;
        if (telemetryCompiledIn() && T)
          T->count(Counter::C_SpilledRecords);
        return;
      }
      break;
    case BackpressurePolicy::BP_Block:
      if (Over) {
        ++Stats.BlockedAppends;
        uint64_t W0 = telemetryNowNanos();
        SpaceCV.wait(Lock, [&] { return !overLimitLocked() || Closed; });
        uint64_t Waited = telemetryNowNanos() - W0;
        Stats.BlockedNanos += Waited;
        if (telemetryCompiledIn() && T) {
          T->count(Counter::C_BlockedAppends);
          T->record(Histo::H_BlockedNs, Waited);
        }
      }
      break;
    }
    size_t FP = actionFootprintBytes(A);
    TailBytes += FP;
    Stats.PendingRecordsHwm =
        std::max<uint64_t>(Stats.PendingRecordsHwm, Tail.size() + 1);
    Stats.TailBytesHwm = std::max<uint64_t>(Stats.TailBytesHwm, TailBytes);
    gaugeAdmit(T, FP);
  }
  Tail.push_back(std::move(A));
  CV.notify_one();
}

uint64_t FileLog::append(Action A) {
  Telemetry *T = telemetry();
  uint64_t T0 = 0;
  if (telemetryCompiledIn() && T && sampleTick())
    T0 = telemetryNowNanos();
  uint64_t Seq;
  {
    std::unique_lock Lock(M);
    assert(!Closed && "append after close");
    A.Seq = NextSeq++;
    Seq = A.Seq;
    // To disk first (one buffered fwrite, as before), so every sequence
    // number below NextSeq is reachable through the sink — the invariant
    // the spill reader relies on.
    Sink.write(A);
    Sink.flushPending();
    if (RetainTail)
      admitTailLocked(Lock, std::move(A));
  }
  countAppend(T, T0);
  return Seq;
}

void FileLog::close() {
  std::lock_guard Lock(M);
  Closed = true;
  Sink.sync();
  CV.notify_all();
  SpaceCV.notify_all();
}

void FileLog::popTailLocked(Action &Out) {
  Out = std::move(Tail.front());
  Tail.pop_front();
  if (BP.Enabled) {
    size_t FP = actionFootprintBytes(Out);
    TailBytes -= std::min<uint64_t>(FP, TailBytes);
    gaugeRelease(telemetry(), FP);
    SpaceCV.notify_one();
    if (spillModeOn()) {
      Delivered = Out.Seq + 1;
      if (SpillReader)
        SpillReader.reset(); // stale: positioned inside a finished gap
    }
  }
}

bool FileLog::spillNextLocked(Action &Out) {
  // Called with Delivered < NextSeq: the record exists at the sink (it
  // was written before NextSeq advanced past it), at worst still in
  // stdio buffers — which sync() pushes down.
  if (!SpillReader || SpillNextSeq != Delivered) {
    Sink.sync();
    auto R = std::make_unique<LogFileReader>(Sink.pathForSeq(Delivered));
    R->setTailing(true);
    if (!R->valid())
      return false;
    SpillReader = std::move(R);
    SpillNextSeq = Delivered; // reads below skip up to it
  }
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    Action A;
    while (SpillReader->next(A)) {
      SpillNextSeq = A.Seq + 1;
      if (A.Seq < Delivered)
        continue; // the reader opened at a segment boundary before the gap
      Delivered = A.Seq + 1; // seqs are dense in spill mode
      Out = std::move(A);
      return true;
    }
    if (SpillReader->malformed()) {
      // Disk corruption in the spilled region: the gap can never be
      // delivered. Latch the failure (instead of reopening forever) and
      // let the reader run out at the gap.
      std::fprintf(stderr,
                   "vyrd: spill re-read failed (malformed log near seq "
                   "%llu); online checking truncated\n",
                   static_cast<unsigned long long>(Delivered));
      SpillReader.reset();
      SpillFailed = true;
      return false;
    }
    Sink.sync(); // the record may still be buffered; retry once synced
  }
  return false;
}

bool FileLog::readyLocked() const {
  if (!Tail.empty())
    return true;
  return spillModeOn() && !SpillFailed && Delivered < NextSeq;
}

bool FileLog::tryNextLocked(Action &Out, bool &End) {
  if (!spillModeOn()) {
    if (!Tail.empty()) {
      popTailLocked(Out);
      End = false;
      return true;
    }
    End = Closed;
    return false;
  }
  // Spill mode: deliver strictly in sequence order, preferring the tail
  // and filling gaps (spilled regions) from the sink's file(s).
  while (!Tail.empty() && Tail.front().Seq < Delivered) {
    Action Drop;
    popTailLocked(Drop); // already delivered from disk (no such overlap
                         // under M, but harmless to tolerate)
  }
  if (!Tail.empty() && Tail.front().Seq == Delivered) {
    popTailLocked(Out);
    End = false;
    return true;
  }
  if (Delivered < NextSeq && !SpillFailed) {
    End = false;
    return spillNextLocked(Out); // false = not visible yet, caller retries
  }
  End = Closed;
  return false;
}

bool FileLog::next(Action &Out) {
  std::unique_lock Lock(M);
  while (true) {
    CV.wait(Lock, [&] { return readyLocked() || Closed; });
    bool End = false;
    if (tryNextLocked(Out, End))
      return true;
    if (End)
      return false;
    // Spill data momentarily invisible (stdio buffering around a
    // rotation); spillNextLocked has already synced, so retrying is
    // enough — the loop converges within an attempt or two.
  }
}

bool FileLog::tryNext(Action &Out, bool &End) {
  std::unique_lock Lock(M);
  return tryNextLocked(Out, End);
}

uint64_t FileLog::appendCount() const {
  std::lock_guard Lock(M);
  return NextSeq;
}

uint64_t FileLog::byteCount() const { return Sink.bytesWritten(); }

BackpressureStats FileLog::backpressureStats() const {
  std::lock_guard Lock(M);
  BackpressureStats S = Stats;
  S.merge(Sink.stats());
  return S;
}

void FileLog::setShedClassifier(std::function<bool(const Action &)> Fn) {
  std::lock_guard Lock(M);
  Shed.setClassifier(std::move(Fn));
}

void FileLog::takeSegmentCuts(std::vector<SegmentCut> &Out) {
  if (BP.SegmentBytes)
    Sink.drainCuts(Out);
}

void FileLog::reclaimCheckedPrefix(uint64_t Watermark) {
  if (!BP.SegmentBytes)
    return;
  if (BP.ReclaimSegments)
    Sink.reclaimThrough(Watermark);
  if (Telemetry *T = telemetry(); telemetryCompiledIn() && T) {
    T->gaugeSet(Gauge::G_SegmentsLive, Sink.liveSegments());
    BackpressureStats S = Sink.stats();
    if (S.SegmentsCreated > SegCreatedSeen) {
      T->count(Counter::C_SegmentsCreated, S.SegmentsCreated - SegCreatedSeen);
      SegCreatedSeen = S.SegmentsCreated;
    }
    if (S.SegmentsReclaimed > SegReclaimedSeen) {
      T->count(Counter::C_SegmentsReclaimed,
               S.SegmentsReclaimed - SegReclaimedSeen);
      SegReclaimedSeen = S.SegmentsReclaimed;
    }
  }
}

//===----------------------------------------------------------------------===//
// loadLogFile
//===----------------------------------------------------------------------===//

/// Read-window granularity: one fread and one decode sweep per megabyte
/// of log. Only a single record larger than the window forces growth.
static constexpr size_t ReaderChunk = 1 << 20;

/// How far the ctor probes `base.000001`, `base.000002`, ... for the
/// earliest live segment when the base path itself does not exist (the
/// front of the chain may have been reclaimed).
static constexpr uint64_t MaxSegmentProbe = 1 << 16;

LogFileReader::LogFileReader(const std::string &Path) {
  std::string Opened = Path;
  File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    // A segmented chain has no file at its base path — fall back to the
    // earliest segment still on disk (reclamation trims from the front).
    for (uint64_t I = 1; I <= MaxSegmentProbe && !File; ++I) {
      Opened = logSegmentPath(Path, I);
      File = std::fopen(Opened.c_str(), "rb");
    }
    if (!File)
      return;
  }
  Buf.resize(ReaderChunk);
  refill();
  ByteReader R(Buf.data(), End);
  LogSegmentInfo Seg;
  Version = readLogHeader(R, &Seg);
  if (Version == 0) {
    Malformed = true; // magic present but header malformed/unknown
    return;
  }
  if (Version == LogSegmentVersion) {
    // Chain walking needs the base path; a segment file renamed to
    // something else is still readable, just as a single segment.
    uint64_t PathIndex = 0;
    if (splitLogSegmentPath(Opened, ChainBase, PathIndex))
      ChainIndex = Seg.Index;
  }
  Decoder.setVersion(Version);
  Start = R.position(); // 0 for headerless v1 streams
  Consumed = R.position();
}

LogFileReader::~LogFileReader() {
  if (File)
    std::fclose(File);
}

void LogFileReader::refill() {
  // Compact the undecoded suffix to the front, then top the window up.
  if (Start > 0) {
    std::memmove(Buf.data(), Buf.data() + Start, End - Start);
    End -= Start;
    Start = 0;
  }
  if (End == Buf.size())
    Buf.resize(Buf.size() * 2); // one record larger than the window
  size_t N = std::fread(Buf.data() + End, 1, Buf.size() - End, File);
  End += N;
  if (N == 0) {
    Eof = true;
    if (Tailing)
      std::clearerr(File); // the writer may append more; re-probe later
  }
}

bool LogFileReader::advanceSegment() {
  if (ChainBase.empty())
    return false;
  std::string NextPath = logSegmentPath(ChainBase, ChainIndex + 1);
  std::FILE *NF = std::fopen(NextPath.c_str(), "rb");
  if (!NF)
    return false; // no successor (yet)
  // Peek the successor's header before committing to the switch: right
  // after rotation it may exist with its header still in the writer's
  // stdio buffer.
  uint8_t Hdr[32]; // magic + three varints is at most 25 bytes
  size_t HN = std::fread(Hdr, 1, sizeof(Hdr), NF);
  ByteReader R(Hdr, HN);
  LogSegmentInfo Seg;
  uint32_t V = readLogHeader(R, &Seg);
  if (V != LogSegmentVersion) {
    std::fclose(NF);
    if (Tailing || HN == 0)
      return false; // header not flushed yet / crashed mid-rotation
    Malformed = true;
    return false;
  }
  // A complete successor header proves the predecessor was flushed and
  // closed first (SegmentSink's rotation order), so leftover undecodable
  // bytes in it are real corruption.
  if (Start != End) {
    std::fclose(NF);
    Malformed = true;
    return false;
  }
  std::fclose(File);
  File = NF;
  std::fseek(File, static_cast<long>(R.position()), SEEK_SET);
  Eof = false;
  Start = End = 0;
  Consumed += R.position();
  // Segments are self-contained: fresh name-interning table per file.
  Decoder = ActionDecoder();
  Decoder.setVersion(V);
  ChainIndex = Seg.Index;
  return true;
}

bool LogFileReader::next(Action &Out) {
  if (!File || Malformed)
    return false;
  while (true) {
    if (Start < End) {
      // Speculative decode: on failure this may be a record truncated at
      // the window end, so roll the decoder's name table back and retry
      // with more data before declaring the stream malformed.
      size_t SavedNames = Decoder.nameCount();
      ByteReader R(Buf.data() + Start, End - Start);
      if (Decoder.decode(R, Out)) {
        Start += R.position();
        Consumed += R.position();
        return true;
      }
      Decoder.truncateNames(SavedNames);
    }
    Eof = false; // re-probe: tailed files grow, chains gain successors
    size_t Had = End - Start;
    refill();
    if (!Eof && End - Start != Had)
      continue; // new bytes: retry the decode
    // At the (current) end of this file: continue into the successor
    // segment if one exists.
    if (advanceSegment())
      continue;
    if (Malformed)
      return false;
    if (Tailing)
      return false; // no complete record *yet*; caller retries later
    if (Start != End)
      Malformed = true; // trailing undecodable bytes
    return false;
  }
}

bool vyrd::loadLogFile(const std::string &Path, std::vector<Action> &Out) {
  LogFileReader Reader(Path);
  if (!Reader.valid())
    return false;
  Action A;
  while (Reader.next(A))
    Out.push_back(std::move(A));
  return !Reader.malformed();
}
