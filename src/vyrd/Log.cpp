//===- Log.cpp - Execution logs connecting program and verifier ----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Log.h"

#include "vyrd/Telemetry.h"

#include <cassert>

using namespace vyrd;

namespace {

/// Append accounting shared by the mutex-guarded backends: counts the
/// append and, when \p T0 is non-zero (a sample point), records the
/// latency — mirroring what BufferedLog's shards do so backend
/// comparisons stay apples-to-apples.
void countAppend(Telemetry *T, uint64_t T0) {
  if (!telemetryCompiledIn() || !T)
    return;
  TelemetryCell &TC = T->cell();
  TC.count(Counter::C_LogAppends);
  if (T0)
    TC.record(Histo::H_AppendNs, telemetryNowNanos() - T0);
}

/// Every 64th append per thread is a latency-sample point.
bool sampleTick() {
  thread_local uint64_t Tick = 0;
  return (Tick++ & 63) == 0;
}

} // namespace

LogWriter::~LogWriter() = default;
Log::~Log() = default;

bool Log::nextBatch(std::vector<Action> &Out, size_t Max) {
  Out.clear();
  if (Max == 0)
    Max = 1;
  Action A;
  if (!next(A))
    return false;
  Out.push_back(std::move(A));
  bool End = false;
  while (Out.size() < Max && tryNext(A, End))
    Out.push_back(std::move(A));
  return true;
}

//===----------------------------------------------------------------------===//
// MemoryLog
//===----------------------------------------------------------------------===//

MemoryLog::MemoryLog() = default;
MemoryLog::~MemoryLog() = default;

uint64_t MemoryLog::append(Action A) {
  Telemetry *T = telemetry();
  uint64_t T0 = 0;
  if (telemetryCompiledIn() && T && sampleTick())
    T0 = telemetryNowNanos();
  uint64_t Seq;
  {
    std::lock_guard Lock(M);
    assert(!Closed && "append after close");
    A.Seq = NextSeq++;
    Seq = A.Seq;
    Q.push_back(std::move(A));
    CV.notify_one();
  }
  countAppend(T, T0);
  return Seq;
}

void MemoryLog::close() {
  std::lock_guard Lock(M);
  Closed = true;
  CV.notify_all();
}

bool MemoryLog::next(Action &Out) {
  std::unique_lock Lock(M);
  CV.wait(Lock, [&] { return !Q.empty() || Closed; });
  if (Q.empty())
    return false;
  Out = std::move(Q.front());
  Q.pop_front();
  return true;
}

bool MemoryLog::tryNext(Action &Out, bool &End) {
  std::lock_guard Lock(M);
  if (!Q.empty()) {
    Out = std::move(Q.front());
    Q.pop_front();
    End = false;
    return true;
  }
  End = Closed;
  return false;
}

uint64_t MemoryLog::appendCount() const {
  std::lock_guard Lock(M);
  return NextSeq;
}

//===----------------------------------------------------------------------===//
// FileLog
//===----------------------------------------------------------------------===//

FileLog::FileLog(const std::string &Path, bool &Valid, bool RetainTail)
    : Path(Path), RetainTail(RetainTail) {
  File = std::fopen(Path.c_str(), "wb");
  Valid = File != nullptr;
  if (File) {
    // Open with the format header (docs/LOGFORMAT.md) so readers can tell
    // the record layout; readers still accept headerless v1 files.
    ByteWriter HW;
    writeLogHeader(HW);
    std::fwrite(HW.buffer().data(), 1, HW.size(), File);
    Bytes = HW.size();
  }
}

FileLog::~FileLog() {
  if (File)
    std::fclose(File);
}

uint64_t FileLog::append(Action A) {
  Telemetry *T = telemetry();
  uint64_t T0 = 0;
  if (telemetryCompiledIn() && T && sampleTick())
    T0 = telemetryNowNanos();
  uint64_t Seq;
  {
    std::lock_guard Lock(M);
    assert(!Closed && "append after close");
    A.Seq = NextSeq++;
    Seq = A.Seq;
    Scratch.clear();
    Encoder.encode(A, Scratch);
    if (File)
      std::fwrite(Scratch.buffer().data(), 1, Scratch.size(), File);
    Bytes += Scratch.size();
    if (RetainTail) {
      Tail.push_back(std::move(A));
      CV.notify_one();
    }
  }
  countAppend(T, T0);
  return Seq;
}

void FileLog::close() {
  std::lock_guard Lock(M);
  Closed = true;
  if (File)
    std::fflush(File);
  CV.notify_all();
}

bool FileLog::next(Action &Out) {
  std::unique_lock Lock(M);
  CV.wait(Lock, [&] { return !Tail.empty() || Closed; });
  if (Tail.empty())
    return false;
  Out = std::move(Tail.front());
  Tail.pop_front();
  return true;
}

bool FileLog::tryNext(Action &Out, bool &End) {
  std::lock_guard Lock(M);
  if (!Tail.empty()) {
    Out = std::move(Tail.front());
    Tail.pop_front();
    End = false;
    return true;
  }
  End = Closed;
  return false;
}

uint64_t FileLog::appendCount() const {
  std::lock_guard Lock(M);
  return NextSeq;
}

uint64_t FileLog::byteCount() const {
  std::lock_guard Lock(M);
  return Bytes;
}

//===----------------------------------------------------------------------===//
// loadLogFile
//===----------------------------------------------------------------------===//

bool vyrd::loadLogFile(const std::string &Path, std::vector<Action> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::vector<uint8_t> Data;
  uint8_t Buf[64 * 1024];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Data.insert(Data.end(), Buf, Buf + N);
  std::fclose(F);

  ByteReader R(Data.data(), Data.size());
  uint32_t Version = readLogHeader(R);
  if (Version == 0)
    return false; // Magic present but header malformed / version unknown.
  ActionDecoder Decoder;
  Decoder.setVersion(Version);
  Action A;
  while (!R.atEnd()) {
    if (!Decoder.decode(R, A))
      return false;
    Out.push_back(A);
  }
  return true;
}
