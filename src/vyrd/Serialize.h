//===- Serialize.h - Binary encoding of log records -------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compact binary serialization for Action records, used by FileLog. Plays
/// the role the .NET binary object serializer played in the original tool
/// (Sec. 6.1): records are restored exactly as they were saved at runtime.
///
/// Format: a stream of records. Each record starts with a tag byte:
/// `0xFF` introduces a name definition (varint file-local id + string);
/// any other tag is an ActionKind and is followed by the action fields.
/// Integers are LEB128 varints; names are file-local ids defined on first
/// use, so method/variable strings are written once per file.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_SERIALIZE_H
#define VYRD_SERIALIZE_H

#include "vyrd/Action.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vyrd {

/// Growable byte sink with varint helpers.
class ByteWriter {
public:
  void u8(uint8_t B) { Buf.push_back(B); }
  void varint(uint64_t V);
  void svarint(int64_t V);
  void bytes(const void *Data, size_t Size);
  void str(std::string_view S);

  const std::vector<uint8_t> &buffer() const { return Buf; }
  void clear() { Buf.clear(); }
  size_t size() const { return Buf.size(); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked byte source. All reads report failure through ok(); once a
/// read fails the reader stays failed.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size)
      : Data(Data), Size(Size), Pos(0), Ok(true) {}

  bool ok() const { return Ok; }
  bool atEnd() const { return Pos >= Size; }
  size_t position() const { return Pos; }

  uint8_t u8();
  uint64_t varint();
  int64_t svarint();
  bool bytes(void *Out, size_t N);
  std::string str();

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos;
  bool Ok;
};

/// Serializes Actions into a byte stream, emitting name definitions on first
/// use. One instance per output file; not thread-safe (callers lock).
class ActionEncoder {
public:
  /// Appends the encoding of \p A to \p W. Batch consumers (BufferedLog's
  /// flusher) fill one buffer with a whole flush epoch of encodings and
  /// write it with a single file write.
  void encode(const Action &A, ByteWriter &W);

private:
  void encodeName(Name N, ByteWriter &W);
  void encodeValue(const Value &V, ByteWriter &W);

  std::unordered_map<uint32_t, uint32_t> FileIds; // Name id -> file-local id
  uint32_t NextFileId = 1;
};

/// Decodes Actions from a byte stream produced by ActionEncoder.
class ActionDecoder {
public:
  /// Decodes one Action starting at the reader position. Consumes any name
  /// definitions that precede it. Returns false on malformed input or clean
  /// end of stream (distinguish via \p R.atEnd()).
  bool decode(ByteReader &R, Action &Out);

private:
  Name decodeName(ByteReader &R);
  Value decodeValue(ByteReader &R);

  std::vector<Name> Names; // file-local id - 1 -> interned Name
};

} // namespace vyrd

#endif // VYRD_SERIALIZE_H
