//===- Serialize.h - Binary encoding of log records -------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compact binary serialization for Action records, used by FileLog. Plays
/// the role the .NET binary object serializer played in the original tool
/// (Sec. 6.1): records are restored exactly as they were saved at runtime.
///
/// Format (v3): a 5-byte header — the magic bytes "VYRD" followed by a
/// varint format version — then a stream of records. Each record starts
/// with a tag byte: `0xFF` introduces a name definition (varint file-local
/// id + string); any other tag is an ActionKind and is followed by the
/// action fields. Integers are LEB128 varints; names are file-local ids
/// defined on first use, so method/variable strings are written once per
/// file.
///
/// Version history (see docs/LOGFORMAT.md):
///   v1 — no header, records start at byte 0, no ObjectId field.
///   v2 — "VYRD" header; each record carries a varint ObjectId after Tid.
///   v3 — one value slot per record instead of v1/v2's two (Ret, Val):
///        no record kind uses both, so the pair wasted a null byte per
///        record. The decoder maps a legacy pair onto the merged
///        Action::Ret by kind (Val for writes, Ret otherwise).
/// v1/v2 files remain readable: 'V' (0x56) is not a valid v1 tag byte, so
/// a reader can sniff the magic and fall back to the headerless v1
/// layout, and the header version selects the two-slot decode path.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_SERIALIZE_H
#define VYRD_SERIALIZE_H

#include "vyrd/Action.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vyrd {

/// Current version of the on-disk log format (plain single-file logs).
constexpr uint32_t LogFormatVersion = 3;

/// Format version of one file in a rotated segment chain (SegmentSink):
/// the header additionally carries the segment's 1-based chain index and
/// the sequence number of its first record, and the record layout is
/// exactly v3. Each segment restarts the name-interning table, so a
/// segment decodes without its predecessors (they may be reclaimed).
constexpr uint32_t LogSegmentVersion = 4;

/// Magic bytes opening every log file from v2 on. The first byte, 'V'
/// (0x56), is neither the name-definition tag (0xFF) nor a valid
/// ActionKind, which is what makes headerless v1 files distinguishable.
constexpr uint8_t LogMagic[4] = {'V', 'Y', 'R', 'D'};

class ByteWriter;
class ByteReader;

/// Appends the file header (magic + current format version) to \p W.
/// Log backends call this once, before the first record.
void writeLogHeader(ByteWriter &W);

/// Appends a segment-file header (magic + LogSegmentVersion + varint
/// segment index + varint first sequence number) to \p W. SegmentSink
/// writes one at the front of every segment.
void writeSegmentHeader(ByteWriter &W, uint64_t Index, uint64_t FirstSeq);

/// The extra fields a LogSegmentVersion header carries.
struct LogSegmentInfo {
  uint64_t Index = 0;    ///< 1-based position in the segment chain
  uint64_t FirstSeq = 0; ///< sequence number of the segment's first record
};

/// Consumes the file header if one is present at the reader position and
/// returns the stream's format version: the header's version when the
/// magic matches, 1 for headerless legacy streams (the reader position is
/// left untouched), or 0 when the magic is present but the header is
/// malformed or the version is newer than this build understands. A
/// LogSegmentVersion header's index/first-seq fields are stored into
/// \p Seg when non-null (and consumed either way).
uint32_t readLogHeader(ByteReader &R, LogSegmentInfo *Seg = nullptr);

/// Appends the kind-tagged encoding of \p V to \p W. This is the same
/// wire form ActionEncoder uses for argument/return slots; snapshot blobs
/// (Snapshot.h) reuse it for spec and shadow state.
void writeValue(ByteWriter &W, const Value &V);

/// Decodes one kind-tagged value at the reader position. Returns a null
/// Value on malformed input (check \p R.ok()).
Value readValue(ByteReader &R);

/// Growable byte sink with varint helpers.
class ByteWriter {
public:
  void u8(uint8_t B) { Buf.push_back(B); }
  void varint(uint64_t V);
  void svarint(int64_t V);
  void bytes(const void *Data, size_t Size);
  void str(std::string_view S);

  const std::vector<uint8_t> &buffer() const { return Buf; }
  void clear() { Buf.clear(); }
  size_t size() const { return Buf.size(); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked byte source. All reads report failure through ok(); once a
/// read fails the reader stays failed.
class ByteReader {
public:
  ByteReader(const uint8_t *Data, size_t Size)
      : Data(Data), Size(Size), Pos(0), Ok(true) {}

  bool ok() const { return Ok; }
  bool atEnd() const { return Pos >= Size; }
  size_t position() const { return Pos; }

  uint8_t u8();
  uint64_t varint();
  int64_t svarint();
  bool bytes(void *Out, size_t N);
  std::string str();

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos;
  bool Ok;
};

/// Serializes Actions into a byte stream, emitting name definitions on first
/// use. One instance per output file; not thread-safe (callers lock).
class ActionEncoder {
public:
  /// Appends the encoding of \p A to \p W. Batch consumers (BufferedLog's
  /// flusher) fill one buffer with a whole flush epoch of encodings and
  /// write it with a single file write.
  void encode(const Action &A, ByteWriter &W);

private:
  void encodeName(Name N, ByteWriter &W);
  void encodeValue(const Value &V, ByteWriter &W);

  std::unordered_map<uint32_t, uint32_t> FileIds; // Name id -> file-local id
  uint32_t NextFileId = 1;
};

/// Decodes Actions from a byte stream produced by ActionEncoder.
class ActionDecoder {
public:
  /// Selects the record layout to decode. Callers obtain the stream's
  /// version from readLogHeader(); the default is the current version.
  void setVersion(uint32_t V) { Version = V; }
  uint32_t version() const { return Version; }

  /// Decodes one Action starting at the reader position. Consumes any name
  /// definitions that precede it. Returns false on malformed input or clean
  /// end of stream (distinguish via \p R.atEnd()).
  bool decode(ByteReader &R, Action &Out);

  /// Streaming-reader support. A decode() that fails because the record
  /// is truncated at the end of a read window may already have consumed
  /// name definitions; since definitions must arrive with strictly
  /// sequential file-local ids, retrying the same bytes against the grown
  /// table would be rejected. Callers snapshot nameCount() before a
  /// speculative decode and truncateNames() back before the retry
  /// (re-interning the same strings is idempotent). See LogFileReader.
  size_t nameCount() const { return Names.size(); }
  void truncateNames(size_t N) {
    if (N < Names.size())
      Names.resize(N);
  }

private:
  Name decodeName(ByteReader &R);
  Value decodeValue(ByteReader &R);

  std::vector<Name> Names; // file-local id - 1 -> interned Name
  uint32_t Version = LogFormatVersion;
};

} // namespace vyrd

#endif // VYRD_SERIALIZE_H
