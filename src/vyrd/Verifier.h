//===- Verifier.h - Multi-object verification engine ------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifier owns one shared execution log and, per *registered object*, a
/// Spec + Replayer + RefinementChecker pipeline. Records are stamped with
/// their object's id at the hooks, the consumption loop demultiplexes each
/// batch per object (Sec. 6.2 of the paper: refinement is checked object by
/// object), and the per-object pipelines run either inline on the
/// consumption thread (CheckerThreads = 1, the historical behavior) or on
/// a pool of verification workers with per-object affinity, so one
/// object's records are always checked in log order while different
/// objects proceed in parallel.
///
/// Since the producer/checker split the Verifier is a thin composition of
/// two halves: the capture pipeline (hooks -> log backend -> segment sink)
/// it owns directly, and a CheckerService holding the per-object checking
/// pipelines. In the default, in-process wiring the pump thread feeds the
/// service straight from the log — bit-identical to the historical
/// monolithic engine. With VerifierConfig::Shipping set, the checker half
/// runs in a remote `vyrd-checkd` process instead: the pump ships closed
/// log segments through a SocketTransport and reclaims them as the remote
/// checker acks its watermark (docs/SHIPPING.md).
///
/// The check runs *online* — a dedicated consumption thread drains the log
/// concurrently with the program, as the VYRD tool does — or *offline*,
/// replaying the completed log when finish() is called (the "VYRD alone"
/// column of Table 3).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_VERIFIER_H
#define VYRD_VERIFIER_H

#include "vyrd/Adaptive.h"
#include "vyrd/BufferedLog.h"
#include "vyrd/Checker.h"
#include "vyrd/CheckerService.h"
#include "vyrd/Instrument.h"
#include "vyrd/Log.h"
#include "vyrd/Monitor.h"
#include "vyrd/Replayer.h"
#include "vyrd/Spec.h"
#include "vyrd/Telemetry.h"
#include "vyrd/Trace.h"
#include "vyrd/Transport.h"

#include <memory>
#include <string>
#include <thread>

namespace vyrd {

/// Which Log implementation a Verifier constructs. See
/// docs/ARCHITECTURE.md ("Choosing a log backend") for the trade-offs.
enum class LogBackend : uint8_t {
  /// FileLog when LogFilePath is set, MemoryLog otherwise (the historical
  /// default).
  LB_Auto,
  /// Mutex-guarded in-memory queue.
  LB_Memory,
  /// Durable binary file + in-memory tail; requires LogFilePath.
  LB_File,
  /// Sharded per-thread rings merged by a flusher thread (BufferedLog);
  /// also writes LogFilePath when set.
  LB_Buffered,
};

/// Observability options for a Verifier (docs/OBSERVABILITY.md).
struct TelemetryOptions {
  /// Master switch: construct a Telemetry hub and thread it through the
  /// pipeline (hooks, log backend, checker feed, view comparison); the
  /// final snapshot lands in VerifierReport::Telemetry.
  bool Enabled = false;
  /// Period of the checker-lag sampler thread; 0 = no sampler.
  unsigned SampleIntervalUs = 0;
  /// Report a stalled verifier (lag pending, consumer quiet) after this
  /// many milliseconds; 0 = no watchdog. Implies a sampler (1 ms default
  /// period when SampleIntervalUs is 0).
  unsigned WatchdogQuietMs = 0;
  /// When non-empty, record the run as Chrome/Perfetto trace_event JSON
  /// and write it to this path at finish(). Works with or without
  /// Enabled; see TraceRecorder for the event mapping.
  std::string TraceFilePath;
};

/// Configuration for a Verifier.
struct VerifierConfig {
  /// Default checker configuration, applied to every registered object
  /// that does not pass its own (and to the single object the legacy
  /// spec+replayer constructor registers).
  CheckerConfig Checker;
  /// Run the checkers concurrently with the program. When false, records
  /// are buffered and checked when finish() is called.
  bool Online = true;
  /// Log file path, used by the LB_Auto/LB_File/LB_Buffered backends.
  std::string LogFilePath;
  /// Log implementation to construct.
  LogBackend Backend = LogBackend::LB_Auto;
  /// Shard capacity for LB_Buffered (records per producer thread).
  size_t ShardCapacity = 1024;
  /// Bound + admission policy for every queue between the hooks and the
  /// checkers: the log backend's pending queue/tail and the checker
  /// pool's per-object batch queues (see Backpressure.h for the
  /// policies). Disabled by default — the historical unbounded pipeline.
  /// SegmentBytes > 0 additionally rotates file-backed logs into a
  /// segment chain that is trimmed as checkers advance.
  BackpressureConfig Backpressure;
  /// Self-tuning pipeline (docs/ARCHITECTURE.md, "Self-tuning pipeline"):
  /// when Adaptive.Enabled, an AIMD controller on the pump thread drives
  /// the batch target off live checker lag, and — with
  /// Adaptive.EscalatePolicy — walks the active admission policy up and
  /// down the Block → Spill → Shed ladder under sustained pressure.
  /// Requires Online; escalation additionally requires
  /// Backpressure.Enabled. Off by default: the pipeline then behaves
  /// bit-identically to previous releases (fixed 256-record batches,
  /// static policy).
  AdaptiveConfig Adaptive;
  /// Write spec-state snapshot sidecars at segment cuts (docs/SNAPSHOTS.md):
  /// whenever the segmented log rotates, the pump aligns every object's
  /// checker exactly on the cut, serializes the checkers' resumable state
  /// and writes it as `<LogFilePath>.NNNNNN.snap` next to the new segment.
  /// A later `vyrd-check --resume` (or epochCheck) then restarts checking
  /// from the oldest live segment instead of record 0. Requires a
  /// file-backed log with Backpressure.SegmentBytes > 0. Snapshots are
  /// best-effort: a cut is skipped (counted in C_SnapshotSkips) when a
  /// checker is dirty, its spec/replayer does not support serialization,
  /// or — with the buffered backend's asynchronous flusher — the cut is
  /// reported after the pump already fed records past it.
  bool Snapshots = false;
  /// Size of the checker pool. 1 (the default) feeds every object's
  /// checker inline on the consumption thread — exactly the historical
  /// single-threaded behavior. N > 1 starts N verification workers that
  /// pick up per-object record batches; one object is owned by at most
  /// one worker at a time, so each object's records are still checked in
  /// log order. Requires Online (the offline pass is a synchronous replay
  /// on the caller's thread). Ignored when Shipping is enabled (the
  /// remote service sizes its own pool).
  unsigned CheckerThreads = 1;
  /// Metrics, lag watchdog and tracing.
  TelemetryOptions Telemetry;
  /// Live introspection endpoint (docs/OBSERVABILITY.md, "Live
  /// monitoring"): when Monitor.SocketPath is set, a dedicated server
  /// thread answers `vyrd-mon` clients over a unix-domain socket for the
  /// lifetime of the Verifier. Reads only Telemetry::snapshot() and the
  /// published violation list, so attached clients cost the hot path
  /// nothing. Requires Telemetry.Enabled.
  MonitorOptions Monitor;
  /// Violation forensics (docs/OBSERVABILITY.md, "Forensic bundles"):
  /// when non-empty, every object's checker runs a flight recorder
  /// (FlightRecorderDepth defaults to 64 unless the checker config sets
  /// its own) and the first violation per object is flushed immediately
  /// as `<ForensicPrefix>.<object>.forensic.json`; a BP_Shed-degraded run
  /// additionally writes `<ForensicPrefix>.degraded.forensic.json` at
  /// finish(). Paths land in VerifierReport::ForensicFiles and are served
  /// by the monitor.
  std::string ForensicPrefix;
  /// Remote checking (docs/SHIPPING.md): when Shipping.Endpoint is set,
  /// no checkers run in this process — the pump ships every closed log
  /// segment to the `vyrd-checkd` service at the endpoint, which resolves
  /// Shipping.Program into the per-object pipelines, checks the records
  /// and acks its watermark; acked segments are reclaimed here, so
  /// producer-side memory stays bounded end-to-end. Requires Online and
  /// a file-backed segmented log (Backpressure.SegmentBytes > 0); the
  /// verdict lives in the service's session report. If the fleet stays
  /// unreachable past the retry budget, Shipping.Degrade picks between
  /// re-checking the surviving chain locally (SD_LocalCheck, the default)
  /// and shedding with VK_Degraded accounting (SD_Shed).
  ShipperOptions Shipping;

  /// Checks the configuration for nonsensical combinations (LB_File
  /// without a path, a zero-sized or offline multi-threaded checker pool,
  /// watchdog without telemetry, ...). Returns the empty string when the
  /// configuration is usable, otherwise a one-line description of the
  /// first problem. The Verifier constructor calls this and refuses
  /// (abort with the message on stderr) rather than silently falling back.
  std::string validate() const;
};

/// Per-object slice of a verification run's result.
struct ObjectReport {
  ObjectId Id = 0;
  /// Registration name ("" for the anonymous legacy single object).
  std::string Name;
  /// Violations attributed to this object (also present, object-stamped,
  /// in VerifierReport::Violations).
  std::vector<Violation> Violations;
  CheckerStats Stats;
  /// Log records routed to this object's pipeline.
  uint64_t Records = 0;

  bool ok() const { return Violations.empty(); }
};

/// Final result of a verification run.
struct VerifierReport {
  /// All violations across objects, in log (Seq) order, each stamped with
  /// the object it is attributed to.
  std::vector<Violation> Violations;
  /// Aggregated checker stats (sums; MaxQueueDepth is the per-object max).
  CheckerStats Stats;
  /// One entry per registered object, in id order.
  std::vector<ObjectReport> Objects;
  uint64_t LogRecords = 0;
  uint64_t LogBytes = 0;
  /// Admission accounting of the bounded pipeline (log backend + checker
  /// pool), all zero when backpressure never engaged. Exact counts,
  /// independent of telemetry.
  BackpressureStats Backpressure;
  /// Degradation notes (e.g. the VK_Degraded shed summary when BP_Shed
  /// dropped observer records). Notes are advisories — they do not
  /// affect ok().
  std::vector<std::string> Notes;
  /// Final metric snapshot; all zeros unless TelemetryEnabled.
  TelemetrySnapshot Telemetry;
  bool TelemetryEnabled = false;
  /// Trace events written to TelemetryOptions::TraceFilePath (0 = no
  /// trace was recorded).
  uint64_t TraceEvents = 0;
  /// Forensic bundles written during the run (VerifierConfig::
  /// ForensicPrefix), in the order they were flushed.
  std::vector<std::string> ForensicFiles;
  /// Self-tuning pipeline summary (all zeros / empty when
  /// VerifierConfig::Adaptive was off).
  struct AdaptiveSummary {
    bool Enabled = false;
    uint64_t Escalations = 0;
    uint64_t Deescalations = 0;
    /// Batch target when the run ended / the largest ever published.
    size_t BatchTargetFinal = 0;
    size_t BatchTargetHwm = 0;
    /// Policy active at the end ("block"/"spill"/"shed").
    std::string FinalPolicy;
    /// Every policy transition, oldest first.
    std::vector<AdaptiveController::Transition> Transitions;
  };
  AdaptiveSummary Adaptive;
  /// Remote-checking summary (all zeros / empty when
  /// VerifierConfig::Shipping was off). A shipped run's verdict lives in
  /// the remote service's session report; ok() here only covers what was
  /// checked in this process (nothing, unless the run degraded into
  /// SD_LocalCheck).
  struct ShippingSummary {
    bool Enabled = false;
    std::string Endpoint;
    std::string StreamName;
    uint64_t SegmentsShipped = 0;
    uint64_t BytesShipped = 0;
    uint64_t Acks = 0;
    uint64_t Retries = 0;
    /// Exclusive: every record below it was fed by the remote checker.
    uint64_t AckedWatermark = 0;
    /// The remote service confirmed the whole stream at finish().
    bool FinalAckOk = false;
    /// The fleet became unreachable and the degrade path ran.
    bool Degraded = false;
    /// "local-check" or "shed" when Degraded.
    std::string DegradeMode;
    /// Records re-checked in this process by SD_LocalCheck.
    uint64_t FallbackRecords = 0;
  };
  ShippingSummary Shipping;

  bool ok() const { return Violations.empty(); }
  /// Renders the full report for diagnostics (includes the per-object
  /// breakdown for multi-object runs and the telemetry snapshot when
  /// enabled).
  std::string str() const;
  /// Machine-readable rendering of the whole report (stats, per-object
  /// breakdown, violations count, telemetry) as one JSON object.
  std::string json() const;
};

/// Owns the full verification pipeline: one log, N registered objects.
class Verifier {
public:
  /// Multi-object form: construct with a configuration, then call
  /// registerObject once per verified structure before start().
  explicit Verifier(VerifierConfig Config);

  /// Single-object convenience (the historical interface): registers one
  /// anonymous object with \p S / \p R and the config's checker settings;
  /// hooks() is bound to it. \p R may be null when Config.Checker.Mode is
  /// CM_IORefinement.
  Verifier(std::unique_ptr<Spec> S, std::unique_ptr<Replayer> R,
           VerifierConfig Config);
  ~Verifier();

  Verifier(const Verifier &) = delete;
  Verifier &operator=(const Verifier &) = delete;

  /// Registers a verified object: its records are demultiplexed into a
  /// dedicated RefinementChecker over \p S (shadow state via \p R, which
  /// may be null in CM_IORefinement mode). Returns the hooks to hand to
  /// that structure's instrumented implementation — they stamp every
  /// record with the object's id. Must be called before start().
  /// \p CC overrides the config-wide checker settings for this object.
  Hooks registerObject(std::string Name, std::unique_ptr<Spec> S,
                       std::unique_ptr<Replayer> R, CheckerConfig CC);
  Hooks registerObject(std::string Name, std::unique_ptr<Spec> S,
                       std::unique_ptr<Replayer> R = nullptr);

  /// The hooks of registered object \p Id (logging level matches that
  /// object's check mode).
  Hooks hooks(ObjectId Id) const;
  /// The hooks of the first registered object (single-object interface).
  Hooks hooks() const;

  /// Number of registered objects.
  size_t objectCount() const { return Svc->objectCount(); }

  /// Starts the consumption thread and (CheckerThreads > 1) the checker
  /// pool (online mode; no-op offline). At least one object must have
  /// been registered.
  void start();

  /// Closes the log, completes checking (joining the consumption thread
  /// and pool, or running the offline pass), and returns the aggregated
  /// per-object report.
  VerifierReport finish();

  /// Thread-safe peek: has any object's checker found a violation yet?
  /// Lets a test harness stop generating work once an error is caught
  /// (the Table 1 protocol). Always false while shipping to a healthy
  /// remote checker (the violations are found over there).
  bool violationSeen() const { return Svc->violationSeen(); }

  Log &log() { return *TheLog; }

  /// The pipeline's telemetry hub, or null when telemetry is disabled.
  /// Live metrics (checkerLag(), objectBacklog(), stalled(), snapshot())
  /// can be read while the run is in flight.
  Telemetry *telemetry() { return Telem.get(); }

  /// The live monitor endpoint, or null when VerifierConfig::Monitor is
  /// unset or its socket could not be bound.
  MonitorServer *monitor() { return Mon.get(); }

private:
  class MonitorAdapter;

  /// The in-process consumption loop: drains the log and feeds the
  /// checker service directly (the historical pipeline).
  void pump();
  /// The shipping consumption loop: drains the log, ships closed
  /// segments through the transport and reclaims acked ones. No local
  /// checking.
  void shipPump();
  /// The fleet-unreachable path at finish(): local re-check or shed
  /// accounting per Config.Shipping.Degrade. Appends notes to \p R.
  /// Runs the configured degrade path after a failed final ack; returns
  /// true when the surviving chain was re-checked locally (so the report
  /// carries a sound verdict and FallbackRecords should be filled).
  bool degradeShipping(VerifierReport &R, uint64_t FinalSeqExclusive);

  VerifierConfig Config;
  /// Declared before TheLog: the log backends hold raw pointers to the
  /// controller's policy/batch-target cells, so the controller must
  /// outlive them (members are destroyed in reverse declaration order).
  std::unique_ptr<AdaptiveController> Ctl;
  std::unique_ptr<Log> TheLog;
  /// Declared after TheLog: the sampler (which probes the log's append
  /// count) is joined before the log is destroyed.
  std::unique_ptr<Telemetry> Telem;
  std::unique_ptr<TraceRecorder> Tracer;
  /// The checker half (objects, demux, pool, live violations). Declared
  /// after Telem/Tracer, which its pipelines borrow.
  std::unique_ptr<CheckerService> Svc;
  /// Shipping mode only (Config.Shipping.enabled()).
  std::unique_ptr<SegmentTransport> Transport;
  std::unique_ptr<SegmentShipper> Shipper;
  std::thread VerifyThread;
  bool Started = false;
  bool Done = false;
  /// Declared last (after Telem and Svc): the monitor thread reads both,
  /// so it must be joined first on destruction.
  std::unique_ptr<MonitorAdapter> MonSource;
  std::unique_ptr<MonitorServer> Mon;
};

} // namespace vyrd

#endif // VYRD_VERIFIER_H
