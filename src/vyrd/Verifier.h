//===- Verifier.h - Online/offline verification driver ----------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifier wires a Log, a Spec, a Replayer and a RefinementChecker
/// together and runs the check either *online* — on a dedicated
/// verification thread that consumes the log concurrently with the program,
/// as the VYRD tool does — or *offline*, replaying the completed log after
/// the program finishes (the "VYRD alone" column of Table 3).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_VERIFIER_H
#define VYRD_VERIFIER_H

#include "vyrd/BufferedLog.h"
#include "vyrd/Checker.h"
#include "vyrd/Instrument.h"
#include "vyrd/Log.h"
#include "vyrd/Replayer.h"
#include "vyrd/Spec.h"
#include "vyrd/Telemetry.h"
#include "vyrd/Trace.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>

namespace vyrd {

/// Which Log implementation a Verifier constructs. See
/// docs/ARCHITECTURE.md ("Choosing a log backend") for the trade-offs.
enum class LogBackend : uint8_t {
  /// FileLog when LogFilePath is set, MemoryLog otherwise (the historical
  /// default).
  LB_Auto,
  /// Mutex-guarded in-memory queue.
  LB_Memory,
  /// Durable binary file + in-memory tail; requires LogFilePath.
  LB_File,
  /// Sharded per-thread rings merged by a flusher thread (BufferedLog);
  /// also writes LogFilePath when set.
  LB_Buffered,
};

/// Observability options for a Verifier (docs/OBSERVABILITY.md).
struct TelemetryOptions {
  /// Master switch: construct a Telemetry hub and thread it through the
  /// pipeline (hooks, log backend, checker feed, view comparison); the
  /// final snapshot lands in VerifierReport::Telemetry.
  bool Enabled = false;
  /// Period of the checker-lag sampler thread; 0 = no sampler.
  unsigned SampleIntervalUs = 0;
  /// Report a stalled verifier (lag pending, consumer quiet) after this
  /// many milliseconds; 0 = no watchdog. Implies a sampler (1 ms default
  /// period when SampleIntervalUs is 0).
  unsigned WatchdogQuietMs = 0;
  /// When non-empty, record the run as Chrome/Perfetto trace_event JSON
  /// and write it to this path at finish(). Works with or without
  /// Enabled; see TraceRecorder for the event mapping.
  std::string TraceFilePath;
};

/// Configuration for a Verifier.
struct VerifierConfig {
  CheckerConfig Checker;
  /// Run the checker concurrently with the program. When false, records are
  /// buffered and checked when finish() is called.
  bool Online = true;
  /// Log file path, used by the LB_Auto/LB_File/LB_Buffered backends.
  std::string LogFilePath;
  /// Log implementation to construct.
  LogBackend Backend = LogBackend::LB_Auto;
  /// Shard capacity for LB_Buffered (records per producer thread).
  size_t ShardCapacity = 1024;
  /// Metrics, lag watchdog and tracing.
  TelemetryOptions Telemetry;
};

/// Final result of a verification run.
struct VerifierReport {
  std::vector<Violation> Violations;
  CheckerStats Stats;
  uint64_t LogRecords = 0;
  uint64_t LogBytes = 0;
  /// Final metric snapshot; all zeros unless TelemetryEnabled.
  TelemetrySnapshot Telemetry;
  bool TelemetryEnabled = false;
  /// Trace events written to TelemetryOptions::TraceFilePath (0 = no
  /// trace was recorded).
  uint64_t TraceEvents = 0;

  bool ok() const { return Violations.empty(); }
  /// Renders the full report for diagnostics (includes the telemetry
  /// snapshot when enabled).
  std::string str() const;
  /// Machine-readable rendering of the whole report (stats, violations
  /// count, telemetry) as one JSON object.
  std::string json() const;
};

/// Owns the full verification pipeline for one data structure instance.
class Verifier {
public:
  /// \p R may be null when Config.Checker.Mode is CM_IORefinement.
  Verifier(std::unique_ptr<Spec> S, std::unique_ptr<Replayer> R,
           VerifierConfig Config);
  ~Verifier();

  Verifier(const Verifier &) = delete;
  Verifier &operator=(const Verifier &) = delete;

  /// The hooks to hand to the instrumented data structure. The logging
  /// level matches the configured check mode.
  Hooks hooks() const;

  /// Starts the verification thread (online mode; no-op offline).
  void start();

  /// Closes the log, completes checking (joining the verification thread
  /// or running the offline pass), and returns the report.
  VerifierReport finish();

  /// Thread-safe peek: has the verification thread found a violation yet?
  /// Lets a test harness stop generating work once an error is caught
  /// (the Table 1 protocol).
  bool violationSeen() const {
    return ViolationFlag.load(std::memory_order_acquire);
  }

  Log &log() { return *TheLog; }

  /// The pipeline's telemetry hub, or null when telemetry is disabled.
  /// Live metrics (checkerLag(), stalled(), snapshot()) can be read while
  /// the run is in flight.
  Telemetry *telemetry() { return Telem.get(); }

private:
  void pump();

  std::unique_ptr<Spec> TheSpec;
  std::unique_ptr<Replayer> TheReplayer;
  VerifierConfig Config;
  std::unique_ptr<Log> TheLog;
  /// Declared after TheLog: the sampler (which probes the log's append
  /// count) is joined before the log is destroyed.
  std::unique_ptr<Telemetry> Telem;
  std::unique_ptr<TraceRecorder> Tracer;
  std::unique_ptr<RefinementChecker> Checker;
  std::thread VerifyThread;
  std::atomic<bool> ViolationFlag{false};
  bool Started = false;
  bool Done = false;
};

} // namespace vyrd

#endif // VYRD_VERIFIER_H
