//===- Verifier.h - Online/offline verification driver ----------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifier wires a Log, a Spec, a Replayer and a RefinementChecker
/// together and runs the check either *online* — on a dedicated
/// verification thread that consumes the log concurrently with the program,
/// as the VYRD tool does — or *offline*, replaying the completed log after
/// the program finishes (the "VYRD alone" column of Table 3).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_VERIFIER_H
#define VYRD_VERIFIER_H

#include "vyrd/BufferedLog.h"
#include "vyrd/Checker.h"
#include "vyrd/Instrument.h"
#include "vyrd/Log.h"
#include "vyrd/Replayer.h"
#include "vyrd/Spec.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>

namespace vyrd {

/// Which Log implementation a Verifier constructs. See
/// docs/ARCHITECTURE.md ("Choosing a log backend") for the trade-offs.
enum class LogBackend : uint8_t {
  /// FileLog when LogFilePath is set, MemoryLog otherwise (the historical
  /// default).
  LB_Auto,
  /// Mutex-guarded in-memory queue.
  LB_Memory,
  /// Durable binary file + in-memory tail; requires LogFilePath.
  LB_File,
  /// Sharded per-thread rings merged by a flusher thread (BufferedLog);
  /// also writes LogFilePath when set.
  LB_Buffered,
};

/// Configuration for a Verifier.
struct VerifierConfig {
  CheckerConfig Checker;
  /// Run the checker concurrently with the program. When false, records are
  /// buffered and checked when finish() is called.
  bool Online = true;
  /// Log file path, used by the LB_Auto/LB_File/LB_Buffered backends.
  std::string LogFilePath;
  /// Log implementation to construct.
  LogBackend Backend = LogBackend::LB_Auto;
  /// Shard capacity for LB_Buffered (records per producer thread).
  size_t ShardCapacity = 1024;
};

/// Final result of a verification run.
struct VerifierReport {
  std::vector<Violation> Violations;
  CheckerStats Stats;
  uint64_t LogRecords = 0;
  uint64_t LogBytes = 0;

  bool ok() const { return Violations.empty(); }
  /// Renders the full report for diagnostics.
  std::string str() const;
};

/// Owns the full verification pipeline for one data structure instance.
class Verifier {
public:
  /// \p R may be null when Config.Checker.Mode is CM_IORefinement.
  Verifier(std::unique_ptr<Spec> S, std::unique_ptr<Replayer> R,
           VerifierConfig Config);
  ~Verifier();

  Verifier(const Verifier &) = delete;
  Verifier &operator=(const Verifier &) = delete;

  /// The hooks to hand to the instrumented data structure. The logging
  /// level matches the configured check mode.
  Hooks hooks() const;

  /// Starts the verification thread (online mode; no-op offline).
  void start();

  /// Closes the log, completes checking (joining the verification thread
  /// or running the offline pass), and returns the report.
  VerifierReport finish();

  /// Thread-safe peek: has the verification thread found a violation yet?
  /// Lets a test harness stop generating work once an error is caught
  /// (the Table 1 protocol).
  bool violationSeen() const {
    return ViolationFlag.load(std::memory_order_acquire);
  }

  Log &log() { return *TheLog; }

private:
  void pump();

  std::unique_ptr<Spec> TheSpec;
  std::unique_ptr<Replayer> TheReplayer;
  VerifierConfig Config;
  std::unique_ptr<Log> TheLog;
  std::unique_ptr<RefinementChecker> Checker;
  std::thread VerifyThread;
  std::atomic<bool> ViolationFlag{false};
  bool Started = false;
  bool Done = false;
};

} // namespace vyrd

#endif // VYRD_VERIFIER_H
