//===- Vyrd.h - Umbrella header for the VYRD library ------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella: include this to get the whole VYRD public API.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_VYRD_H
#define VYRD_VYRD_H

#include "vyrd/Action.h"
#include "vyrd/BufferedLog.h"
#include "vyrd/Checker.h"
#include "vyrd/Instrument.h"
#include "vyrd/Log.h"
#include "vyrd/Names.h"
#include "vyrd/Replayer.h"
#include "vyrd/Spec.h"
#include "vyrd/Telemetry.h"
#include "vyrd/Trace.h"
#include "vyrd/Value.h"
#include "vyrd/Verifier.h"
#include "vyrd/View.h"
#include "vyrd/Violation.h"

#endif // VYRD_VYRD_H
