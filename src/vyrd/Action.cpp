//===- Action.cpp - Log records describing execution events --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Action.h"

#include <cassert>

using namespace vyrd;

const char *vyrd::actionKindName(ActionKind K) {
  switch (K) {
  case ActionKind::AK_Call:
    return "call";
  case ActionKind::AK_Return:
    return "return";
  case ActionKind::AK_Commit:
    return "commit";
  case ActionKind::AK_Write:
    return "write";
  case ActionKind::AK_BlockBegin:
    return "block-begin";
  case ActionKind::AK_BlockEnd:
    return "block-end";
  case ActionKind::AK_ReplayOp:
    return "replay-op";
  }
  assert(false && "unknown ActionKind");
  return "?";
}

std::string Action::str() const {
  std::string Out = "#" + std::to_string(Seq) + " t" + std::to_string(Tid);
  // Only multi-object logs carry non-zero ids; keep single-object output
  // (and the golden strings in tests) unchanged.
  if (Obj != 0)
    Out += " o" + std::to_string(Obj);
  Out += " ";
  Out += actionKindName(Kind);
  switch (Kind) {
  case ActionKind::AK_Call: {
    Out += " ";
    Out += Method.str();
    Out += "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I].str();
    }
    Out += ")";
    break;
  }
  case ActionKind::AK_Return:
    Out += " ";
    Out += Method.str();
    Out += " -> " + Ret.str();
    break;
  case ActionKind::AK_Commit:
  case ActionKind::AK_BlockBegin:
  case ActionKind::AK_BlockEnd:
    break;
  case ActionKind::AK_Write:
    Out += " ";
    Out += Var.str();
    Out += " := " + Ret.str();
    break;
  case ActionKind::AK_ReplayOp: {
    Out += " ";
    Out += Var.str();
    Out += "[";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I].str();
    }
    Out += "]";
    break;
  }
  }
  return Out;
}
