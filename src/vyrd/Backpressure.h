//===- Backpressure.h - Bounded-pipeline admission policies -----*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded-channel layer of the pipeline. The paper's log (Sec. 4.2)
/// decouples instrumented threads from the verification thread; without a
/// bound, every link of that chain (MemoryLog's queue, FileLog's tail, the
/// checker pool's pending queues) grows whenever checkers lag producers.
/// BackpressureConfig states the memory ceiling and the admission policy
/// every stage enforces when it is reached:
///
///  * BP_Block       — bounded blocking append: the producer waits for the
///                     reader to make room. Safe default; requires a
///                     concurrent consumer (Online mode).
///  * BP_SpillToDisk — overflow is demoted to the log file: records keep
///                     flowing to disk, the in-memory queue stops growing,
///                     and the reader re-reads the spilled region through
///                     LogFileReader when it catches up. Producers never
///                     block. Requires a file-backed log.
///  * BP_Shed        — observer-only executions are dropped, with exact
///                     accounting (BackpressureStats::ShedRecords, surfaced
///                     as a VK_Degraded note in the report). Mutator,
///                     commit and write records are never dropped, so
///                     verdicts on the records that are checked stay sound;
///                     coverage, not correctness, degrades.
///
/// SegmentSink implements the disk half of the ceiling: instead of one
/// file that accretes forever, output rotates into numbered segment files
/// (`path.000001`, ...) of ~SegmentBytes each, and segments whose last
/// record every registered object's checker has passed are deleted
/// (checked-prefix reclamation), so a soak run holds O(segment) disk.
/// See docs/ARCHITECTURE.md, "Bounded pipeline & backpressure".
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_BACKPRESSURE_H
#define VYRD_BACKPRESSURE_H

#include "vyrd/Action.h"
#include "vyrd/Serialize.h"

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace vyrd {

/// What a bounded stage does with a record that does not fit.
enum class BackpressurePolicy : uint8_t {
  BP_Block,       ///< bounded blocking append (safe default)
  BP_SpillToDisk, ///< demote overflow to the log file, re-read on catch-up
  BP_Shed,        ///< drop observer-only executions, with accounting
};

/// Short printable name ("block", "spill", "shed").
const char *backpressurePolicyName(BackpressurePolicy P);

/// The pipeline-wide bound and admission policy, enforced uniformly by
/// MemoryLog, FileLog's tail, BufferedLog's flusher and the checker
/// pool's pending queues. Part of VerifierConfig; validated there.
struct BackpressureConfig {
  /// Master switch. Disabled (the default) keeps the historical
  /// unbounded behavior of every stage.
  bool Enabled = false;
  /// Ceiling on records pending in any one stage's in-memory queue.
  /// Must be >= 1 when Enabled.
  size_t MaxPendingRecords = 1 << 16;
  /// Optional ceiling on the estimated bytes those pending records pin
  /// (actionFootprintBytes). 0 = no byte bound. Whichever of the two
  /// ceilings is hit first triggers the policy.
  size_t MaxTailBytes = 0;
  BackpressurePolicy Policy = BackpressurePolicy::BP_Block;
  /// When > 0, file-backed logs rotate into numbered segment files of
  /// roughly this many bytes (see SegmentSink). 0 = one plain log file,
  /// exactly as before.
  uint64_t SegmentBytes = 0;
  /// Delete segments once fully checked (only meaningful with
  /// SegmentBytes > 0). Disable to keep the complete rotated chain on
  /// disk for post-mortem re-checking.
  bool ReclaimSegments = true;
};

/// Counters a bounded stage keeps about its admission decisions. Exact:
/// updated under the stage's own lock, independent of telemetry.
struct BackpressureStats {
  /// Appends that had to wait for space (BP_Block), and the total time
  /// they spent waiting.
  uint64_t BlockedAppends = 0;
  uint64_t BlockedNanos = 0;
  /// Records dropped by BP_Shed (whole observer executions).
  uint64_t ShedRecords = 0;
  /// Records that bypassed the in-memory queue and were re-read from
  /// disk (BP_SpillToDisk).
  uint64_t SpilledRecords = 0;
  /// High-watermarks of the stage's pending queue.
  uint64_t PendingRecordsHwm = 0;
  uint64_t TailBytesHwm = 0;
  /// Segment lifecycle (SegmentSink).
  uint64_t SegmentsCreated = 0;
  uint64_t SegmentsReclaimed = 0;
  uint64_t SegmentsLiveHwm = 0;

  /// Sums the counters, maxes the high-watermarks.
  void merge(const BackpressureStats &O);
  /// Any field non-zero (whether the report should render a line).
  bool any() const;
};

/// Rough bytes one pending Action pins: the record itself plus heap
/// payloads (spilled argument lists, string/bytes values). Used for the
/// MaxTailBytes ceiling and the G_TailBytes gauge; an estimate — small
/// allocator overhead is not modeled.
size_t actionFootprintBytes(const Action &A);

/// The BP_Shed decision procedure. Sheds *whole observer executions*:
/// when the queue is over its limit and an AK_Call starts an execution
/// the classifier marks observer-only, the call and everything the same
/// (object, thread) emits up to and including the matching AK_Return are
/// dropped together — a return whose call was admitted is never dropped,
/// and no execution is ever delivered half. Not thread-safe; each stage
/// owns one instance and calls it under its admission lock, in admission
/// order.
class ShedFilter {
public:
  /// \p Fn returns true when \p A (an AK_Call) starts an observer-only
  /// execution — one that emits no commit/write/replay records, so
  /// dropping it wholesale cannot perturb the shadow state or any other
  /// execution's verdict. Installed by the Verifier at start() (the
  /// classifier consults the registered Spec::isObserver).
  void setClassifier(std::function<bool(const Action &)> Fn) {
    Classifier = std::move(Fn);
  }
  bool hasClassifier() const { return static_cast<bool>(Classifier); }

  /// Decides \p A's fate. \p OverLimit: is the stage's queue at/over its
  /// ceiling right now. \returns true when \p A must be dropped.
  bool shouldShed(const Action &A, bool OverLimit);

private:
  std::function<bool(const Action &)> Classifier;
  /// Open shed windows, keyed ObjectId << 32 | Tid: executions whose
  /// call was dropped and whose return has not arrived yet.
  std::unordered_set<uint64_t> OpenWindows;
};

/// One segment rotation, as observed by the snapshot machinery: the chain
/// grew a new segment \p Index whose first record is \p FirstSeq, i.e.
/// every record with Seq < FirstSeq lives in segments before \p Index.
/// The Verifier snapshots checker state at these cut points and writes
/// the blobs as the new segment's sidecar (docs/SNAPSHOTS.md).
struct SegmentCut {
  uint64_t Index = 0;    ///< 1-based index of the newly opened segment
  uint64_t FirstSeq = 0; ///< sequence number of its first record
};

/// The disk side of a file-backed log: owns the output file(s), the
/// record encoder and the rotation/reclamation bookkeeping. Two modes:
///
///  * SegmentBytes == 0 — one plain file at `path`, v3 header written at
///    open(): byte-identical behavior to the historical FileLog output.
///  * SegmentBytes > 0  — a chain of numbered segments `path.000001`,
///    `path.000002`, ... Each segment is fully self-contained: its own
///    header (LogSegmentVersion, carrying the segment index and first
///    sequence number) and its own name-interning table, so any segment
///    can be decoded — and any prefix of the chain deleted — without the
///    others. Rotation happens at record boundaries once a segment
///    reaches SegmentBytes; the previous segment is flushed and closed
///    before its successor is created (readers rely on that order).
///
/// All methods are thread-safe (one internal mutex): writers call
/// write()/flushPending() under their own admission lock, the pump
/// thread calls reclaimThrough(), and spill readers call sync() /
/// pathForSeq() concurrently.
class SegmentSink {
public:
  SegmentSink() = default;
  ~SegmentSink();

  SegmentSink(const SegmentSink &) = delete;
  SegmentSink &operator=(const SegmentSink &) = delete;

  /// Opens the sink (creates the plain file or the first segment).
  /// \returns false when the file cannot be created.
  bool open(const std::string &Path, uint64_t SegmentBytes);
  bool valid() const;

  /// Encodes \p A into the pending buffer, rotating to a fresh segment
  /// first when the current one is full. Records must arrive in
  /// ascending Seq order (they do: callers encode under the lock that
  /// assigns Seq, or on the single flusher thread).
  void write(const Action &A);

  /// Pushes the pending encoded bytes into stdio (one fwrite). Cheap;
  /// callers invoke it per record (FileLog) or per flush epoch
  /// (BufferedLog). No fflush — durability only at sync()/close().
  void flushPending();

  /// flushPending + fflush: everything written so far becomes readable
  /// through an independent FILE handle (spill readers call this before
  /// crossing the last synced boundary).
  void sync();

  /// Final sync and fclose. Idempotent; the destructor calls it.
  void close();

  /// Total encoded bytes produced across all segments (monotonic; not
  /// reduced by reclamation).
  uint64_t bytesWritten() const;

  /// Deletes closed segments whose every record is below \p Watermark
  /// (exclusive): the checked prefix. The active segment is never
  /// deleted. No-op in plain-file mode.
  void reclaimThrough(uint64_t Watermark);

  /// Segments currently on disk (1 in plain-file mode).
  size_t liveSegments() const;

  /// The file to start reading from to reach sequence number \p Seq: the
  /// newest live segment whose first record is <= Seq (the plain path in
  /// plain-file mode). Spill readers open a LogFileReader here and walk
  /// the chain forward.
  std::string pathForSeq(uint64_t Seq) const;

  /// Segment lifecycle counters (created/reclaimed/live HWM only; the
  /// owning log merges them into its own stats).
  BackpressureStats stats() const;

  /// Moves the rotations performed since the last call into \p Out
  /// (appended, oldest first). The Verifier's pump polls this to learn
  /// where snapshot cut points fall. Always empty in plain-file mode.
  void drainCuts(std::vector<SegmentCut> &Out);

private:
  struct Segment {
    uint64_t Index = 0;    ///< 1-based chain position
    uint64_t FirstSeq = 0; ///< valid once the segment has a record
    uint64_t LastSeq = 0;  ///< valid while Records > 0
    uint64_t Records = 0;
    bool Closed = false; ///< rotation finished; LastSeq is final
  };

  bool openSegmentLocked(uint64_t FirstSeq);
  void rotateLocked(uint64_t NextFirstSeq);
  void flushPendingLocked();
  std::string segmentPathLocked(uint64_t Index) const;

  mutable std::mutex M;
  std::string Path;
  uint64_t SegmentBytes = 0; ///< 0 = plain single file
  std::FILE *File = nullptr;
  bool Opened = false;
  bool ClosedDown = false;
  ActionEncoder Encoder;
  ByteWriter Pending;
  uint64_t TotalBytes = 0;
  uint64_t CurSegmentBytes = 0;
  /// Live (not yet reclaimed) segments, oldest first; back() is active.
  std::vector<Segment> Segments;
  /// Rotations not yet drained by drainCuts (oldest first).
  std::vector<SegmentCut> Cuts;
  uint64_t NextIndex = 1;
  uint64_t SegmentsCreated = 0;
  uint64_t SegmentsReclaimed = 0;
  uint64_t SegmentsLiveHwm = 0;
};

/// Renders the path of segment \p Index of chain base \p Base
/// ("base.000001" style). Shared by SegmentSink and LogFileReader.
std::string logSegmentPath(const std::string &Base, uint64_t Index);

/// Recognizes a segment path: when \p Path ends in ".NNNNNN" (six
/// digits), strips it into \p Base / \p Index and returns true.
bool splitLogSegmentPath(const std::string &Path, std::string &Base,
                         uint64_t &Index);

} // namespace vyrd

#endif // VYRD_BACKPRESSURE_H
