//===- Spec.cpp - Executable method-atomic specifications -----------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Spec.h"

using namespace vyrd;

Spec::~Spec() = default;

bool Spec::saveState(ByteWriter &W) const {
  (void)W;
  return false;
}

bool Spec::loadState(ByteReader &R) {
  (void)R;
  return false;
}
