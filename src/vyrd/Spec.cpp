//===- Spec.cpp - Executable method-atomic specifications -----------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Spec.h"

using namespace vyrd;

Spec::~Spec() = default;
