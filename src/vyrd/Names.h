//===- Names.h - Interned identifiers for methods and variables -*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Method and shared-variable names appear in every log record; interning
/// them into small integer ids keeps Action records compact and makes the
/// binary log format cheap to write and read. The intern table is global and
/// thread-safe; ids are stable for the lifetime of the process.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_NAMES_H
#define VYRD_NAMES_H

#include <cstdint>
#include <string>
#include <string_view>

namespace vyrd {

/// An interned name. Id 0 is reserved for the empty/invalid name.
class Name {
public:
  Name() : Id(0) {}
  explicit Name(uint32_t Id) : Id(Id) {}

  uint32_t id() const { return Id; }
  bool valid() const { return Id != 0; }

  /// The interned string this name stands for.
  std::string_view str() const;

  friend bool operator==(Name L, Name R) { return L.Id == R.Id; }
  friend bool operator!=(Name L, Name R) { return L.Id != R.Id; }
  friend bool operator<(Name L, Name R) { return L.Id < R.Id; }

private:
  uint32_t Id;
};

/// Interns \p S, returning its stable id. Safe to call concurrently.
Name internName(std::string_view S);

} // namespace vyrd

#endif // VYRD_NAMES_H
