//===- BufferedLog.cpp - Sharded, batched execution log -------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/BufferedLog.h"

#include "vyrd/Instrument.h"
#include "vyrd/Ring.h"
#include "vyrd/Serialize.h"
#include "vyrd/Telemetry.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>

using namespace vyrd;

namespace {

/// Producer-side wait while the shard ring is full: a couple of yields,
/// then short sleeps so a starved flusher gets CPU even on one core.
void backoff(unsigned Round) {
  if (Round < 8)
    std::this_thread::yield();
  else
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

/// Each BufferedLog gets a process-unique id; ids are never reused, so the
/// thread-local shard cache below can never hit a stale entry for a log
/// that was destroyed and another allocated at the same address.
std::atomic<uint64_t> NextLogInstanceId{1};

struct ShardCacheEntry {
  uint64_t LogId = 0;
  ThreadLogShard *Shard = nullptr;
};
constexpr size_t ShardCacheWays = 4;
/// Direct-mapped per-thread cache of (log instance -> this thread's
/// shard), so the append fast path avoids the registry mutex.
thread_local ShardCacheEntry ShardCache[ShardCacheWays];

} // namespace

struct BufferedLog::Impl {
  Options Opts;
  uint64_t InstanceId = 0;

  /// The global order: every append claims one ticket (see BufferedLog.h
  /// for why a relaxed RMW is enough).
  std::atomic<uint64_t> Tickets{0};
  std::atomic<bool> Closed{false};

  /// Registered shards, indexed by dense thread id. Grown under RegistryM;
  /// shards live until the log is destroyed. RegisteredShards counts the
  /// non-null entries so the flusher can skip the mutex when nothing new
  /// registered since its last snapshot.
  mutable std::mutex RegistryM;
  std::vector<std::unique_ptr<ThreadLogShard>> ShardByTid;
  std::atomic<size_t> RegisteredShards{0};
  std::vector<ThreadLogShard *> ShardScratch; // flusher-only snapshot

  /// Flusher state (flusher thread only).
  std::thread Flusher;
  uint64_t SeqNext = 0; // next ticket to enter the global order
  /// The reorder ring: drained records parked at `Seq & ReorderMask`
  /// until the contiguous run starting at SeqNext is complete.
  std::vector<Action> Reorder;
  std::vector<uint8_t> Parked;
  uint64_t ReorderMask = 0;
  /// The disk side (FilePath mode): file(s), encoder, rotation.
  SegmentSink Sink;
  bool HasFile = false;

  /// The global, merged order the readers consume.
  std::mutex QM;
  std::condition_variable QCV;
  /// The flusher parks here in BP_Block mode until the reader makes room.
  std::condition_variable QSpaceCV;
  ChunkQueue<Action> Q; // chunk-recycling: see Ring.h
  bool Finished = false; // flusher exited; Q holds everything remaining

  /// Backpressure state, guarded by QM (admission happens where the
  /// flusher pushes into Q; the shard rings have their own bound).
  ShedFilter Shed;
  BackpressureStats Stats;
  uint64_t QBytes = 0; // estimated bytes Q pins (BP enabled only)
  /// Spill bookkeeping: Delivered = next seq the reader hands out;
  /// EmittedSeq = every record below it has reached the sink, published
  /// by the flusher at the end of each emit round (under QM, so readers
  /// see queue and watermark consistently).
  uint64_t Delivered = 0;
  std::atomic<uint64_t> EmittedSeq{0};
  std::unique_ptr<LogFileReader> SpillReader;
  uint64_t SpillNextSeq = 0;
  bool SpillFailed = false; // latched on corrupt spilled region
  /// Seq ranges [first, second) shed from the queue while spill-capable.
  /// They exist on disk (the file is the complete witness), so the spill
  /// catch-up reader must skip them or a later escalation into spill would
  /// resurrect records the shed filter dropped. Pruned as Delivered
  /// passes. Guarded by QM.
  std::vector<std::pair<uint64_t, uint64_t>> ShedGaps;

  /// Segment telemetry deltas already forwarded (pump thread only).
  uint64_t SegCreatedSeen = 0;
  uint64_t SegReclaimedSeen = 0;

  /// Serializes close() so it is idempotent.
  std::mutex CloseM;
  bool CloseDone = false;
};

//===----------------------------------------------------------------------===//
// ThreadLogShard
//===----------------------------------------------------------------------===//

ThreadLogShard::ThreadLogShard(BufferedLog &Parent, size_t Capacity)
    : Parent(Parent), Slots(std::bit_ceil(std::max<size_t>(Capacity, 2))),
      Mask(Slots.size() - 1) {}

uint64_t ThreadLogShard::append(Action A) {
  assert(!Parent.I->Closed.load(std::memory_order_relaxed) &&
         "append after close");
  uint64_t H = Head.load(std::memory_order_relaxed);
  // Latency sampling reuses the already-loaded ring position instead of a
  // separate tick counter: every 64th append per shard takes two clock
  // reads, the rest pay nothing.
  uint64_t T0 = 0;
  if (telemetryCompiledIn()) {
    if (!TC)
      if (Telemetry *T = Parent.telemetry())
        TC = &T->cell();
    if (TC && (H & 63) == 0)
      T0 = telemetryNowNanos();
  }
  if (H - CachedTail > Mask) {
    CachedTail = Tail.load(std::memory_order_acquire);
    if (H - CachedTail > Mask) {
      if (telemetryCompiledIn() && TC)
        TC->count(Counter::C_AppendStalls);
      for (unsigned Round = 0; H - CachedTail > Mask; ++Round) {
        backoff(Round); // ring full: wait for the flusher to make room
        CachedTail = Tail.load(std::memory_order_acquire);
      }
    }
  }
  // Claim the record's place in the global order only once a slot is
  // certain, so a producer never stalls between ticket and publish longer
  // than the store below takes.
  uint64_t Ticket =
      Parent.I->Tickets.fetch_add(1, std::memory_order_relaxed);
  A.Seq = Ticket;
  Slots[H & Mask] = std::move(A);
  Head.store(H + 1, std::memory_order_release);
  if (telemetryCompiledIn() && TC) {
    TC->count(Counter::C_LogAppends);
    if (T0)
      TC->record(Histo::H_AppendNs, telemetryNowNanos() - T0);
  }
  return Ticket;
}

size_t ThreadLogShard::drain() {
  uint64_t T = Tail.load(std::memory_order_relaxed);
  uint64_t H = Head.load(std::memory_order_acquire);
  size_t N = static_cast<size_t>(H - T);
  for (; T != H; ++T)
    Parent.park(std::move(Slots[T & Mask]));
  if (N)
    Tail.store(T, std::memory_order_release);
  return N;
}

//===----------------------------------------------------------------------===//
// BufferedLog
//===----------------------------------------------------------------------===//

BufferedLog::BufferedLog() : BufferedLog(Options()) {}

BufferedLog::BufferedLog(Options O) : I(std::make_unique<Impl>()) {
  I->Opts = std::move(O);
  I->InstanceId =
      NextLogInstanceId.fetch_add(1, std::memory_order_relaxed);
  // Big enough that the flusher only grows it if a producer stalls
  // between taking a ticket and publishing while others run far ahead.
  I->Reorder.resize(std::bit_ceil(std::max<size_t>(
      2 * std::bit_ceil(std::max<size_t>(I->Opts.ShardCapacity, 2)), 16)));
  I->Parked.assign(I->Reorder.size(), 0);
  I->ReorderMask = I->Reorder.size() - 1;
  if (!I->Opts.FilePath.empty()) {
    // Plain file or rotated segment chain, header(s) included — see
    // SegmentSink (docs/LOGFORMAT.md).
    Valid = I->Sink.open(I->Opts.FilePath,
                         I->Opts.Backpressure.SegmentBytes);
    I->HasFile = Valid;
  }
  I->Flusher = std::thread([this] { flusherMain(); });
}

BufferedLog::~BufferedLog() { close(); }

ThreadLogShard &BufferedLog::shardForCurrentThread() {
  ThreadId Tid = currentTid();
  std::lock_guard Lock(I->RegistryM);
  if (I->ShardByTid.size() <= Tid)
    I->ShardByTid.resize(Tid + 1);
  if (!I->ShardByTid[Tid]) {
    I->ShardByTid[Tid] =
        std::make_unique<ThreadLogShard>(*this, I->Opts.ShardCapacity);
    I->RegisteredShards.fetch_add(1, std::memory_order_release);
  }
  return *I->ShardByTid[Tid];
}

LogWriter &BufferedLog::writer() {
  ShardCacheEntry &E = ShardCache[I->InstanceId % ShardCacheWays];
  if (E.LogId == I->InstanceId)
    return *E.Shard;
  ThreadLogShard &S = shardForCurrentThread();
  E.LogId = I->InstanceId;
  E.Shard = &S;
  return S;
}

uint64_t BufferedLog::append(Action A) { return writer().append(std::move(A)); }

size_t BufferedLog::shardCount() const {
  std::lock_guard Lock(I->RegistryM);
  size_t N = 0;
  for (const auto &S : I->ShardByTid)
    N += S != nullptr;
  return N;
}

size_t BufferedLog::drainShards() {
  // Re-snapshot only when a thread registered since the last round; the
  // count only grows, so a stale snapshot just means one extra check.
  if (I->ShardScratch.size() !=
      I->RegisteredShards.load(std::memory_order_acquire)) {
    std::lock_guard Lock(I->RegistryM);
    I->ShardScratch.clear();
    for (const auto &S : I->ShardByTid)
      if (S)
        I->ShardScratch.push_back(S.get());
  }
  size_t Drained = 0;
  for (ThreadLogShard *S : I->ShardScratch)
    Drained += S->drain();
  return Drained;
}

void BufferedLog::park(Action &&A) {
  if (A.Seq - I->SeqNext >= I->Reorder.size()) {
    // A producer stalled between ticket and publish while others ran more
    // than a ring's worth ahead. Grow and re-park by each record's own
    // (dense, unique) ticket.
    size_t NewSize =
        std::bit_ceil<uint64_t>(A.Seq - I->SeqNext + 1) * 2;
    std::vector<Action> NewReorder(NewSize);
    std::vector<uint8_t> NewParked(NewSize, 0);
    for (size_t Slot = 0; Slot != I->Reorder.size(); ++Slot)
      if (I->Parked[Slot]) {
        Action &Old = I->Reorder[Slot];
        NewParked[Old.Seq & (NewSize - 1)] = 1;
        NewReorder[Old.Seq & (NewSize - 1)] = std::move(Old);
      }
    I->Reorder = std::move(NewReorder);
    I->Parked = std::move(NewParked);
    I->ReorderMask = NewSize - 1;
    if (telemetryCompiledIn())
      if (Telemetry *T = telemetry())
        T->count(Counter::C_ReorderGrows);
  }
  size_t Slot = A.Seq & I->ReorderMask;
  I->Parked[Slot] = 1;
  I->Reorder[Slot] = std::move(A);
}

bool BufferedLog::spillCapable() const {
  const BackpressureConfig &BP = I->Opts.Backpressure;
  return BP.Enabled && I->HasFile && I->Opts.RetainRecords &&
         (BP.Policy == BackpressurePolicy::BP_SpillToDisk ||
          hasDynamicPolicy());
}

void BufferedLog::enqueueEmitted(uint64_t First, uint64_t S) {
  const BackpressureConfig &BP = I->Opts.Backpressure;
  Telemetry *T = telemetry();
  std::unique_lock Lock(I->QM);
  for (uint64_t Ti = First; Ti != S; ++Ti) {
    Action &A = I->Reorder[Ti & I->ReorderMask];
    if (BP.Enabled) {
      bool Admit = true;
      bool Blocked = false;
      uint64_t W0 = 0;
      // The policy is re-read each admission attempt: a dynamic-policy
      // cell (adaptive escalation) may change it while the flusher is
      // parked, and the record must then be re-decided under the new
      // policy rather than admitted as if nothing changed.
      for (;;) {
        BackpressurePolicy P = activePolicy(BP);
        bool Over = I->Q.size() >= BP.MaxPendingRecords ||
                    (BP.MaxTailBytes && I->QBytes >= BP.MaxTailBytes);
        if (P == BackpressurePolicy::BP_Shed || hasDynamicPolicy()) {
          // With a dynamic policy the filter is consulted under every
          // rung so open shed windows close whole: continuation records
          // of a shed execution drop regardless of the current rung (the
          // filter ignores OverLimit inside a window).
          if (I->Shed.shouldShed(A, Over &&
                                        P == BackpressurePolicy::BP_Shed)) {
            // Dropped from the queue only; the file (when present) stays
            // complete for post-mortem re-checking.
            ++I->Stats.ShedRecords;
            if (telemetryCompiledIn() && T)
              T->count(Counter::C_ShedRecords);
            if (spillCapable()) {
              // The record is on disk; the catch-up reader must not
              // resurrect it if we later escalate into spill.
              if (!I->ShedGaps.empty() &&
                  I->ShedGaps.back().second == A.Seq)
                ++I->ShedGaps.back().second;
              else
                I->ShedGaps.emplace_back(A.Seq, A.Seq + 1);
            }
            Admit = false;
            break;
          }
          if (P == BackpressurePolicy::BP_Shed)
            break; // not shed: admit unconditionally under BP_Shed
        }
        if (P == BackpressurePolicy::BP_SpillToDisk && I->HasFile) {
          if (Over) {
            // Already at the sink; the reader re-reads the gap from disk.
            ++I->Stats.SpilledRecords;
            if (telemetryCompiledIn() && T)
              T->count(Counter::C_SpilledRecords);
            Admit = false;
          }
          break;
        }
        if (!Over)
          break;
        // BP_Block (and BP_SpillToDisk without a file): park the flusher.
        // Shard rings then fill and producers hit the ring-full backoff,
        // which is how the bound propagates to the hot path.
        if (!Blocked) {
          Blocked = true;
          ++I->Stats.BlockedAppends;
          W0 = telemetryNowNanos();
        }
        // Records pushed earlier in this batch are consumable but the
        // batch-end QCV notify has not happened yet; wake any reader
        // parked on what it last saw as an empty queue before this side
        // goes to sleep, or neither ever wakes.
        I->QCV.notify_all();
        I->QSpaceCV.wait(Lock, [&] {
          return (I->Q.size() < BP.MaxPendingRecords &&
                  (!BP.MaxTailBytes || I->QBytes < BP.MaxTailBytes)) ||
                 activePolicy(BP) != BackpressurePolicy::BP_Block;
        });
      }
      if (Blocked) {
        uint64_t Waited = telemetryNowNanos() - W0;
        I->Stats.BlockedNanos += Waited;
        if (telemetryCompiledIn() && T) {
          T->count(Counter::C_BlockedAppends);
          T->record(Histo::H_BlockedNs, Waited);
        }
      }
      if (!Admit)
        continue;
      size_t FP = actionFootprintBytes(A);
      I->QBytes += FP;
      I->Stats.PendingRecordsHwm =
          std::max<uint64_t>(I->Stats.PendingRecordsHwm, I->Q.size() + 1);
      I->Stats.TailBytesHwm =
          std::max<uint64_t>(I->Stats.TailBytesHwm, I->QBytes);
      if (telemetryCompiledIn() && T) {
        T->gaugeAdd(Gauge::G_PendingRecords, 1);
        T->gaugeAdd(Gauge::G_TailBytes, FP);
      }
    }
    I->Q.push_back(std::move(A));
  }
  // Publish the disk watermark under QM so readers never see a record
  // "on disk" that this round is still deciding to queue or spill.
  I->EmittedSeq.store(S, std::memory_order_release);
  Lock.unlock();
  I->QCV.notify_one();
}

size_t BufferedLog::emitReady() {
  const uint64_t First = I->SeqNext;
  uint64_t S = First;
  // An adaptive controller caps the emit quantum through the batch-target
  // hint (floor 1 so progress never stalls); without one the whole
  // contiguous run goes out at once, as before.
  uint64_t Limit = std::min<uint64_t>(
      I->Reorder.size(),
      std::max<size_t>(batchTargetHint(I->Reorder.size()), 1));
  while (S - First < Limit && I->Parked[S & I->ReorderMask])
    ++S;
  size_t K = static_cast<size_t>(S - First);
  if (K == 0)
    return 0;
  if (I->HasFile) {
    // All records reach the disk log, including ones the queue admission
    // below will shed or spill (the file is the complete witness).
    for (uint64_t T = First; T != S; ++T)
      I->Sink.write(I->Reorder[T & I->ReorderMask]);
    I->Sink.flushPending();
  }
  if (I->Opts.RetainRecords) {
    enqueueEmitted(First, S);
  } else {
    std::lock_guard Lock(I->QM);
    I->EmittedSeq.store(S, std::memory_order_release);
  }
  for (uint64_t T = First; T != S; ++T)
    I->Parked[T & I->ReorderMask] = 0;
  I->SeqNext = S;
  return K;
}

void BufferedLog::flusherMain() {
  unsigned Idle = 0;
  TelemetryCell *TC = nullptr;
  for (;;) {
    // Order matters: observe Closed before the final drain, so everything
    // appended before close() is captured by this round's drain.
    bool ClosedNow = I->Closed.load(std::memory_order_acquire);
    size_t Drained = drainShards();
    size_t Emitted = emitReady();
    if (telemetryCompiledIn()) {
      if (!TC)
        if (Telemetry *T = telemetry())
          TC = &T->cell();
      if (TC && Emitted) {
        TC->count(Counter::C_FlushBatches);
        TC->count(Counter::C_FlushedRecords, Emitted);
        TC->record(Histo::H_FlushBatch, Emitted);
        // Occupancy after the merge: tickets issued but not yet in the
        // global order (parked, unpublished or undrained records).
        TC->record(Histo::H_ReorderOccupancy,
                   I->Tickets.load(std::memory_order_relaxed) -
                       I->SeqNext);
      }
    }
    if (ClosedNow &&
        I->SeqNext == I->Tickets.load(std::memory_order_acquire))
      break;
    if (Drained == 0 && Emitted == 0)
      backoff(Idle++);
    else
      Idle = 0;
  }
  if (I->HasFile)
    I->Sink.sync();
  {
    std::lock_guard Lock(I->QM);
    I->Finished = true;
  }
  I->QCV.notify_all();
}

void BufferedLog::close() {
  std::lock_guard Lock(I->CloseM);
  if (I->CloseDone)
    return;
  I->CloseDone = true;
  I->Closed.store(true, std::memory_order_release);
  I->Flusher.join();
}

void BufferedLog::popFrontLocked(Action &Out) {
  Out = std::move(I->Q.front());
  I->Q.pop_front();
  const BackpressureConfig &BP = I->Opts.Backpressure;
  if (BP.Enabled) {
    size_t FP = actionFootprintBytes(Out);
    I->QBytes -= std::min<uint64_t>(FP, I->QBytes);
    if (Telemetry *T = telemetry(); telemetryCompiledIn() && T) {
      T->gaugeSub(Gauge::G_PendingRecords, 1);
      T->gaugeSub(Gauge::G_TailBytes, FP);
    }
    I->QSpaceCV.notify_one();
    // Monotone: a stale pop (a record the spill reader already
    // delivered from disk while its producer was still blocked) must
    // not rewind the frontier, or the next queued record is delivered
    // twice.
    if (spillCapable() && Out.Seq + 1 > I->Delivered) {
      I->Delivered = Out.Seq + 1;
      if (I->SpillReader)
        I->SpillReader.reset(); // stale: positioned inside a finished gap
      while (!I->ShedGaps.empty() &&
             I->ShedGaps.front().second <= I->Delivered)
        I->ShedGaps.erase(I->ShedGaps.begin());
    }
  }
}

bool BufferedLog::spillNextLocked(Action &Out) {
  // Same catch-up dance as FileLog: the record is at the sink (published
  // via EmittedSeq only after the sink write), at worst still in stdio
  // buffers, which sync() pushes down.
  if (!I->SpillReader || I->SpillNextSeq != I->Delivered) {
    I->Sink.sync();
    auto R =
        std::make_unique<LogFileReader>(I->Sink.pathForSeq(I->Delivered));
    R->setTailing(true);
    if (!R->valid())
      return false;
    I->SpillReader = std::move(R);
    I->SpillNextSeq = I->Delivered;
  }
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    Action A;
    while (I->SpillReader->next(A)) {
      I->SpillNextSeq = A.Seq + 1;
      if (A.Seq < I->Delivered)
        continue; // opened at a segment boundary before the gap
      while (!I->ShedGaps.empty() && I->ShedGaps.front().second <= A.Seq)
        I->ShedGaps.erase(I->ShedGaps.begin());
      if (!I->ShedGaps.empty() && A.Seq >= I->ShedGaps.front().first) {
        // Shed while spill-capable: on disk but deliberately dropped from
        // the online stream. Skip, but advance the frontier past it.
        I->Delivered = A.Seq + 1;
        continue;
      }
      // On-disk seqs are dense, so every one is either delivered here or
      // skipped as a shed gap above; the frontier never strands.
      I->Delivered = A.Seq + 1;
      Out = std::move(A);
      return true;
    }
    if (I->SpillReader->malformed()) {
      std::fprintf(stderr,
                   "vyrd: spill re-read failed (malformed log near seq "
                   "%llu); online checking truncated\n",
                   static_cast<unsigned long long>(I->Delivered));
      I->SpillReader.reset();
      I->SpillFailed = true;
      return false;
    }
    I->Sink.sync(); // the record may still be buffered; retry once synced
  }
  return false;
}

bool BufferedLog::readyLocked() const {
  if (!I->Q.empty())
    return true;
  return spillCapable() && !I->SpillFailed &&
         I->Delivered < I->EmittedSeq.load(std::memory_order_acquire);
}

bool BufferedLog::tryNextLocked(Action &Out, bool &End) {
  if (!spillCapable()) {
    if (!I->Q.empty()) {
      popFrontLocked(Out);
      End = false;
      return true;
    }
    End = I->Finished;
    return false;
  }
  // Spill mode: deliver strictly in sequence order, preferring the queue
  // and filling gaps (spilled regions) from the sink's file(s).
  while (!I->Q.empty() && I->Q.front().Seq < I->Delivered) {
    Action Drop;
    popFrontLocked(Drop); // already delivered from disk
  }
  if (!I->Q.empty() && I->Q.front().Seq == I->Delivered) {
    popFrontLocked(Out);
    End = false;
    return true;
  }
  if (!I->SpillFailed &&
      I->Delivered < I->EmittedSeq.load(std::memory_order_acquire)) {
    End = false;
    return spillNextLocked(Out); // false = not visible yet, caller retries
  }
  End = I->Finished && I->Q.empty();
  return false;
}

bool BufferedLog::next(Action &Out) {
  std::unique_lock Lock(I->QM);
  while (true) {
    I->QCV.wait(Lock, [&] { return readyLocked() || I->Finished; });
    bool End = false;
    if (tryNextLocked(Out, End))
      return true;
    if (End)
      return false;
    // Spill data momentarily invisible (stdio buffering around a
    // rotation); spillNextLocked has synced, so retrying converges.
  }
}

bool BufferedLog::tryNext(Action &Out, bool &End) {
  std::unique_lock Lock(I->QM);
  return tryNextLocked(Out, End);
}

bool BufferedLog::nextBatch(std::vector<Action> &Out, size_t Max) {
  if (spillCapable())
    return Log::nextBatch(Out, Max); // per-record path handles disk gaps
  Out.clear();
  std::unique_lock Lock(I->QM);
  I->QCV.wait(Lock, [&] { return !I->Q.empty() || I->Finished; });
  while (!I->Q.empty() && Out.size() < Max) {
    Action A;
    popFrontLocked(A);
    Out.push_back(std::move(A));
  }
  return !Out.empty();
}

uint64_t BufferedLog::appendCount() const {
  return I->Tickets.load(std::memory_order_acquire);
}

uint64_t BufferedLog::byteCount() const {
  return I->HasFile ? I->Sink.bytesWritten() : 0;
}

BackpressureStats BufferedLog::backpressureStats() const {
  std::lock_guard Lock(I->QM);
  BackpressureStats S = I->Stats;
  if (I->HasFile)
    S.merge(I->Sink.stats());
  return S;
}

void BufferedLog::setShedClassifier(std::function<bool(const Action &)> Fn) {
  std::lock_guard Lock(I->QM);
  I->Shed.setClassifier(std::move(Fn));
}

void BufferedLog::onPolicyChange() {
  // A policy transition can strand the flusher parked on QSpaceCV under a
  // predicate the new policy would decide differently; wake it to
  // re-decide. Taking QM orders the wakeup after the cell store.
  {
    std::lock_guard Lock(I->QM);
  }
  I->QSpaceCV.notify_all();
  I->QCV.notify_all();
}

void BufferedLog::takeSegmentCuts(std::vector<SegmentCut> &Out) {
  if (I->HasFile && I->Opts.Backpressure.SegmentBytes)
    I->Sink.drainCuts(Out);
}

void BufferedLog::reclaimCheckedPrefix(uint64_t Watermark) {
  const BackpressureConfig &BP = I->Opts.Backpressure;
  if (!I->HasFile || !BP.SegmentBytes)
    return;
  if (BP.ReclaimSegments)
    I->Sink.reclaimThrough(Watermark);
  if (Telemetry *T = telemetry(); telemetryCompiledIn() && T) {
    T->gaugeSet(Gauge::G_SegmentsLive, I->Sink.liveSegments());
    BackpressureStats S = I->Sink.stats();
    if (S.SegmentsCreated > I->SegCreatedSeen) {
      T->count(Counter::C_SegmentsCreated,
               S.SegmentsCreated - I->SegCreatedSeen);
      I->SegCreatedSeen = S.SegmentsCreated;
    }
    if (S.SegmentsReclaimed > I->SegReclaimedSeen) {
      T->count(Counter::C_SegmentsReclaimed,
               S.SegmentsReclaimed - I->SegReclaimedSeen);
      I->SegReclaimedSeen = S.SegmentsReclaimed;
    }
  }
}
