//===- BufferedLog.cpp - Sharded, batched execution log -------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/BufferedLog.h"

#include "vyrd/Instrument.h"
#include "vyrd/Ring.h"
#include "vyrd/Serialize.h"
#include "vyrd/Telemetry.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>

using namespace vyrd;

namespace {

/// Producer-side wait while the shard ring is full: a couple of yields,
/// then short sleeps so a starved flusher gets CPU even on one core.
void backoff(unsigned Round) {
  if (Round < 8)
    std::this_thread::yield();
  else
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

/// Each BufferedLog gets a process-unique id; ids are never reused, so the
/// thread-local shard cache below can never hit a stale entry for a log
/// that was destroyed and another allocated at the same address.
std::atomic<uint64_t> NextLogInstanceId{1};

struct ShardCacheEntry {
  uint64_t LogId = 0;
  ThreadLogShard *Shard = nullptr;
};
constexpr size_t ShardCacheWays = 4;
/// Direct-mapped per-thread cache of (log instance -> this thread's
/// shard), so the append fast path avoids the registry mutex.
thread_local ShardCacheEntry ShardCache[ShardCacheWays];

} // namespace

struct BufferedLog::Impl {
  Options Opts;
  uint64_t InstanceId = 0;

  /// The global order: every append claims one ticket (see BufferedLog.h
  /// for why a relaxed RMW is enough).
  std::atomic<uint64_t> Tickets{0};
  std::atomic<bool> Closed{false};

  /// Registered shards, indexed by dense thread id. Grown under RegistryM;
  /// shards live until the log is destroyed. RegisteredShards counts the
  /// non-null entries so the flusher can skip the mutex when nothing new
  /// registered since its last snapshot.
  mutable std::mutex RegistryM;
  std::vector<std::unique_ptr<ThreadLogShard>> ShardByTid;
  std::atomic<size_t> RegisteredShards{0};
  std::vector<ThreadLogShard *> ShardScratch; // flusher-only snapshot

  /// Flusher state (flusher thread only).
  std::thread Flusher;
  uint64_t SeqNext = 0; // next ticket to enter the global order
  /// The reorder ring: drained records parked at `Seq & ReorderMask`
  /// until the contiguous run starting at SeqNext is complete.
  std::vector<Action> Reorder;
  std::vector<uint8_t> Parked;
  uint64_t ReorderMask = 0;
  ActionEncoder Encoder;
  ByteWriter Scratch;
  std::FILE *File = nullptr;
  std::atomic<uint64_t> Bytes{0};

  /// The global, merged order the readers consume.
  std::mutex QM;
  std::condition_variable QCV;
  ChunkQueue<Action> Q; // chunk-recycling: see Ring.h
  bool Finished = false; // flusher exited; Q holds everything remaining

  /// Serializes close() so it is idempotent.
  std::mutex CloseM;
  bool CloseDone = false;
};

//===----------------------------------------------------------------------===//
// ThreadLogShard
//===----------------------------------------------------------------------===//

ThreadLogShard::ThreadLogShard(BufferedLog &Parent, size_t Capacity)
    : Parent(Parent), Slots(std::bit_ceil(std::max<size_t>(Capacity, 2))),
      Mask(Slots.size() - 1) {}

uint64_t ThreadLogShard::append(Action A) {
  assert(!Parent.I->Closed.load(std::memory_order_relaxed) &&
         "append after close");
  uint64_t H = Head.load(std::memory_order_relaxed);
  // Latency sampling reuses the already-loaded ring position instead of a
  // separate tick counter: every 64th append per shard takes two clock
  // reads, the rest pay nothing.
  uint64_t T0 = 0;
  if (telemetryCompiledIn()) {
    if (!TC)
      if (Telemetry *T = Parent.telemetry())
        TC = &T->cell();
    if (TC && (H & 63) == 0)
      T0 = telemetryNowNanos();
  }
  if (H - CachedTail > Mask) {
    CachedTail = Tail.load(std::memory_order_acquire);
    if (H - CachedTail > Mask) {
      if (telemetryCompiledIn() && TC)
        TC->count(Counter::C_AppendStalls);
      for (unsigned Round = 0; H - CachedTail > Mask; ++Round) {
        backoff(Round); // ring full: wait for the flusher to make room
        CachedTail = Tail.load(std::memory_order_acquire);
      }
    }
  }
  // Claim the record's place in the global order only once a slot is
  // certain, so a producer never stalls between ticket and publish longer
  // than the store below takes.
  uint64_t Ticket =
      Parent.I->Tickets.fetch_add(1, std::memory_order_relaxed);
  A.Seq = Ticket;
  Slots[H & Mask] = std::move(A);
  Head.store(H + 1, std::memory_order_release);
  if (telemetryCompiledIn() && TC) {
    TC->count(Counter::C_LogAppends);
    if (T0)
      TC->record(Histo::H_AppendNs, telemetryNowNanos() - T0);
  }
  return Ticket;
}

size_t ThreadLogShard::drain() {
  uint64_t T = Tail.load(std::memory_order_relaxed);
  uint64_t H = Head.load(std::memory_order_acquire);
  size_t N = static_cast<size_t>(H - T);
  for (; T != H; ++T)
    Parent.park(std::move(Slots[T & Mask]));
  if (N)
    Tail.store(T, std::memory_order_release);
  return N;
}

//===----------------------------------------------------------------------===//
// BufferedLog
//===----------------------------------------------------------------------===//

BufferedLog::BufferedLog() : BufferedLog(Options()) {}

BufferedLog::BufferedLog(Options O) : I(std::make_unique<Impl>()) {
  I->Opts = std::move(O);
  I->InstanceId =
      NextLogInstanceId.fetch_add(1, std::memory_order_relaxed);
  // Big enough that the flusher only grows it if a producer stalls
  // between taking a ticket and publishing while others run far ahead.
  I->Reorder.resize(std::bit_ceil(std::max<size_t>(
      2 * std::bit_ceil(std::max<size_t>(I->Opts.ShardCapacity, 2)), 16)));
  I->Parked.assign(I->Reorder.size(), 0);
  I->ReorderMask = I->Reorder.size() - 1;
  if (!I->Opts.FilePath.empty()) {
    I->File = std::fopen(I->Opts.FilePath.c_str(), "wb");
    Valid = I->File != nullptr;
    if (I->File) {
      // Format header first (docs/LOGFORMAT.md), before any flush epoch.
      ByteWriter HW;
      writeLogHeader(HW);
      std::fwrite(HW.buffer().data(), 1, HW.size(), I->File);
      I->Bytes.fetch_add(HW.size(), std::memory_order_relaxed);
    }
  }
  I->Flusher = std::thread([this] { flusherMain(); });
}

BufferedLog::~BufferedLog() {
  close();
  if (I->File)
    std::fclose(I->File);
}

ThreadLogShard &BufferedLog::shardForCurrentThread() {
  ThreadId Tid = currentTid();
  std::lock_guard Lock(I->RegistryM);
  if (I->ShardByTid.size() <= Tid)
    I->ShardByTid.resize(Tid + 1);
  if (!I->ShardByTid[Tid]) {
    I->ShardByTid[Tid] =
        std::make_unique<ThreadLogShard>(*this, I->Opts.ShardCapacity);
    I->RegisteredShards.fetch_add(1, std::memory_order_release);
  }
  return *I->ShardByTid[Tid];
}

LogWriter &BufferedLog::writer() {
  ShardCacheEntry &E = ShardCache[I->InstanceId % ShardCacheWays];
  if (E.LogId == I->InstanceId)
    return *E.Shard;
  ThreadLogShard &S = shardForCurrentThread();
  E.LogId = I->InstanceId;
  E.Shard = &S;
  return S;
}

uint64_t BufferedLog::append(Action A) { return writer().append(std::move(A)); }

size_t BufferedLog::shardCount() const {
  std::lock_guard Lock(I->RegistryM);
  size_t N = 0;
  for (const auto &S : I->ShardByTid)
    N += S != nullptr;
  return N;
}

size_t BufferedLog::drainShards() {
  // Re-snapshot only when a thread registered since the last round; the
  // count only grows, so a stale snapshot just means one extra check.
  if (I->ShardScratch.size() !=
      I->RegisteredShards.load(std::memory_order_acquire)) {
    std::lock_guard Lock(I->RegistryM);
    I->ShardScratch.clear();
    for (const auto &S : I->ShardByTid)
      if (S)
        I->ShardScratch.push_back(S.get());
  }
  size_t Drained = 0;
  for (ThreadLogShard *S : I->ShardScratch)
    Drained += S->drain();
  return Drained;
}

void BufferedLog::park(Action &&A) {
  if (A.Seq - I->SeqNext >= I->Reorder.size()) {
    // A producer stalled between ticket and publish while others ran more
    // than a ring's worth ahead. Grow and re-park by each record's own
    // (dense, unique) ticket.
    size_t NewSize =
        std::bit_ceil<uint64_t>(A.Seq - I->SeqNext + 1) * 2;
    std::vector<Action> NewReorder(NewSize);
    std::vector<uint8_t> NewParked(NewSize, 0);
    for (size_t Slot = 0; Slot != I->Reorder.size(); ++Slot)
      if (I->Parked[Slot]) {
        Action &Old = I->Reorder[Slot];
        NewParked[Old.Seq & (NewSize - 1)] = 1;
        NewReorder[Old.Seq & (NewSize - 1)] = std::move(Old);
      }
    I->Reorder = std::move(NewReorder);
    I->Parked = std::move(NewParked);
    I->ReorderMask = NewSize - 1;
    if (telemetryCompiledIn())
      if (Telemetry *T = telemetry())
        T->count(Counter::C_ReorderGrows);
  }
  size_t Slot = A.Seq & I->ReorderMask;
  I->Parked[Slot] = 1;
  I->Reorder[Slot] = std::move(A);
}

size_t BufferedLog::emitReady() {
  const uint64_t First = I->SeqNext;
  uint64_t S = First;
  while (S - First < I->Reorder.size() && I->Parked[S & I->ReorderMask])
    ++S;
  size_t K = static_cast<size_t>(S - First);
  if (K == 0)
    return 0;
  if (I->File) {
    I->Scratch.clear();
    for (uint64_t T = First; T != S; ++T)
      I->Encoder.encode(I->Reorder[T & I->ReorderMask], I->Scratch);
    std::fwrite(I->Scratch.buffer().data(), 1, I->Scratch.size(), I->File);
    I->Bytes.fetch_add(I->Scratch.size(), std::memory_order_relaxed);
  }
  if (I->Opts.RetainRecords) {
    {
      std::lock_guard Lock(I->QM);
      for (uint64_t T = First; T != S; ++T)
        I->Q.push_back(std::move(I->Reorder[T & I->ReorderMask]));
    }
    I->QCV.notify_one();
  }
  for (uint64_t T = First; T != S; ++T)
    I->Parked[T & I->ReorderMask] = 0;
  I->SeqNext = S;
  return K;
}

void BufferedLog::flusherMain() {
  unsigned Idle = 0;
  TelemetryCell *TC = nullptr;
  for (;;) {
    // Order matters: observe Closed before the final drain, so everything
    // appended before close() is captured by this round's drain.
    bool ClosedNow = I->Closed.load(std::memory_order_acquire);
    size_t Drained = drainShards();
    size_t Emitted = emitReady();
    if (telemetryCompiledIn()) {
      if (!TC)
        if (Telemetry *T = telemetry())
          TC = &T->cell();
      if (TC && Emitted) {
        TC->count(Counter::C_FlushBatches);
        TC->count(Counter::C_FlushedRecords, Emitted);
        TC->record(Histo::H_FlushBatch, Emitted);
        // Occupancy after the merge: tickets issued but not yet in the
        // global order (parked, unpublished or undrained records).
        TC->record(Histo::H_ReorderOccupancy,
                   I->Tickets.load(std::memory_order_relaxed) -
                       I->SeqNext);
      }
    }
    if (ClosedNow &&
        I->SeqNext == I->Tickets.load(std::memory_order_acquire))
      break;
    if (Drained == 0 && Emitted == 0)
      backoff(Idle++);
    else
      Idle = 0;
  }
  if (I->File)
    std::fflush(I->File);
  {
    std::lock_guard Lock(I->QM);
    I->Finished = true;
  }
  I->QCV.notify_all();
}

void BufferedLog::close() {
  std::lock_guard Lock(I->CloseM);
  if (I->CloseDone)
    return;
  I->CloseDone = true;
  I->Closed.store(true, std::memory_order_release);
  I->Flusher.join();
}

bool BufferedLog::next(Action &Out) {
  std::unique_lock Lock(I->QM);
  I->QCV.wait(Lock, [&] { return !I->Q.empty() || I->Finished; });
  if (I->Q.empty())
    return false;
  Out = std::move(I->Q.front());
  I->Q.pop_front();
  return true;
}

bool BufferedLog::tryNext(Action &Out, bool &End) {
  std::lock_guard Lock(I->QM);
  if (!I->Q.empty()) {
    Out = std::move(I->Q.front());
    I->Q.pop_front();
    End = false;
    return true;
  }
  End = I->Finished;
  return false;
}

bool BufferedLog::nextBatch(std::vector<Action> &Out, size_t Max) {
  Out.clear();
  std::unique_lock Lock(I->QM);
  I->QCV.wait(Lock, [&] { return !I->Q.empty() || I->Finished; });
  while (!I->Q.empty() && Out.size() < Max) {
    Out.push_back(std::move(I->Q.front()));
    I->Q.pop_front();
  }
  return !Out.empty();
}

uint64_t BufferedLog::appendCount() const {
  return I->Tickets.load(std::memory_order_acquire);
}

uint64_t BufferedLog::byteCount() const {
  return I->Bytes.load(std::memory_order_relaxed);
}
