//===- Serialize.cpp - Binary encoding of log records ---------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Serialize.h"

#include <cassert>
#include <cstring>

using namespace vyrd;

//===----------------------------------------------------------------------===//
// ByteWriter
//===----------------------------------------------------------------------===//

void ByteWriter::varint(uint64_t V) {
  while (V >= 0x80) {
    Buf.push_back(static_cast<uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Buf.push_back(static_cast<uint8_t>(V));
}

void ByteWriter::svarint(int64_t V) {
  // Zigzag encoding.
  varint((static_cast<uint64_t>(V) << 1) ^ static_cast<uint64_t>(V >> 63));
}

void ByteWriter::bytes(const void *Data, size_t Size) {
  const auto *P = static_cast<const uint8_t *>(Data);
  Buf.insert(Buf.end(), P, P + Size);
}

void ByteWriter::str(std::string_view S) {
  varint(S.size());
  bytes(S.data(), S.size());
}

//===----------------------------------------------------------------------===//
// ByteReader
//===----------------------------------------------------------------------===//

uint8_t ByteReader::u8() {
  if (Pos >= Size) {
    Ok = false;
    return 0;
  }
  return Data[Pos++];
}

uint64_t ByteReader::varint() {
  uint64_t V = 0;
  unsigned Shift = 0;
  while (true) {
    if (Pos >= Size || Shift > 63) {
      Ok = false;
      return 0;
    }
    uint8_t B = Data[Pos++];
    V |= static_cast<uint64_t>(B & 0x7F) << Shift;
    if (!(B & 0x80))
      return V;
    Shift += 7;
  }
}

int64_t ByteReader::svarint() {
  uint64_t Z = varint();
  return static_cast<int64_t>((Z >> 1) ^ (~(Z & 1) + 1));
}

bool ByteReader::bytes(void *Out, size_t N) {
  if (Pos + N > Size) {
    Ok = false;
    return false;
  }
  std::memcpy(Out, Data + Pos, N);
  Pos += N;
  return true;
}

std::string ByteReader::str() {
  uint64_t N = varint();
  if (!Ok || Pos + N > Size) {
    Ok = false;
    return "";
  }
  std::string S(reinterpret_cast<const char *>(Data + Pos), N);
  Pos += N;
  return S;
}

//===----------------------------------------------------------------------===//
// File header
//===----------------------------------------------------------------------===//

void vyrd::writeLogHeader(ByteWriter &W) {
  W.bytes(LogMagic, sizeof(LogMagic));
  W.varint(LogFormatVersion);
}

void vyrd::writeSegmentHeader(ByteWriter &W, uint64_t Index,
                              uint64_t FirstSeq) {
  W.bytes(LogMagic, sizeof(LogMagic));
  W.varint(LogSegmentVersion);
  W.varint(Index);
  W.varint(FirstSeq);
}

uint32_t vyrd::readLogHeader(ByteReader &R, LogSegmentInfo *Seg) {
  uint8_t Magic[4];
  ByteReader Probe = R;
  if (!Probe.bytes(Magic, sizeof(Magic)) ||
      std::memcmp(Magic, LogMagic, sizeof(LogMagic)) != 0)
    return 1; // Headerless legacy stream; leave R untouched.
  uint64_t Version = Probe.varint();
  if (!Probe.ok() || Version < 2 || Version > LogSegmentVersion)
    return 0;
  if (Version == LogSegmentVersion) {
    uint64_t Index = Probe.varint();
    uint64_t FirstSeq = Probe.varint();
    if (!Probe.ok())
      return 0;
    if (Seg) {
      Seg->Index = Index;
      Seg->FirstSeq = FirstSeq;
    }
  }
  R = Probe;
  return static_cast<uint32_t>(Version);
}

//===----------------------------------------------------------------------===//
// ActionEncoder
//===----------------------------------------------------------------------===//

static constexpr uint8_t NameDefTag = 0xFF;

void ActionEncoder::encodeName(Name N, ByteWriter &W) {
  if (!N.valid()) {
    W.varint(0);
    return;
  }
  auto It = FileIds.find(N.id());
  if (It != FileIds.end()) {
    W.varint(It->second);
    return;
  }
  // Names must be defined before the record that references them; the
  // caller (encode) reserves this by emitting definitions first. We handle
  // that by patching here: definitions are emitted inline *before* the
  // current record via a separate path, so encodeName is only reached for
  // already-defined names.
  assert(false && "encodeName on undefined name");
}

void vyrd::writeValue(ByteWriter &W, const Value &V) {
  W.u8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case ValueKind::VK_Null:
    break;
  case ValueKind::VK_Bool:
    W.u8(V.asBool() ? 1 : 0);
    break;
  case ValueKind::VK_Int:
    W.svarint(V.asInt());
    break;
  case ValueKind::VK_Str:
    W.str(V.asStr());
    break;
  case ValueKind::VK_Bytes: {
    const Value::Bytes &B = V.asBytes();
    W.varint(B.size());
    W.bytes(B.data(), B.size());
    break;
  }
  }
}

Value vyrd::readValue(ByteReader &R) {
  uint8_t Kind = R.u8();
  if (!R.ok())
    return Value();
  switch (static_cast<ValueKind>(Kind)) {
  case ValueKind::VK_Null:
    return Value();
  case ValueKind::VK_Bool:
    return Value(R.u8() != 0);
  case ValueKind::VK_Int:
    return Value(R.svarint());
  case ValueKind::VK_Str:
    return Value(R.str());
  case ValueKind::VK_Bytes: {
    uint64_t N = R.varint();
    Value::Bytes B(N);
    if (N && !R.bytes(B.data(), N))
      return Value();
    return Value(std::move(B));
  }
  }
  return Value();
}

void ActionEncoder::encodeValue(const Value &V, ByteWriter &W) {
  writeValue(W, V);
}

void ActionEncoder::encode(const Action &A, ByteWriter &W) {
  // Emit definitions for any names this record uses for the first time.
  for (Name N : {A.Method, A.Var}) {
    if (!N.valid() || FileIds.count(N.id()))
      continue;
    uint32_t FileId = NextFileId++;
    FileIds.emplace(N.id(), FileId);
    W.u8(NameDefTag);
    W.varint(FileId);
    W.str(N.str());
  }

  W.u8(static_cast<uint8_t>(A.Kind));
  W.varint(A.Tid);
  W.varint(A.Obj);
  W.varint(A.Seq);
  encodeName(A.Method, W);
  encodeName(A.Var, W);
  W.varint(A.Args.size());
  for (const Value &V : A.Args)
    encodeValue(V, W);
  encodeValue(A.Ret, W);
}

//===----------------------------------------------------------------------===//
// ActionDecoder
//===----------------------------------------------------------------------===//

Name ActionDecoder::decodeName(ByteReader &R) {
  uint64_t FileId = R.varint();
  if (!R.ok() || FileId == 0)
    return Name();
  if (FileId > Names.size()) {
    // Reference to an undefined name: malformed stream.
    return Name();
  }
  return Names[FileId - 1];
}

Value ActionDecoder::decodeValue(ByteReader &R) { return readValue(R); }

bool ActionDecoder::decode(ByteReader &R, Action &Out) {
  // Consume name definitions.
  while (true) {
    if (R.atEnd())
      return false;
    uint8_t Tag = R.u8();
    if (!R.ok())
      return false;
    if (Tag != NameDefTag) {
      if (Tag > static_cast<uint8_t>(ActionKind::AK_ReplayOp))
        return false;
      Out.Kind = static_cast<ActionKind>(Tag);
      break;
    }
    uint64_t FileId = R.varint();
    std::string S = R.str();
    if (!R.ok() || FileId != Names.size() + 1)
      return false;
    Names.push_back(internName(S));
  }

  Out.Tid = static_cast<ThreadId>(R.varint());
  // v1 predates the multi-object engine: no ObjectId on the wire, every
  // record belongs to the (single) object 0.
  Out.Obj = Version >= 2 ? static_cast<ObjectId>(R.varint()) : 0;
  Out.Seq = R.varint();
  Out.Method = decodeName(R);
  Out.Var = decodeName(R);
  uint64_t NArgs = R.varint();
  if (!R.ok() || NArgs > (1u << 20))
    return false;
  Out.Args.clear();
  Out.Args.reserve(NArgs);
  for (uint64_t I = 0; I < NArgs; ++I)
    Out.Args.push_back(decodeValue(R));
  if (Version >= 3) {
    Out.Ret = decodeValue(R);
  } else {
    // v1/v2 carried two value slots, (Ret, Val): the return value in the
    // first, the written value in the second, at most one non-null. Map
    // the pair onto the merged Action::Ret by record kind.
    Value LegacyRet = decodeValue(R);
    Value LegacyVal = decodeValue(R);
    Out.Ret = Out.Kind == ActionKind::AK_Write ? std::move(LegacyVal)
                                               : std::move(LegacyRet);
  }
  return R.ok();
}
