//===- View.cpp - Canonical abstract-state views --------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/View.h"

#include <cassert>

using namespace vyrd;

/// Second, independent mix so that the two accumulators do not cancel the
/// same way (splitmix64 finalizer with a different seed path).
static uint64_t remix(uint64_t X) {
  X ^= 0xc2b2ae3d27d4eb4fULL;
  X = (X ^ (X >> 29)) * 0xff51afd7ed558ccdULL;
  X = (X ^ (X >> 32)) * 0xc4ceb9fe1a85ec53ULL;
  return X ^ (X >> 29);
}

static uint64_t entryHash(const ViewEntry &E) {
  // Combine key and value hashes asymmetrically.
  uint64_t HK = E.Key.hash();
  uint64_t HV = E.Val.hash();
  return remix(HK * 0x9e3779b97f4a7c15ULL + HV);
}

void View::hashToggle(const ViewEntry &E, size_t OldCount, size_t NewCount) {
  uint64_t H = entryHash(E);
  uint64_t Delta = static_cast<uint64_t>(NewCount) - OldCount; // mod 2^64
  H1 += Delta * H;
  H2 += Delta * remix(H);
}

void View::add(const Value &Key, const Value &Val) {
  ViewEntry E{Key, Val};
  size_t &C = Entries[E];
  hashToggle(E, C, C + 1);
  ++C;
  ++Total;
}

bool View::remove(const Value &Key, const Value &Val) {
  ViewEntry E{Key, Val};
  auto It = Entries.find(E);
  if (It == Entries.end())
    return false;
  hashToggle(E, It->second, It->second - 1);
  if (--It->second == 0)
    Entries.erase(It);
  --Total;
  return true;
}

size_t View::removeKey(const Value &Key) {
  auto It = Entries.lower_bound(ViewEntry{Key, Value()});
  size_t Removed = 0;
  while (It != Entries.end() && It->first.Key == Key) {
    hashToggle(It->first, It->second, 0);
    Removed += It->second;
    Total -= It->second;
    It = Entries.erase(It);
  }
  return Removed;
}

size_t View::count(const Value &Key, const Value &Val) const {
  auto It = Entries.find(ViewEntry{Key, Val});
  return It == Entries.end() ? 0 : It->second;
}

size_t View::countKey(const Value &Key) const {
  auto It = Entries.lower_bound(ViewEntry{Key, Value()});
  size_t N = 0;
  while (It != Entries.end() && It->first.Key == Key) {
    N += It->second;
    ++It;
  }
  return N;
}

void View::clear() {
  Entries.clear();
  Total = 0;
  H1 = 0;
  H2 = 0;
}

std::string View::str(size_t MaxEntries) const {
  std::string Out = "{";
  size_t Shown = 0;
  for (const auto &[E, C] : Entries) {
    if (Shown == MaxEntries) {
      Out += ", ...";
      break;
    }
    if (Shown)
      Out += ", ";
    Out += E.Key.str() + "->" + E.Val.str();
    if (C > 1)
      Out += " x" + std::to_string(C);
    ++Shown;
  }
  Out += "} (" + std::to_string(Total) + " entries)";
  return Out;
}

std::string View::diff(const View &L, const View &R, size_t MaxEntries) {
  std::string OnlyL, OnlyR;
  size_t NL = 0, NR = 0;
  auto IL = L.Entries.begin(), EL = L.Entries.end();
  auto IR = R.Entries.begin(), ER = R.Entries.end();
  auto Note = [](std::string &S, size_t &N, const ViewEntry &E, size_t C,
                 size_t Max) {
    if (N < Max) {
      if (!S.empty())
        S += ", ";
      S += E.Key.str() + "->" + E.Val.str();
      if (C > 1)
        S += " x" + std::to_string(C);
    }
    ++N;
  };
  while (IL != EL || IR != ER) {
    if (IR == ER || (IL != EL && IL->first < IR->first)) {
      Note(OnlyL, NL, IL->first, IL->second, MaxEntries);
      ++IL;
    } else if (IL == EL || IR->first < IL->first) {
      Note(OnlyR, NR, IR->first, IR->second, MaxEntries);
      ++IR;
    } else {
      if (IL->second != IR->second) {
        Note(OnlyL, NL, IL->first, IL->second, MaxEntries);
        Note(OnlyR, NR, IR->first, IR->second, MaxEntries);
      }
      ++IL;
      ++IR;
    }
  }
  std::string Out;
  if (NL) {
    Out += "only-left(" + std::to_string(NL) + "): {" + OnlyL;
    if (NL > MaxEntries)
      Out += ", ...";
    Out += "}";
  }
  if (NR) {
    if (!Out.empty())
      Out += " ";
    Out += "only-right(" + std::to_string(NR) + "): {" + OnlyR;
    if (NR > MaxEntries)
      Out += ", ...";
    Out += "}";
  }
  if (Out.empty())
    Out = "views identical";
  return Out;
}
