//===- Auto.cpp - Automatic instrumentation layer -------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Auto.h"

#include "vyrd/Serialize.h"

#include <cassert>

using namespace vyrd;

//===----------------------------------------------------------------------===//
// AutoContext: per-(thread, context) bookkeeping
//===----------------------------------------------------------------------===//

namespace {

/// Lazy commit-bracket state. Pending means "the outermost shim lock was
/// acquired inside a dispatch frame, but nothing was logged yet": the
/// blockBegin is emitted just before the first write/replayOp/commit, so
/// critical sections that log nothing leave no empty bracket pair behind
/// (hand-over-hand reader descents would otherwise spray them).
enum class Bracket : uint8_t { None, Pending, Active };

struct CtxState {
  const AutoContext *Ctx = nullptr;
  uint32_t FrameDepth = 0;
  uint32_t LockDepth = 0;
  Bracket Blk = Bracket::None;
  bool Committed = false;

  bool idle() const {
    return FrameDepth == 0 && LockDepth == 0 && Blk == Bracket::None;
  }
};

/// A thread touches at most a handful of contexts at once (one per object
/// in a layered call like ScanFs-over-Cache). The first active context
/// occupies a dedicated thread_local slot — the dispatch hot path hits it
/// with one TLS load and a pointer compare — and any further simultaneous
/// contexts spill into a small vector behind a linear scan. Entries are
/// released as soon as they go idle, which guarantees no entry outlives
/// its context: a non-idle entry implies the thread is inside one of the
/// context's frames or critical sections.
thread_local CtxState PrimaryState;
thread_local std::vector<CtxState> SpillStates;

CtxState *findState(const AutoContext *Ctx) {
  if (PrimaryState.Ctx == Ctx)
    return &PrimaryState;
  for (CtxState &S : SpillStates)
    if (S.Ctx == Ctx)
      return &S;
  return nullptr;
}

CtxState &stateFor(const AutoContext *Ctx) {
  if (CtxState *S = findState(Ctx))
    return *S;
  if (!PrimaryState.Ctx) {
    PrimaryState.Ctx = Ctx; // idle slot: counters are at their defaults
    return PrimaryState;
  }
  SpillStates.emplace_back();
  SpillStates.back().Ctx = Ctx;
  return SpillStates.back();
}

void gcIfIdle(CtxState *S) {
  if (!S || !S->idle())
    return;
  if (S == &PrimaryState) {
    S->Ctx = nullptr;
    return;
  }
  *S = SpillStates.back();
  SpillStates.pop_back();
}

/// Opens the deferred bracket when the first loggable record arrives
/// inside a critical section.
void flushBracket(const Hooks &H, CtxState *S) {
  if (S && S->Blk == Bracket::Pending) {
    H.blockBegin();
    S->Blk = Bracket::Active;
  }
}

} // namespace

AutoContext::~AutoContext() {
  assert(!findState(this) && "context destroyed while a frame or shim "
                             "lock on this thread still uses it");
}

bool AutoContext::enterFrame() {
  CtxState &S = stateFor(this);
  if (S.FrameDepth++ == 0) {
    S.Committed = false;
    return true;
  }
  return false;
}

void AutoContext::exitFrame() {
  CtxState *S = findState(this);
  assert(S && S->FrameDepth > 0 && "unbalanced frame exit");
  --S->FrameDepth;
  gcIfIdle(S);
}

bool AutoContext::frameCommitted() const {
  const CtxState *S = findState(this);
  return S && S->Committed;
}

void AutoContext::lockAcquired() {
  CtxState &S = stateFor(this);
  if (S.LockDepth++ == 0 && S.FrameDepth > 0 && H.viewLevel())
    S.Blk = Bracket::Pending;
}

void AutoContext::lockReleasing() {
  CtxState *S = findState(this);
  assert(S && S->LockDepth > 0 && "unbalanced shim unlock");
  if (--S->LockDepth == 0) {
    // Still inside the critical section: the closing bracket must be
    // appended before the underlying mutex is released (atomicity rule).
    if (S->Blk == Bracket::Active)
      H.blockEnd();
    S->Blk = Bracket::None;
    gcIfIdle(S);
  }
}

void AutoContext::commit() {
  CtxState *S = findState(this);
  flushBracket(H, S);
  H.commit();
  if (S)
    S->Committed = true;
}

void AutoContext::write(Name Var, Value V) {
  if (!H.viewLevel())
    return;
  flushBracket(H, findState(this));
  H.write(Var, std::move(V));
}

void AutoContext::replayOp(Name Op, ValueList Payload) {
  if (!H.viewLevel())
    return;
  flushBracket(H, findState(this));
  H.replayOp(Op, std::move(Payload));
}

//===----------------------------------------------------------------------===//
// KeyValueReplayer
//===----------------------------------------------------------------------===//

KeyValueReplayer::KeyValueReplayer(Shape Mode, std::string Prefix)
    : Mode(Mode), Prefix(std::move(Prefix)) {
  if (Mode == Shape::Map) {
    SetOp = internName(this->Prefix + ".set");
    DelOp = internName(this->Prefix + ".del");
  }
}

const KeyValueReplayer::ParsedVar &KeyValueReplayer::parse(Name Var) {
  auto It = VarCache.find(Var.id());
  if (It != VarCache.end())
    return It->second;

  ParsedVar P;
  std::string_view S = Var.str();
  // Grammar: "<prefix>.len" | "<prefix>[<key>]" optionally followed by
  // ".elt" / ".valid" in the GuardedBag shape.
  if (S.size() > Prefix.size() && S.substr(0, Prefix.size()) == Prefix) {
    std::string_view Rest = S.substr(Prefix.size());
    if (Rest == ".len") {
      P.VarRole = ParsedVar::R_Len;
    } else if (Rest.size() >= 3 && Rest.front() == '[') {
      size_t Close = Rest.find(']');
      if (Close != std::string_view::npos && Close > 1) {
        std::string_view KeyStr = Rest.substr(1, Close - 1);
        std::string_view Suffix = Rest.substr(Close + 1);
        bool Neg = !KeyStr.empty() && KeyStr.front() == '-';
        std::string_view Digits = Neg ? KeyStr.substr(1) : KeyStr;
        bool AllDigits = !Digits.empty();
        int64_t Idx = 0;
        for (char C : Digits) {
          if (C < '0' || C > '9') {
            AllDigits = false;
            break;
          }
          Idx = Idx * 10 + (C - '0');
        }
        if (Neg)
          Idx = -Idx;
        if (Suffix.empty()) {
          P.VarRole = ParsedVar::R_Elem;
          P.Index = Idx;
          P.Key = AllDigits ? Value(Idx) : Value(std::string(KeyStr));
        } else if (Suffix == ".elt" && AllDigits && Idx >= 0) {
          P.VarRole = ParsedVar::R_Elt;
          P.Index = Idx;
        } else if (Suffix == ".valid" && AllDigits && Idx >= 0) {
          P.VarRole = ParsedVar::R_Valid;
          P.Index = Idx;
        }
      }
    }
  }
  return VarCache.emplace(Var.id(), std::move(P)).first->second;
}

void KeyValueReplayer::applyMapSet(const Value &K, const Value &V,
                                   View &ViewI) {
  auto It = MapShadow.find(K);
  if (It != MapShadow.end()) {
    if (It->second == V)
      return;
    ViewI.remove(K, It->second);
    if (V.isNull()) {
      MapShadow.erase(It);
      return;
    }
    ViewI.add(K, V);
    It->second = V;
    return;
  }
  if (V.isNull())
    return;
  ViewI.add(K, V);
  MapShadow.emplace(K, V);
}

void KeyValueReplayer::applyMapDel(const Value &K, View &ViewI) {
  auto It = MapShadow.find(K);
  if (It == MapShadow.end())
    return;
  ViewI.remove(K, It->second);
  MapShadow.erase(It);
}

void KeyValueReplayer::applyUpdate(const Action &A, View &ViewI) {
  if (A.Kind == ActionKind::AK_ReplayOp) {
    assert(Mode == Shape::Map && "replay ops only feed the Map shape");
    if (A.Var == SetOp) {
      assert(A.Args.size() == 2 && "<prefix>.set carries (key, value)");
      applyMapSet(A.Args[0], A.Args[1], ViewI);
    } else if (A.Var == DelOp) {
      assert(A.Args.size() == 1 && "<prefix>.del carries (key)");
      applyMapDel(A.Args[0], ViewI);
    } else {
      assert(false && "unknown replay op for this prefix");
    }
    return;
  }

  assert(A.Kind == ActionKind::AK_Write && "unexpected record kind");
  const ParsedVar &P = parse(A.Var);
  switch (P.VarRole) {
  case ParsedVar::R_Elem: {
    if (Mode == Shape::Map) {
      applyMapSet(P.Key, A.Ret, ViewI);
      return;
    }
    assert(Mode == Shape::Prefix && "indexed write outside Map/Prefix");
    size_t I = static_cast<size_t>(P.Index);
    if (I >= Storage.size())
      Storage.resize(I + 1);
    if (I < Len && Storage[I] != A.Ret) {
      ViewI.remove(Value(P.Index), Storage[I]);
      ViewI.add(Value(P.Index), A.Ret);
    }
    Storage[I] = A.Ret;
    return;
  }
  case ParsedVar::R_Len: {
    assert(Mode == Shape::Prefix && "length write outside Prefix shape");
    size_t NewLen = static_cast<size_t>(A.Ret.asInt());
    if (NewLen > Storage.size())
      Storage.resize(NewLen);
    for (size_t I = NewLen; I < Len; ++I)
      ViewI.remove(Value(static_cast<int64_t>(I)), Storage[I]);
    for (size_t I = Len; I < NewLen; ++I)
      ViewI.add(Value(static_cast<int64_t>(I)), Storage[I]);
    Len = NewLen;
    return;
  }
  case ParsedVar::R_Elt: {
    assert(Mode == Shape::GuardedBag && "elt write outside GuardedBag");
    size_t I = static_cast<size_t>(P.Index);
    if (I >= Slots.size())
      Slots.resize(I + 1);
    SlotShadow &S = Slots[I];
    // Only affects the view when the slot is published — which a correct
    // implementation never does; the replay mirrors buggy interleavings
    // faithfully regardless.
    if (S.Valid && S.Elt != A.Ret) {
      ViewI.remove(S.Elt, Value());
      ViewI.add(A.Ret, Value());
    }
    S.Elt = A.Ret;
    return;
  }
  case ParsedVar::R_Valid: {
    assert(Mode == Shape::GuardedBag && "valid write outside GuardedBag");
    size_t I = static_cast<size_t>(P.Index);
    if (I >= Slots.size())
      Slots.resize(I + 1);
    SlotShadow &S = Slots[I];
    bool NewValid = A.Ret.isBool() && A.Ret.asBool();
    if (NewValid == S.Valid)
      return;
    if (NewValid)
      ViewI.add(S.Elt, Value());
    else
      ViewI.remove(S.Elt, Value());
    S.Valid = NewValid;
    return;
  }
  case ParsedVar::R_Unknown:
    assert(false && "write to a variable outside this replayer's grammar");
    return;
  }
}

void KeyValueReplayer::buildView(View &Out) const {
  Out.clear();
  switch (Mode) {
  case Shape::Map:
    for (const auto &[K, V] : MapShadow)
      Out.add(K, V);
    return;
  case Shape::GuardedBag:
    for (const SlotShadow &S : Slots)
      if (S.Valid)
        Out.add(S.Elt, Value());
    return;
  case Shape::Prefix:
    for (size_t I = 0; I < Len; ++I)
      Out.add(Value(static_cast<int64_t>(I)), Storage[I]);
    return;
  }
}

bool KeyValueReplayer::saveState(ByteWriter &W) const {
  // VarCache is a parse cache over interned ids, not state: it rebuilds
  // lazily, so only the shadow persists (canonical, no interned ids).
  W.u8(static_cast<uint8_t>(Mode));
  switch (Mode) {
  case Shape::Map:
    W.varint(MapShadow.size());
    for (const auto &[K, V] : MapShadow) {
      writeValue(W, K);
      writeValue(W, V);
    }
    return true;
  case Shape::GuardedBag:
    W.varint(Slots.size());
    for (const SlotShadow &S : Slots) {
      writeValue(W, S.Elt);
      W.u8(S.Valid ? 1 : 0);
    }
    return true;
  case Shape::Prefix:
    W.varint(Len);
    W.varint(Storage.size());
    for (const Value &V : Storage)
      writeValue(W, V);
    return true;
  }
  return false;
}

bool KeyValueReplayer::loadState(ByteReader &R) {
  constexpr uint64_t MaxElems = 1u << 24;
  if (R.u8() != static_cast<uint8_t>(Mode) || !R.ok())
    return false;
  MapShadow.clear();
  Slots.clear();
  Storage.clear();
  Len = 0;
  switch (Mode) {
  case Shape::Map: {
    uint64_t N = R.varint();
    if (!R.ok() || N > MaxElems)
      return false;
    for (uint64_t I = 0; I < N; ++I) {
      Value K = readValue(R);
      Value V = readValue(R);
      if (!R.ok())
        return false;
      MapShadow.emplace(std::move(K), std::move(V));
    }
    return R.ok();
  }
  case Shape::GuardedBag: {
    uint64_t N = R.varint();
    if (!R.ok() || N > MaxElems)
      return false;
    Slots.assign(N, SlotShadow());
    for (uint64_t I = 0; I < N; ++I) {
      Slots[I].Elt = readValue(R);
      Slots[I].Valid = R.u8() != 0;
    }
    return R.ok();
  }
  case Shape::Prefix: {
    uint64_t NewLen = R.varint();
    uint64_t N = R.varint();
    if (!R.ok() || N > MaxElems || NewLen > N)
      return false;
    Storage.assign(N, Value());
    for (uint64_t I = 0; I < N; ++I)
      Storage[I] = readValue(R);
    Len = static_cast<size_t>(NewLen);
    return R.ok();
  }
  }
  return false;
}
