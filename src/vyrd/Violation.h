//===- Violation.h - Refinement violation reports ---------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef VYRD_VIOLATION_H
#define VYRD_VIOLATION_H

#include "vyrd/Action.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vyrd {

/// Classification of a detected problem.
enum class ViolationKind : uint8_t {
  /// A mutator committed with a signature the specification cannot execute
  /// (I/O refinement violation).
  VK_MutatorMismatch,
  /// An observer returned a value inconsistent with every specification
  /// state in its call-to-return window (I/O refinement violation, Fig. 7).
  VK_ObserverMismatch,
  /// viewI != viewS at a mutator commit (view refinement violation).
  VK_ViewMismatch,
  /// A registered shadow-state invariant failed at a commit.
  VK_InvariantFailed,
  /// The log itself is ill-formed (e.g. a mutator returned without a commit,
  /// nested calls, commit outside a method). Usually an annotation bug; the
  /// paper's iterative commit-point debugging loop (Sec. 4.1) surfaces here.
  VK_Instrumentation,
  /// Coverage was degraded, not violated: the BP_Shed backpressure policy
  /// dropped observer executions to stay within the memory bound. Emitted
  /// as a report *note* (VerifierReport::Notes), never as a violation —
  /// the checked subset is still a legal witness, just a sparser one.
  VK_Degraded,
};

/// Returns a short printable name for \p K.
const char *violationKindName(ViolationKind K);

/// One detected violation.
struct Violation {
  ViolationKind Kind = ViolationKind::VK_Instrumentation;
  /// Log position at which the violation was established.
  uint64_t Seq = 0;
  /// Thread whose execution triggered it (if applicable).
  ThreadId Tid = 0;
  /// The verified object the violation is attributed to; stamped by the
  /// Verifier when it aggregates per-object checker results.
  ObjectId Obj = 0;
  /// Name of that object (invalid for the anonymous single-object case,
  /// in which str() omits the attribution tag).
  Name Object;
  /// Method involved (if applicable).
  Name Method;
  /// Human-readable description with the mismatching values / view diff.
  std::string Message;
  /// Number of method executions fully checked before this violation —
  /// the "time to detection" metric of Table 1.
  uint64_t MethodsChecked = 0;
  /// The last few log records fed before the violation (rendered), when
  /// CheckerConfig::ContextRecords is enabled. Debugging aid only.
  std::string Context;

  std::string str() const;
};

/// Sorts \p Vs into witness order (ascending Seq), keeping the relative
/// order of equal-Seq entries. Equivalent to std::stable_sort, but uses a
/// decorated std::sort so no temporary buffer is allocated (stable_sort's
/// buffer takes an allocation path that ASan flags as an alloc/dealloc
/// mismatch when the process mixes C++ runtimes).
void sortViolationsBySeq(std::vector<Violation> &Vs);

} // namespace vyrd

#endif // VYRD_VIOLATION_H
