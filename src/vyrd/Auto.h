//===- Auto.h - Automatic instrumentation layer -----------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The automatic instrumentation layer: the paper describes its
/// instrumentation (Sec. 6.1-6.2) as mechanical, and this layer absorbs the
/// mechanical parts so a data structure carries no hand-written hook calls
/// beyond its commit points.
///
/// Three cooperating pieces:
///
///  * `Instrumented<T>` — a wrapper fronting T's public methods through a
///    declarative method table (`AutoMethods<T>`): dispatching through
///    `invoke<&T::method>(...)` emits the call record (arguments encoded
///    via `Codec`), runs the method, auto-commits mutators whose body did
///    not reach an explicit commit point (failure paths), and emits the
///    return record.
///
///  * A lock shim — `vyrd::Mutex` / `vyrd::SharedMutex` with the standard
///    Lockable interface (so `std::lock_guard` / `std::unique_lock` work
///    unchanged) that derives commit-block brackets from the lock
///    discipline itself: the outermost shim lock a dispatching thread
///    holds opens a commit block, releasing the last one closes it, and
///    `Chaos::point()` fires at every acquire and release. Brackets are
///    lazy: `blockBegin` is emitted just before the first record inside
///    the critical section, so lock regions that log nothing (pure
///    reader sections) leave no trace in the log.
///
///  * `Tracked<V>` / `TrackedMap` write-capturing fields plus the generic
///    `KeyValueReplayer`, which reconstructs shadow state from the
///    auto-emitted records — a new structure whose state fits one of the
///    supported shapes needs only a Spec, not a bespoke replayer.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_AUTO_H
#define VYRD_AUTO_H

#include "vyrd/Instrument.h"
#include "vyrd/Replayer.h"

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace vyrd {

//===----------------------------------------------------------------------===//
// Codec: Value encoding for method arguments, returns and tracked fields
//===----------------------------------------------------------------------===//

/// Maps a C++ type to its logged Value representation. Specialize for
/// custom types; the declarative method table falls back to these for any
/// argument or return a desc() entry does not encode explicitly.
template <typename V> struct Codec;

template <> struct Codec<bool> {
  static Value encode(bool B) { return Value(B); }
};
template <> struct Codec<int64_t> {
  static Value encode(int64_t I) { return Value(I); }
};
template <> struct Codec<uint64_t> {
  static Value encode(uint64_t I) { return Value(I); }
};
template <> struct Codec<int> {
  static Value encode(int I) { return Value(I); }
};
template <> struct Codec<unsigned> {
  static Value encode(unsigned I) { return Value(I); }
};
template <> struct Codec<std::string> {
  static Value encode(const std::string &S) { return Value(S); }
};
template <> struct Codec<Value> {
  static Value encode(const Value &V) { return V; }
};
template <> struct Codec<std::vector<uint8_t>> {
  static Value encode(const std::vector<uint8_t> &B) {
    return bytesValue(B.data(), B.size());
  }
};

//===----------------------------------------------------------------------===//
// AutoContext: per-object instrumentation state
//===----------------------------------------------------------------------===//

/// The per-object hub the auto layer routes every record through. It wraps
/// the object's `Hooks` and keeps the per-thread bookkeeping (dispatch
/// frame depth, shim-lock depth, lazy commit-bracket state) that turns
/// lock acquire/release into commit-block brackets.
///
/// Identified by address: not copyable, not movable. Workload classes hold
/// a reference and call `commit()` at their commit points plus
/// `write()`/`replayOp()` where a `Tracked` field is not a natural fit.
class AutoContext {
public:
  AutoContext() = default;
  explicit AutoContext(Hooks H) : H(H) {}
  ~AutoContext();

  AutoContext(const AutoContext &) = delete;
  AutoContext &operator=(const AutoContext &) = delete;

  const Hooks &hooks() const { return H; }
  void setHooks(Hooks NH) { H = NH; }

  /// The commit point (the one hand-placed annotation the paper's method
  /// requires, Sec. 4.1). Opens the pending commit bracket, if any.
  void commit();

  /// Logs `Var := V` (view level only), inside the current commit bracket
  /// when a shim lock is held.
  void write(Name Var, Value V);

  /// Logs a coarse-grained replay record (Sec. 6.2), inside the current
  /// commit bracket when a shim lock is held.
  void replayOp(Name Op, ValueList Payload);

  /// RAII dispatch frame pushed by Instrumented<T>::invoke. Only the
  /// outermost frame of a (thread, context) pair instruments; shim locks
  /// emit brackets only while a frame is open, so locks taken outside any
  /// dispatched method (constructors, test-only snapshots) stay silent.
  class FrameGuard {
  public:
    explicit FrameGuard(AutoContext &C) : C(C), Outer(C.enterFrame()) {}
    ~FrameGuard() { C.exitFrame(); }

    FrameGuard(const FrameGuard &) = delete;
    FrameGuard &operator=(const FrameGuard &) = delete;

    /// Whether this frame is the outermost one (and must instrument).
    bool outermost() const { return Outer; }
    /// Whether a commit was emitted since this outermost frame opened.
    bool committed() const { return C.frameCommitted(); }

  private:
    AutoContext &C;
    bool Outer;
  };

private:
  friend class Mutex;
  friend class SharedMutex;

  bool enterFrame();
  void exitFrame();
  bool frameCommitted() const;
  /// Called by the shim with the lock held, just after acquiring.
  void lockAcquired();
  /// Called by the shim with the lock still held, just before releasing —
  /// the closing bracket must be appended inside the critical section.
  void lockReleasing();

  Hooks H;
};

//===----------------------------------------------------------------------===//
// Lock shim
//===----------------------------------------------------------------------===//

/// Drop-in `std::mutex` replacement bound to an AutoContext. Satisfies
/// Lockable, so `std::lock_guard<vyrd::Mutex>` / `std::unique_lock<...>`
/// and hand-over-hand `.lock()`/`.unlock()` all work unchanged. Each
/// acquire/release is a chaos point; the outermost acquire inside a
/// dispatch frame opens the commit bracket, the final release closes it.
class Mutex {
public:
  explicit Mutex(AutoContext &C) : Ctx(&C) {}

  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() {
    Chaos::point();
    M.lock();
    Ctx->lockAcquired();
  }
  bool try_lock() {
    Chaos::point();
    if (!M.try_lock())
      return false;
    Ctx->lockAcquired();
    return true;
  }
  void unlock() {
    Ctx->lockReleasing();
    M.unlock();
    Chaos::point();
  }

private:
  AutoContext *Ctx;
  std::mutex M;
};

/// Drop-in `std::shared_mutex` replacement. Exclusive acquisition brackets
/// like Mutex; shared acquisition only injects chaos points (readers log
/// nothing, so they need no commit bracket).
class SharedMutex {
public:
  explicit SharedMutex(AutoContext &C) : Ctx(&C) {}

  SharedMutex(const SharedMutex &) = delete;
  SharedMutex &operator=(const SharedMutex &) = delete;

  void lock() {
    Chaos::point();
    M.lock();
    Ctx->lockAcquired();
  }
  bool try_lock() {
    Chaos::point();
    if (!M.try_lock())
      return false;
    Ctx->lockAcquired();
    return true;
  }
  void unlock() {
    Ctx->lockReleasing();
    M.unlock();
    Chaos::point();
  }

  void lock_shared() {
    Chaos::point();
    M.lock_shared();
  }
  void unlock_shared() {
    M.unlock_shared();
    Chaos::point();
  }

private:
  AutoContext *Ctx;
  std::shared_mutex M;
};

/// The `std::lock_guard` spelling for the shim.
using LockGuard = std::lock_guard<Mutex>;
using UniqueLock = std::unique_lock<Mutex>;

//===----------------------------------------------------------------------===//
// Declarative method table
//===----------------------------------------------------------------------===//

/// Tag carrying a member-function pointer as a type, so the AutoMethods
/// table is an overload set resolved at compile time.
template <auto F> struct MethodTag {};

/// Marker: "use the Codec default" for argument / return encoding.
struct NoEncode {};

/// One method-table entry: the logged name, the observer flag (observers
/// never commit and are validated against every interleaving of the
/// specification), the minimum log level at which the method is recorded,
/// and optional custom argument/return encoders for signatures the Codec
/// defaults cannot express (out-parameters, callback arguments).
template <typename ArgsE = NoEncode, typename RetE = NoEncode>
struct MethodDesc {
  const char *MethodName = "";
  bool IsObserver = false;
  LogLevel MinLevel = LogLevel::LL_IO;
  ArgsE ArgsEncode{};
  RetE RetEncode{};

  constexpr MethodDesc level(LogLevel L) const {
    MethodDesc D = *this;
    D.MinLevel = L;
    return D;
  }
  /// Custom argument encoder: `ValueList(const As &...)`, evaluated
  /// before the method runs.
  template <typename E> constexpr MethodDesc<E, RetE> args(E Enc) const {
    return {MethodName, IsObserver, MinLevel, Enc, RetEncode};
  }
  /// Custom return encoder: `Value(const Ret &, const As &...)` — or
  /// `Value(const As &...)` for void methods — evaluated after the method
  /// runs, so it can encode out-parameters.
  template <typename E> constexpr MethodDesc<ArgsE, E> ret(E Enc) const {
    return {MethodName, IsObserver, MinLevel, ArgsEncode, Enc};
  }
};

/// Table-entry factories: `method("Insert")` for mutators,
/// `observer("LookUp")` for observers.
constexpr MethodDesc<> method(const char *N) { return {N, false}; }
constexpr MethodDesc<> observer(const char *N) { return {N, true}; }

/// The declarative method table: specialize per wrapped type with one
/// static `desc()` overload per instrumented method, e.g.
///
/// \code
///   template <> struct vyrd::AutoMethods<ArrayMultiset> {
///     static constexpr auto desc(MethodTag<&ArrayMultiset::insert>) {
///       return method("Insert");
///     }
///     static constexpr auto desc(MethodTag<&ArrayMultiset::lookUp>) {
///       return observer("LookUp");
///     }
///   };
/// \endcode
template <typename T> struct AutoMethods;

//===----------------------------------------------------------------------===//
// Instrumented<T>
//===----------------------------------------------------------------------===//

/// Owns an AutoContext and a T constructed against it; T's constructor
/// takes the context as its trailing parameter. Dispatch through
/// `invoke<&T::method>(...)`; direct access via `raw()` bypasses
/// instrumentation (test-only snapshots, uninstrumented storage stacks).
template <typename T> class Instrumented {
public:
  template <typename... CtorArgs>
  explicit Instrumented(Hooks H, CtorArgs &&...A)
      : Ctx(H), Impl(std::forward<CtorArgs>(A)..., Ctx) {}

  T &raw() { return Impl; }
  const T &raw() const { return Impl; }
  AutoContext &context() { return Ctx; }

  /// Dispatches `(impl.*F)(A...)` with automatic instrumentation: call
  /// record (encoded arguments) on entry, auto-commit for mutator
  /// executions whose body reached no explicit commit point, return
  /// record (encoded result) on exit. Re-entrant dispatches on the same
  /// thread run uninstrumented (the checker permits no nested
  /// executions), as do dispatches below the entry's minimum log level.
  template <auto F, typename... As> auto invoke(As &&...A) {
    static const auto D = AutoMethods<T>::desc(MethodTag<F>{});
    using Ret = decltype((Impl.*F)(std::forward<As>(A)...));
    const Hooks &H = Ctx.hooks();
    if (!H.enabled() ||
        static_cast<uint8_t>(H.level()) < static_cast<uint8_t>(D.MinLevel)) {
      Chaos::point();
      if constexpr (std::is_void_v<Ret>) {
        (Impl.*F)(std::forward<As>(A)...);
        Chaos::point();
        return;
      } else {
        Ret R = (Impl.*F)(std::forward<As>(A)...);
        Chaos::point();
        return R;
      }
    }

    AutoContext::FrameGuard Frame(Ctx);
    if (!Frame.outermost())
      return (Impl.*F)(std::forward<As>(A)...);

    static const Name MName = internName(D.MethodName);
    H.call(MName, encodeArgs(D, A...));
    if constexpr (std::is_void_v<Ret>) {
      (Impl.*F)(std::forward<As>(A)...);
      if (!D.IsObserver && !Frame.committed())
        Ctx.commit();
      H.ret(MName, encodeVoidRet(D, A...));
    } else {
      Ret R = (Impl.*F)(std::forward<As>(A)...);
      if (!D.IsObserver && !Frame.committed())
        Ctx.commit();
      H.ret(MName, encodeRet(D, R, A...));
      return R;
    }
  }

private:
  template <typename D, typename... As>
  static ValueList encodeArgs(const D &Desc, const As &...A) {
    if constexpr (std::is_same_v<decltype(Desc.ArgsEncode), NoEncode>) {
      (void)Desc;
      ValueList L;
      L.reserve(sizeof...(As));
      (L.push_back(Codec<std::decay_t<As>>::encode(A)), ...);
      return L;
    } else {
      return Desc.ArgsEncode(A...);
    }
  }

  template <typename D, typename R, typename... As>
  static Value encodeRet(const D &Desc, const R &Ret, const As &...A) {
    if constexpr (std::is_same_v<decltype(Desc.RetEncode), NoEncode>) {
      (void)Desc;
      ((void)A, ...);
      return Codec<std::decay_t<R>>::encode(Ret);
    } else {
      return Desc.RetEncode(Ret, A...);
    }
  }

  template <typename D, typename... As>
  static Value encodeVoidRet(const D &Desc, const As &...A) {
    if constexpr (std::is_same_v<decltype(Desc.RetEncode), NoEncode>) {
      (void)Desc;
      ((void)A, ...);
      return Value();
    } else {
      return Desc.RetEncode(A...);
    }
  }

  AutoContext Ctx;
  T Impl;
};

//===----------------------------------------------------------------------===//
// Tracked fields
//===----------------------------------------------------------------------===//

/// A named field whose assignments are captured as `write` records
/// through the owning context (and therefore land inside the commit
/// bracket of whatever shim lock protects them). Reads are plain.
template <typename V> class Tracked {
public:
  /// Optional custom encoder (sentinel values, e.g. "empty slot" -> null).
  using Encoder = Value (*)(const V &);

  Tracked() = default;
  Tracked(AutoContext &C, Name Var, V Init = V(), Encoder E = nullptr)
      : Ctx(&C), Var(Var), Val(std::move(Init)), Enc(E) {}

  Tracked &operator=(const V &NV) {
    set(NV);
    return *this;
  }

  void set(const V &NV) {
    Val = NV;
    if (Ctx)
      Ctx->write(Var, Enc ? Enc(Val) : Codec<V>::encode(Val));
  }

  const V &get() const { return Val; }
  operator const V &() const { return Val; }

private:
  AutoContext *Ctx = nullptr;
  Name Var;
  V Val{};
  Encoder Enc = nullptr;
};

/// Write capture for unbounded key domains, where one interned name per
/// key would grow the global intern table without bound: emits canonical
/// `<prefix>.set(key, value)` / `<prefix>.del(key)` replay records that
/// `KeyValueReplayer` (Map shape) consumes. The map holds no state — it
/// is a capture channel for state the structure already stores.
class TrackedMap {
public:
  TrackedMap() = default;
  TrackedMap(AutoContext &C, std::string_view Prefix)
      : Ctx(&C), SetOp(internName(std::string(Prefix) + ".set")),
        DelOp(internName(std::string(Prefix) + ".del")) {}

  void set(Value K, Value V) const {
    if (Ctx)
      Ctx->replayOp(SetOp, {std::move(K), std::move(V)});
  }
  void del(Value K) const {
    if (Ctx)
      Ctx->replayOp(DelOp, {std::move(K)});
  }

private:
  AutoContext *Ctx = nullptr;
  Name SetOp, DelOp;
};

//===----------------------------------------------------------------------===//
// KeyValueReplayer
//===----------------------------------------------------------------------===//

/// Generic replayer over the auto-emitted records. Three state shapes
/// cover the common cases (see docs/INSTRUMENTATION.md for when a custom
/// replayer is still needed):
///
///  * Map — writes `<p>[k] := v` (null = absent) and/or `<p>.set` /
///    `<p>.del` replay ops; the view holds one (key, value) entry per
///    present key.
///  * GuardedBag — writes `<p>[i].elt := v` / `<p>[i].valid := bool`; the
///    view holds (element, null) for every valid slot. Mirrors buggy
///    overwrites faithfully: an element write under a published slot
///    swaps the view entry.
///  * Prefix — writes `<p>[i] := v` / `<p>.len := n`; the view holds
///    (i, v) for every i below the logical length (vector semantics).
class KeyValueReplayer : public Replayer {
public:
  enum class Shape : uint8_t { Map = 0, GuardedBag = 1, Prefix = 2 };

  KeyValueReplayer(Shape Mode, std::string Prefix);

  /// Wiring-site shorthands: `KeyValueReplayer::map("q")` etc.
  static std::unique_ptr<KeyValueReplayer> map(std::string Prefix) {
    return std::make_unique<KeyValueReplayer>(Shape::Map, std::move(Prefix));
  }
  static std::unique_ptr<KeyValueReplayer> guardedBag(std::string Prefix) {
    return std::make_unique<KeyValueReplayer>(Shape::GuardedBag,
                                              std::move(Prefix));
  }
  static std::unique_ptr<KeyValueReplayer> prefixVec(std::string Prefix) {
    return std::make_unique<KeyValueReplayer>(Shape::Prefix,
                                              std::move(Prefix));
  }

  void applyUpdate(const Action &A, View &ViewI) override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

private:
  struct ParsedVar {
    enum Role : uint8_t { R_Elem, R_Elt, R_Valid, R_Len, R_Unknown };
    Role VarRole = R_Unknown;
    int64_t Index = 0; // R_Elt / R_Valid / R_Elem-with-int-key
    Value Key;         // R_Elem (Map shape)
  };
  struct SlotShadow {
    Value Elt; // null when empty
    bool Valid = false;
  };

  const ParsedVar &parse(Name Var);
  void applyMapSet(const Value &K, const Value &V, View &ViewI);
  void applyMapDel(const Value &K, View &ViewI);

  Shape Mode;
  std::string Prefix;
  Name SetOp, DelOp;

  /// Parse cache: interned name id -> parsed role/key (a vocab-derived
  /// lookup, rebuilt lazily — never persisted).
  std::unordered_map<uint32_t, ParsedVar> VarCache;

  // Map shape: present keys only.
  std::map<Value, Value> MapShadow;
  // GuardedBag shape: slots, grown on first touch.
  std::vector<SlotShadow> Slots;
  // Prefix shape.
  std::vector<Value> Storage;
  size_t Len = 0;
};

} // namespace vyrd

#endif // VYRD_AUTO_H
