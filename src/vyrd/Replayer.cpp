//===- Replayer.cpp - Shadow-state reconstruction from the log ------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Replayer.h"

using namespace vyrd;

Replayer::~Replayer() = default;

bool Replayer::saveState(ByteWriter &W) const {
  (void)W;
  return false;
}

bool Replayer::loadState(ByteReader &R) {
  (void)R;
  return false;
}

bool Replayer::checkInvariants(std::string &Message) const {
  (void)Message;
  return true;
}
