//===- Replayer.h - Shadow-state reconstruction from the log ----*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// View refinement needs the value of viewI — the canonical contents of the
/// *implementation* state — at every commit action. The implementation is
/// not modified to compute it (Sec. 5.1); instead the verification thread
/// replays the logged shared-variable writes (or coarse-grained replay
/// records, Sec. 6.2) into a shadow state and maintains viewI incrementally
/// from it. A Replayer encapsulates that shadow state for one data
/// structure.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_REPLAYER_H
#define VYRD_REPLAYER_H

#include "vyrd/Action.h"
#include "vyrd/View.h"

#include <string>

namespace vyrd {

class ByteWriter;
class ByteReader;

/// Interface implemented once per verified data structure (only needed for
/// view refinement; I/O refinement runs without one).
class Replayer {
public:
  virtual ~Replayer();

  /// Serializes the shadow state into \p W (snapshot sidecars,
  /// docs/SNAPSHOTS.md). Canonical encoding, no interned name ids —
  /// name-keyed lookup caches are rebuilt lazily after loadState instead
  /// of being persisted. \returns false when unsupported (the default).
  virtual bool saveState(ByteWriter &W) const;

  /// Restores the shadow state from bytes produced by saveState,
  /// replacing the current state entirely. \returns false on malformed
  /// input or when snapshots are unsupported (the default).
  virtual bool loadState(ByteReader &R);

  /// Applies one logged Write or ReplayOp record to the shadow state,
  /// incrementally updating \p ViewI with any entry adds/removes the update
  /// causes. ViewI is owned by the checker. Writes inside a commit block
  /// are delivered back-to-back at the enclosing commit (Sec. 5.2).
  virtual void applyUpdate(const Action &A, View &ViewI) = 0;

  /// Rebuilds the canonical view of the shadow state from scratch (used by
  /// audits and the full-recompute ablation).
  virtual void buildView(View &Out) const = 0;

  /// Evaluates data-structure invariants over the shadow state at a commit
  /// (Sec. 7.2.1 used two such invariants for the Boxwood Cache). On
  /// failure, fills \p Message and returns false. Default: no invariants.
  virtual bool checkInvariants(std::string &Message) const;
};

} // namespace vyrd

#endif // VYRD_REPLAYER_H
