//===- Adaptive.h - Self-tuning pipeline controller -------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed-loop controller for the verification pipeline: drives the pump's
/// batch target and (optionally) the active backpressure policy off the
/// live checker lag, AIMD / congestion-control style. The pipeline's
/// latency/throughput trade-off is a product property for an online
/// checker — a fixed batch either wastes sync cost under backlog or adds
/// detection latency when the checker keeps up, and a static admission
/// policy either blocks real traffic or sheds records it did not have to.
/// The controller resolves both at runtime:
///
///   * Batch sizing: while checker lag is above AdaptiveConfig's grow
///     watermark the per-loop batch target grows additively toward
///     MaxBatch (amortizing one wakeup + lock round trip over more
///     records); when lag falls below the shrink watermark it shrinks
///     multiplicatively toward MinBatch (restoring detection latency).
///
///   * Policy escalation: sustained lag above EscalateLagHi walks the
///     escalation ladder one rung at a time — BP_Block → BP_SpillToDisk
///     (file-backed logs) → BP_Shed — and sustained lag below
///     DeescalateLagLo walks it back down. Both directions require the
///     condition to hold for a configurable time (hysteresis), so a
///     single bursty batch cannot flap the policy. Every transition is
///     counted in telemetry, stamped into the Perfetto trace and listed
///     in the VerifierReport.
///
/// The controller itself is passive and deterministic: the pump calls
/// observe() with the current lag and a caller-supplied clock, so unit
/// tests drive it with fake nanoseconds and no sleeps. The decisions are
/// published through plain relaxed atomics (batchTarget, the policy
/// cell) that the log backends and the checker-pool admission read on
/// their own threads.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_ADAPTIVE_H
#define VYRD_ADAPTIVE_H

#include "vyrd/Backpressure.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vyrd {

class Telemetry;

/// Knobs for the self-tuning pipeline (VerifierConfig::Adaptive). The
/// defaults keep adaptation off; enabling it with default knobs
/// reproduces the historical fixed batch (256) as the starting point.
struct AdaptiveConfig {
  /// Master switch. Off = the pump uses the fixed historical batch of
  /// 256 records and the static BackpressureConfig::Policy, bit-identical
  /// to previous releases.
  bool Enabled = false;

  /// Batch-target bounds and steps. The target starts at InitialBatch,
  /// grows by GrowStep (additive) toward MaxBatch while lag is at or
  /// above GrowLagRecords, and shrinks by ShrinkFactor (multiplicative)
  /// toward MinBatch while lag is at or below ShrinkLagRecords.
  size_t MinBatch = 64;
  size_t InitialBatch = 256;
  size_t MaxBatch = 8192;
  size_t GrowStep = 256;
  double ShrinkFactor = 0.5;
  uint64_t GrowLagRecords = 1024;
  uint64_t ShrinkLagRecords = 128;
  /// Minimum time between batch-target adjustments. Lag is sampled every
  /// pump loop; this keeps the AIMD steps paced by time, not by how
  /// small the batches happen to be.
  uint64_t DecisionIntervalUs = 200;

  /// Escalation master switch (requires Backpressure.Enabled). When on,
  /// the active admission policy starts at BackpressureConfig::Policy
  /// and escalates/de-escalates along the ladder described above.
  bool EscalatePolicy = false;
  /// Lag watermarks (records) with hold times: lag must stay at or above
  /// EscalateLagHi for EscalateHoldUs before each escalation, and at or
  /// below DeescalateLagLo for DeescalateHoldUs before each
  /// de-escalation. Lag between the watermarks holds the current policy.
  uint64_t EscalateLagHi = 1 << 14;
  uint64_t DeescalateLagLo = 1 << 10;
  uint64_t EscalateHoldUs = 2000;
  uint64_t DeescalateHoldUs = 5000;
};

/// The controller instance owned by the Verifier. Construction fixes the
/// escalation ladder from the base policy and the log's capabilities;
/// observe() runs on the pump thread only, everything else is readable
/// from any thread.
class AdaptiveController {
public:
  /// One policy change, in the order it happened.
  struct Transition {
    uint64_t Seq;              ///< log frontier when the change fired
    uint64_t LagRecords;       ///< the lag that triggered it
    BackpressurePolicy From;
    BackpressurePolicy To;
    bool Escalation;           ///< false = de-escalation

    /// "block->spill" — the form the report and CI validation use.
    std::string str() const;
  };

  /// \p Base is the configured static policy (the ladder's bottom rung);
  /// \p CanSpill says whether the log backend can serve the
  /// BP_SpillToDisk rung (file-backed with a retained tail). Ladders:
  /// Block → Spill → Shed (CanSpill), Block → Shed (memory-only),
  /// Spill → Shed, and Shed alone (nothing to escalate to).
  AdaptiveController(const AdaptiveConfig &C, BackpressurePolicy Base,
                     bool CanSpill);

  /// Publishes transitions/targets to these gauges and counters (null =
  /// none). Call before the pipeline starts.
  void setTelemetry(Telemetry *T) { Telem = T; }

  /// Current batch target for the pump loop and the flusher's drain
  /// quantum. Relaxed: any thread.
  size_t batchTarget() const {
    return Target.load(std::memory_order_relaxed);
  }

  /// Currently active admission policy. Relaxed: any thread.
  BackpressurePolicy policy() const {
    return static_cast<BackpressurePolicy>(
        Policy.load(std::memory_order_relaxed));
  }

  /// The raw cells the log backends subscribe to (Log::setDynamicPolicy /
  /// Log::setBatchTargetHint). Stable for the controller's lifetime.
  const std::atomic<uint8_t> &policyCell() const { return Policy; }
  const std::atomic<size_t> &batchCell() const { return Target; }

  /// True when escalation is on and the ladder has anywhere to go — the
  /// condition under which the Verifier installs the policy cell and the
  /// shed classifier.
  bool dynamicPolicy() const { return Escalate && Ladder.size() > 1; }
  /// True when the ladder contains BP_Shed above the base rung.
  bool canReachShed() const;
  /// True when the ladder contains BP_SpillToDisk above the base rung.
  bool canReachSpill() const;

  /// One control step, called from the pump thread after each consumed
  /// batch. \p LagRecords is the append frontier minus the consumed
  /// frontier; \p Seq is the consumed frontier (for transition
  /// attribution); \p NowNanos is a monotonic clock (injectable — tests
  /// pass fake time). \returns true when this step changed the active
  /// policy (the caller emits the trace instant).
  bool observe(uint64_t LagRecords, uint64_t Seq, uint64_t NowNanos);

  /// The transitions so far, oldest first. Any thread.
  std::vector<Transition> transitions() const;
  /// The last transition (meaningful right after observe() returned
  /// true). Pump thread only.
  Transition lastTransition() const;

  uint64_t escalations() const {
    return Escalations.load(std::memory_order_relaxed);
  }
  uint64_t deescalations() const {
    return Deescalations.load(std::memory_order_relaxed);
  }
  /// Largest batch target ever published (pump thread writes, any reads).
  size_t batchTargetHwm() const {
    return TargetHwm.load(std::memory_order_relaxed);
  }

private:
  void publishPolicy(BackpressurePolicy P);

  AdaptiveConfig C;
  Telemetry *Telem = nullptr;
  bool Escalate = false;
  /// The escalation ladder, mildest first. Level indexes it.
  std::vector<BackpressurePolicy> Ladder;
  size_t Level = 0; // pump thread only

  std::atomic<size_t> Target;
  std::atomic<size_t> TargetHwm;
  std::atomic<uint8_t> Policy;
  std::atomic<uint64_t> Escalations{0};
  std::atomic<uint64_t> Deescalations{0};

  /// AIMD pacing and hysteresis state (pump thread only).
  uint64_t LastDecisionNs = 0;
  uint64_t AboveSinceNs = 0; ///< 0 = lag not currently >= EscalateLagHi
  uint64_t BelowSinceNs = 0; ///< 0 = lag not currently <= DeescalateLagLo

  mutable std::mutex TM;
  std::vector<Transition> Trans; // guarded by TM
};

} // namespace vyrd

#endif // VYRD_ADAPTIVE_H
