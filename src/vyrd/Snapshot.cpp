//===- Snapshot.cpp - Checker-state sidecars for segment chains -----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Snapshot.h"

#include "vyrd/Backpressure.h"
#include "vyrd/Serialize.h"

#include <cstdio>
#include <cstring>

using namespace vyrd;

std::string vyrd::snapshotSidecarPath(const std::string &Base,
                                      uint64_t Index) {
  return logSegmentPath(Base, Index) + ".snap";
}

void vyrd::encodeSnapshot(const SnapshotFile &S, ByteWriter &W) {
  W.bytes(SnapshotMagic, sizeof(SnapshotMagic));
  W.varint(SnapshotFormatVersion);
  W.varint(S.SegmentIndex);
  W.varint(S.Watermark);
  W.varint(S.Objects.size());
  for (const SnapshotObject &O : S.Objects) {
    W.varint(O.Id);
    W.str(O.Name);
    W.varint(O.Blob.size());
    W.bytes(O.Blob.data(), O.Blob.size());
  }
}

bool vyrd::decodeSnapshot(const uint8_t *Data, size_t Size,
                          SnapshotFile &Out) {
  ByteReader R(Data, Size);
  uint8_t Magic[4];
  if (!R.bytes(Magic, sizeof(Magic)) ||
      std::memcmp(Magic, SnapshotMagic, sizeof(SnapshotMagic)) != 0)
    return false;
  uint64_t Version = R.varint();
  if (!R.ok() || Version == 0 || Version > SnapshotFormatVersion)
    return false;
  Out.SegmentIndex = R.varint();
  Out.Watermark = R.varint();
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 20))
    return false;
  Out.Objects.clear();
  Out.Objects.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    SnapshotObject O;
    O.Id = static_cast<ObjectId>(R.varint());
    O.Name = R.str();
    uint64_t BlobSize = R.varint();
    if (!R.ok())
      return false;
    O.Blob.resize(BlobSize);
    if (BlobSize && !R.bytes(O.Blob.data(), BlobSize))
      return false;
    Out.Objects.push_back(std::move(O));
  }
  // Trailing garbage means the file is not one of ours.
  return R.ok() && R.atEnd();
}

bool vyrd::writeSnapshotFile(const std::string &Path,
                             const SnapshotFile &S) {
  ByteWriter W;
  encodeSnapshot(S, W);
  // Temp + rename: a crash between the two leaves either no sidecar or a
  // complete one, never a torn prefix a resuming checker could trust.
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return false;
  size_t Wrote = std::fwrite(W.buffer().data(), 1, W.size(), F);
  bool Ok = Wrote == W.size() && std::fflush(F) == 0;
  std::fclose(F);
  if (!Ok || std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool vyrd::readSnapshotFile(const std::string &Path, SnapshotFile &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::vector<uint8_t> Buf;
  uint8_t Chunk[4096];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Buf.insert(Buf.end(), Chunk, Chunk + N);
  std::fclose(F);
  return decodeSnapshot(Buf.data(), Buf.size(), Out);
}

namespace {

/// Matches LogFileReader's probe bound: reclamation can delete at most this
/// many leading segments before the reader gives up finding the chain head.
constexpr uint64_t MaxChainProbe = 1 << 16;

/// Reads the segment header of the file at \p Path. \returns false when
/// the file is missing or the header is not a chain-segment header.
bool readSegmentInfo(const std::string &Path, LogSegmentInfo &Info) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  uint8_t Buf[64];
  size_t N = std::fread(Buf, 1, sizeof(Buf), F);
  std::fclose(F);
  ByteReader R(Buf, N);
  return readLogHeader(R, &Info) == LogSegmentVersion;
}

} // namespace

bool vyrd::enumerateChain(const std::string &Base,
                          std::vector<ChainSegment> &Out) {
  Out.clear();
  // A file at Base itself is a plain single-file log: one "segment".
  if (std::FILE *F = std::fopen(Base.c_str(), "rb")) {
    std::fclose(F);
    ChainSegment S;
    S.Path = Base;
    Out.push_back(std::move(S));
    return true;
  }
  uint64_t First = 0;
  for (uint64_t I = 1; I <= MaxChainProbe; ++I) {
    std::FILE *F = std::fopen(logSegmentPath(Base, I).c_str(), "rb");
    if (F) {
      std::fclose(F);
      First = I;
      break;
    }
  }
  if (!First)
    return false;
  for (uint64_t I = First;; ++I) {
    std::string P = logSegmentPath(Base, I);
    LogSegmentInfo Info;
    if (!readSegmentInfo(P, Info))
      break;
    ChainSegment S;
    S.Path = std::move(P);
    S.Index = I;
    S.FirstSeq = Info.FirstSeq;
    S.HasSnapshot = readSnapshotFile(snapshotSidecarPath(Base, I), S.Snap);
    Out.push_back(std::move(S));
  }
  return !Out.empty();
}

bool vyrd::findResumePoint(const std::string &Base, ResumePoint &Out) {
  std::vector<ChainSegment> Chain;
  if (!enumerateChain(Base, Chain))
    return false;
  const ChainSegment &Head = Chain.front();
  Out.SegmentPath = Head.Path;
  Out.SegmentIndex = Head.Index;
  Out.FirstSeq = Head.FirstSeq;
  Out.HasSnapshot = Head.HasSnapshot;
  Out.Snap = Head.Snap;
  return true;
}
