//===- Verifier.cpp - Multi-object verification engine --------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Since the producer/checker split the Verifier is a thin composition:
// it owns the capture pipeline (log backend, telemetry, tracer, adaptive
// controller, monitor) and delegates all checking to a CheckerService
// (CheckerService.cpp). The pump here either feeds the service directly
// (the historical in-process pipeline, bit-for-bit) or ships closed
// segments to a remote service through a SegmentTransport
// (docs/SHIPPING.md).
//
//===----------------------------------------------------------------------===//

#include "vyrd/Verifier.h"

#include "vyrd/Snapshot.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace vyrd;

//===----------------------------------------------------------------------===//
// VerifierConfig
//===----------------------------------------------------------------------===//

std::string VerifierConfig::validate() const {
  if (Backend == LogBackend::LB_File && LogFilePath.empty())
    return "Backend = LB_File requires LogFilePath";
  // LB_Auto is included: its resolution rule may route it to the
  // buffered backend, and a zero shard capacity must not depend on which
  // way the auto choice falls.
  if ((Backend == LogBackend::LB_Buffered ||
       Backend == LogBackend::LB_Auto) &&
      ShardCapacity == 0)
    return "ShardCapacity must be >= 1 (required by LB_Buffered, which "
           "LB_Auto may resolve to)";
  if (Backpressure.Enabled) {
    if (Backpressure.MaxPendingRecords == 0)
      return "Backpressure.MaxPendingRecords must be >= 1 when "
             "backpressure is enabled (a zero bound admits nothing)";
    if (Backpressure.Policy == BackpressurePolicy::BP_SpillToDisk &&
        (LogFilePath.empty() || Backend == LogBackend::LB_Memory))
      return "Backpressure.Policy = BP_SpillToDisk requires a file-backed "
             "log (set LogFilePath and a non-memory backend)";
    if (!Online && Backpressure.Policy == BackpressurePolicy::BP_Block)
      return "Backpressure.Policy = BP_Block requires Online = true "
             "(offline runs have no concurrent reader to make room; a "
             "blocked producer would deadlock)";
    if (!Online && Backpressure.Policy == BackpressurePolicy::BP_Shed)
      return "Backpressure.Policy = BP_Shed requires Online = true "
             "(offline runs buffer the whole log anyway, so shedding "
             "would lose coverage for no memory benefit)";
  }
  if (Adaptive.Enabled) {
    if (!Online)
      return "Adaptive.Enabled requires Online = true (the controller "
             "runs on the consumption thread; an offline pass has no "
             "live lag to react to)";
    if (Adaptive.MinBatch == 0)
      return "Adaptive.MinBatch must be >= 1";
    if (Adaptive.MaxBatch < Adaptive.MinBatch)
      return "Adaptive.MaxBatch must be >= Adaptive.MinBatch";
    if (Adaptive.InitialBatch < Adaptive.MinBatch ||
        Adaptive.InitialBatch > Adaptive.MaxBatch)
      return "Adaptive.InitialBatch must lie in [MinBatch, MaxBatch]";
    if (Adaptive.GrowStep == 0)
      return "Adaptive.GrowStep must be >= 1 (a zero step never grows)";
    if (!(Adaptive.ShrinkFactor > 0.0) || Adaptive.ShrinkFactor > 1.0)
      return "Adaptive.ShrinkFactor must lie in (0, 1]";
    if (Adaptive.EscalatePolicy) {
      if (!Backpressure.Enabled)
        return "Adaptive.EscalatePolicy requires Backpressure.Enabled "
               "(there is no admission policy to escalate without a "
               "bounded pipeline)";
      if (Adaptive.DeescalateLagLo >= Adaptive.EscalateLagHi)
        return "Adaptive.DeescalateLagLo must be < Adaptive.EscalateLagHi "
               "(the watermarks need a dead band or the policy flaps)";
    }
  }
  if (Snapshots) {
    if (!Backpressure.SegmentBytes)
      return "Snapshots requires Backpressure.SegmentBytes > 0 (snapshot "
             "sidecars ride the segment chain; an unsegmented log has no "
             "cut points)";
    if (LogFilePath.empty() || Backend == LogBackend::LB_Memory)
      return "Snapshots requires a file-backed log (set LogFilePath and a "
             "non-memory backend; sidecars live next to the segments)";
  }
  if (CheckerThreads == 0)
    return "CheckerThreads must be >= 1";
  if (CheckerThreads > 1 && !Online)
    return "CheckerThreads > 1 requires Online = true (the offline pass "
           "is a synchronous replay on the caller's thread)";
  if (Checker.MaxViolations == 0)
    return "Checker.MaxViolations must be >= 1 (0 would suppress every "
           "report)";
  if (Telemetry.WatchdogQuietMs && !Telemetry.Enabled)
    return "Telemetry.WatchdogQuietMs requires Telemetry.Enabled";
  if (Telemetry.SampleIntervalUs && !Telemetry.Enabled)
    return "Telemetry.SampleIntervalUs requires Telemetry.Enabled";
  if (!Monitor.SocketPath.empty()) {
    if (!Telemetry.Enabled)
      return "Monitor.SocketPath requires Telemetry.Enabled (the monitor "
             "serves Telemetry::snapshot(); without a hub there is "
             "nothing to report)";
    if (Monitor.MaxClients == 0)
      return "Monitor.MaxClients must be >= 1 (a zero bound admits no "
             "client)";
    if (Monitor.SocketPath.size() > maxUnixSocketPathLen())
      return "Monitor.SocketPath exceeds the sockaddr_un limit of " +
             std::to_string(maxUnixSocketPathLen()) +
             " bytes (the bind would silently truncate it)";
  }
  if (Shipping.enabled()) {
    ShipEndpoint Ep;
    std::string Err;
    if (!parseShipEndpoint(Shipping.Endpoint, Ep, Err))
      return "Shipping.Endpoint: " + Err;
    if (!Online)
      return "Shipping requires Online = true (the ship pump is the "
             "consumption thread; an offline run has nothing to stream)";
    if (LogFilePath.empty() || Backend == LogBackend::LB_Memory)
      return "Shipping requires a file-backed log (set LogFilePath and a "
             "non-memory backend; closed segment files are the shipping "
             "unit)";
    if (!Backpressure.SegmentBytes)
      return "Shipping requires Backpressure.SegmentBytes > 0 (closed "
             "segments are the shipping unit; an unsegmented log never "
             "closes one)";
    if (Shipping.Program.empty())
      return "Shipping.Program must name the pipeline the remote service "
             "builds (the records alone do not identify the specs)";
    if (Snapshots)
      return "Shipping excludes Snapshots (no checkers run in this "
             "process, so there is no local state to serialize at cuts)";
    if (Adaptive.Enabled)
      return "Shipping excludes Adaptive (the controller reacts to local "
             "checker lag, which a shipped run does not have)";
    if (Shipping.MaxRetries == 0)
      return "Shipping.MaxRetries must be >= 1";
  }
  return "";
}

//===----------------------------------------------------------------------===//
// VerifierReport
//===----------------------------------------------------------------------===//

std::string VerifierReport::str() const {
  std::string Out;
  Out += "log: " + std::to_string(LogRecords) + " records";
  if (LogBytes)
    Out += ", " + std::to_string(LogBytes) + " bytes";
  Out += "\nchecked: " + std::to_string(Stats.MethodsChecked) + " methods (" +
         std::to_string(Stats.CommitsProcessed) + " commits, " +
         std::to_string(Stats.ObserversChecked) + " observers)\n";
  if (Objects.size() > 1) {
    Out += "objects:\n";
    for (const ObjectReport &O : Objects) {
      std::string Label =
          O.Name.empty() ? "object" + std::to_string(O.Id) : O.Name;
      Out += "  " + Label + ": " + std::to_string(O.Records) + " records, " +
             std::to_string(O.Stats.MethodsChecked) + " methods, " +
             std::to_string(O.Violations.size()) + " violation(s)\n";
    }
  }
  if (Backpressure.any()) {
    Out += "backpressure:";
    if (Backpressure.BlockedAppends)
      Out += " blocked_appends=" + std::to_string(Backpressure.BlockedAppends) +
             " blocked_ms=" +
             std::to_string(Backpressure.BlockedNanos / 1000000);
    if (Backpressure.ShedRecords)
      Out += " shed_records=" + std::to_string(Backpressure.ShedRecords);
    if (Backpressure.SpilledRecords)
      Out += " spilled_records=" + std::to_string(Backpressure.SpilledRecords);
    if (Backpressure.PendingRecordsHwm)
      Out += " pending_hwm=" + std::to_string(Backpressure.PendingRecordsHwm);
    if (Backpressure.TailBytesHwm)
      Out += " tail_bytes_hwm=" + std::to_string(Backpressure.TailBytesHwm);
    if (Backpressure.SegmentsCreated)
      Out += " segments=" + std::to_string(Backpressure.SegmentsCreated) +
             "/reclaimed=" + std::to_string(Backpressure.SegmentsReclaimed) +
             "/live_hwm=" + std::to_string(Backpressure.SegmentsLiveHwm);
    Out += "\n";
  }
  if (Adaptive.Enabled) {
    Out += "adaptive: batch_target=" +
           std::to_string(Adaptive.BatchTargetFinal) +
           " batch_target_hwm=" + std::to_string(Adaptive.BatchTargetHwm);
    if (!Adaptive.FinalPolicy.empty())
      Out += " policy=" + Adaptive.FinalPolicy;
    if (Adaptive.Escalations || Adaptive.Deescalations)
      Out += " escalations=" + std::to_string(Adaptive.Escalations) +
             " deescalations=" + std::to_string(Adaptive.Deescalations);
    Out += "\n";
    for (const AdaptiveController::Transition &T : Adaptive.Transitions)
      Out += "  transition: " + T.str() + " at seq " +
             std::to_string(T.Seq) + " (lag " +
             std::to_string(T.LagRecords) + ")\n";
  }
  if (Shipping.Enabled) {
    Out += "shipping: endpoint=" + Shipping.Endpoint + " stream=" +
           Shipping.StreamName +
           " segments=" + std::to_string(Shipping.SegmentsShipped) +
           " bytes=" + std::to_string(Shipping.BytesShipped) +
           " acks=" + std::to_string(Shipping.Acks) +
           " acked_watermark=" + std::to_string(Shipping.AckedWatermark) +
           " final_ack=" + (Shipping.FinalAckOk ? "ok" : "missing");
    if (Shipping.Retries)
      Out += " retries=" + std::to_string(Shipping.Retries);
    if (Shipping.Degraded)
      Out += " degraded=" + Shipping.DegradeMode;
    if (Shipping.FallbackRecords)
      Out += " fallback_records=" + std::to_string(Shipping.FallbackRecords);
    Out += "\n";
  }
  for (const std::string &N : Notes)
    Out += "note: " + N + "\n";
  for (const std::string &F : ForensicFiles)
    Out += "forensics: " + F + "\n";
  if (Violations.empty())
    Out += "no refinement violations\n";
  else {
    Out += std::to_string(Violations.size()) + " violation(s):\n";
    for (const Violation &V : Violations)
      Out += "  " + V.str() + "\n";
  }
  if (TelemetryEnabled)
    Out += Telemetry.str();
  if (TraceEvents)
    Out += "trace: " + std::to_string(TraceEvents) + " events\n";
  return Out;
}

/// Renders one CheckerStats as a JSON object body (shared by the report
/// totals and the per-object breakdown).
static std::string statsJson(const CheckerStats &S) {
  std::string Out = "{";
  Out += "\"actions_fed\":" + std::to_string(S.ActionsFed);
  Out += ",\"methods_checked\":" + std::to_string(S.MethodsChecked);
  Out += ",\"commits_processed\":" + std::to_string(S.CommitsProcessed);
  Out += ",\"observers_checked\":" + std::to_string(S.ObserversChecked);
  Out += ",\"view_comparisons\":" + std::to_string(S.ViewComparisons);
  Out += ",\"audits\":" + std::to_string(S.Audits);
  Out += ",\"max_queue_depth\":" + std::to_string(S.MaxQueueDepth);
  Out += ",\"replay_ns\":" + std::to_string(S.ReplayNanos);
  Out += ",\"spec_ns\":" + std::to_string(S.SpecNanos);
  Out += ",\"view_compare_ns\":" + std::to_string(S.ViewCompareNanos);
  Out += ",\"obs_memo_hits\":" + std::to_string(S.ObsMemoHits);
  Out += ",\"obs_memo_misses\":" + std::to_string(S.ObsMemoMisses);
  Out += ",\"spec_version_bumps\":" + std::to_string(S.SpecVersionBumps);
  Out += "}";
  return Out;
}

/// Renders one BackpressureStats as a JSON object body.
static std::string backpressureJson(const BackpressureStats &S) {
  std::string Out = "{";
  Out += "\"blocked_appends\":" + std::to_string(S.BlockedAppends);
  Out += ",\"blocked_ns\":" + std::to_string(S.BlockedNanos);
  Out += ",\"shed_records\":" + std::to_string(S.ShedRecords);
  Out += ",\"spilled_records\":" + std::to_string(S.SpilledRecords);
  Out += ",\"pending_records_hwm\":" + std::to_string(S.PendingRecordsHwm);
  Out += ",\"tail_bytes_hwm\":" + std::to_string(S.TailBytesHwm);
  Out += ",\"segments_created\":" + std::to_string(S.SegmentsCreated);
  Out += ",\"segments_reclaimed\":" + std::to_string(S.SegmentsReclaimed);
  Out += ",\"segments_live_hwm\":" + std::to_string(S.SegmentsLiveHwm);
  Out += "}";
  return Out;
}

/// Escapes a note string for a JSON string literal (notes are generated
/// text; only quotes/backslashes/control bytes need care).
static std::string escapeNote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      Out += ' ';
      continue;
    }
    Out += C;
  }
  return Out;
}

std::string VerifierReport::json() const {
  std::string Out = "{";
  Out += "\"ok\":" + std::string(ok() ? "true" : "false");
  Out += ",\"violations\":" + std::to_string(Violations.size());
  Out += ",\"log_records\":" + std::to_string(LogRecords);
  Out += ",\"log_bytes\":" + std::to_string(LogBytes);
  Out += ",\"stats\":" + statsJson(Stats);
  Out += ",\"objects\":[";
  for (size_t I = 0; I < Objects.size(); ++I) {
    const ObjectReport &O = Objects[I];
    if (I)
      Out += ",";
    Out += "{\"id\":" + std::to_string(O.Id);
    Out += ",\"name\":\"" + O.Name + "\"";
    Out += ",\"records\":" + std::to_string(O.Records);
    Out += ",\"violations\":" + std::to_string(O.Violations.size());
    Out += ",\"stats\":" + statsJson(O.Stats);
    Out += "}";
  }
  Out += "]";
  if (Backpressure.any())
    Out += ",\"backpressure\":" + backpressureJson(Backpressure);
  if (Adaptive.Enabled) {
    Out += ",\"adaptive\":{";
    Out += "\"batch_target_final\":" +
           std::to_string(Adaptive.BatchTargetFinal);
    Out += ",\"batch_target_hwm\":" +
           std::to_string(Adaptive.BatchTargetHwm);
    Out += ",\"final_policy\":\"" + Adaptive.FinalPolicy + "\"";
    Out += ",\"escalations\":" + std::to_string(Adaptive.Escalations);
    Out += ",\"deescalations\":" + std::to_string(Adaptive.Deescalations);
    Out += ",\"transitions\":[";
    for (size_t I = 0; I < Adaptive.Transitions.size(); ++I) {
      const AdaptiveController::Transition &T = Adaptive.Transitions[I];
      if (I)
        Out += ",";
      Out += "{\"from\":\"" +
             std::string(backpressurePolicyName(T.From)) + "\"";
      Out += ",\"to\":\"" + std::string(backpressurePolicyName(T.To)) +
             "\"";
      Out += ",\"seq\":" + std::to_string(T.Seq);
      Out += ",\"lag\":" + std::to_string(T.LagRecords);
      Out += ",\"escalation\":" +
             std::string(T.Escalation ? "true" : "false") + "}";
    }
    Out += "]}";
  }
  if (Shipping.Enabled) {
    Out += ",\"shipping\":{";
    Out += "\"endpoint\":\"" + jsonEscape(Shipping.Endpoint) + "\"";
    Out += ",\"stream\":\"" + jsonEscape(Shipping.StreamName) + "\"";
    Out += ",\"segments_shipped\":" + std::to_string(Shipping.SegmentsShipped);
    Out += ",\"bytes_shipped\":" + std::to_string(Shipping.BytesShipped);
    Out += ",\"acks\":" + std::to_string(Shipping.Acks);
    Out += ",\"retries\":" + std::to_string(Shipping.Retries);
    Out += ",\"acked_watermark\":" + std::to_string(Shipping.AckedWatermark);
    Out += ",\"final_ack_ok\":" +
           std::string(Shipping.FinalAckOk ? "true" : "false");
    Out += ",\"degraded\":" +
           std::string(Shipping.Degraded ? "true" : "false");
    if (Shipping.Degraded)
      Out += ",\"degrade_mode\":\"" + Shipping.DegradeMode + "\"";
    if (Shipping.FallbackRecords)
      Out += ",\"fallback_records\":" +
             std::to_string(Shipping.FallbackRecords);
    Out += "}";
  }
  if (!Notes.empty()) {
    Out += ",\"notes\":[";
    for (size_t I = 0; I < Notes.size(); ++I) {
      if (I)
        Out += ",";
      Out += "\"" + escapeNote(Notes[I]) + "\"";
    }
    Out += "]";
  }
  if (TelemetryEnabled)
    Out += ",\"telemetry\":" + Telemetry.json();
  if (TraceEvents)
    Out += ",\"trace_events\":" + std::to_string(TraceEvents);
  if (!ForensicFiles.empty()) {
    Out += ",\"forensic_files\":[";
    for (size_t I = 0; I < ForensicFiles.size(); ++I) {
      if (I)
        Out += ",";
      Out += "\"" + jsonEscape(ForensicFiles[I]) + "\"";
    }
    Out += "]";
  }
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

/// The monitor's window into a live Verifier: telemetry through the
/// lock-free snapshot path, violations/forensics through the checker
/// service's published live state. Runs on the monitor thread;
/// everything it touches outlives the MonitorServer (member declaration
/// order).
class Verifier::MonitorAdapter : public MonitorSource {
public:
  explicit MonitorAdapter(Verifier &V) : V(V) {}
  TelemetrySnapshot telemetrySnapshot() override {
    return V.Telem ? V.Telem->snapshot() : TelemetrySnapshot();
  }
  std::vector<Violation> liveViolations() override {
    return V.Svc->liveViolations();
  }
  std::vector<std::string> forensicFiles() override {
    return V.Svc->forensicFiles();
  }

private:
  Verifier &V;
};

Verifier::Verifier(VerifierConfig C) : Config(std::move(C)) {
  std::string Err = Config.validate();
  if (!Err.empty()) {
    std::fprintf(stderr, "vyrd: invalid VerifierConfig: %s\n", Err.c_str());
    std::abort();
  }
  LogBackend B = Config.Backend;
  if (B == LogBackend::LB_Auto)
    B = Config.LogFilePath.empty() ? LogBackend::LB_Memory
                                   : LogBackend::LB_File;
  switch (B) {
  case LogBackend::LB_Auto: // resolved above
  case LogBackend::LB_Memory:
    TheLog = std::make_unique<MemoryLog>(Config.Backpressure);
    break;
  case LogBackend::LB_File: {
    bool Valid = false;
    auto FL = std::make_unique<FileLog>(Config.LogFilePath, Valid,
                                        Config.Backpressure);
    assert(Valid && "cannot open log file");
    (void)Valid;
    TheLog = std::move(FL);
    break;
  }
  case LogBackend::LB_Buffered: {
    BufferedLog::Options BO;
    BO.ShardCapacity = Config.ShardCapacity;
    BO.FilePath = Config.LogFilePath;
    BO.Backpressure = Config.Backpressure;
    auto BL = std::make_unique<BufferedLog>(std::move(BO));
    assert(BL->valid() && "cannot open log file");
    TheLog = std::move(BL);
    break;
  }
  }
  if (Config.Telemetry.Enabled) {
    Telemetry::Options TO;
    TO.SampleIntervalUs = Config.Telemetry.SampleIntervalUs;
    TO.WatchdogQuietMs = Config.Telemetry.WatchdogQuietMs;
    if (TO.WatchdogQuietMs && !TO.SampleIntervalUs)
      TO.SampleIntervalUs = 1000; // the watchdog needs sample points
    TO.ProducerProbe = [L = TheLog.get()] { return L->appendCount(); };
    Telem = std::make_unique<Telemetry>(std::move(TO));
    TheLog->setTelemetry(Telem.get());
  }
  if (!Config.Telemetry.TraceFilePath.empty())
    Tracer = std::make_unique<TraceRecorder>();
  if (Config.Adaptive.Enabled) {
    // The spill rung needs somewhere to spill: a file-backed backend
    // (both keep the delivery-frontier bookkeeping on from record 0 once
    // the dynamic-policy cell is installed, so a mid-run escalation into
    // spill starts from a correct frontier).
    bool CanSpill = B != LogBackend::LB_Memory && !Config.LogFilePath.empty();
    Ctl = std::make_unique<AdaptiveController>(
        Config.Adaptive, Config.Backpressure.Policy, CanSpill);
    Ctl->setTelemetry(Telem.get());
    TheLog->setBatchTargetHint(&Ctl->batchCell());
    if (Ctl->dynamicPolicy())
      TheLog->setDynamicPolicy(&Ctl->policyCell());
    if (Telem) {
      Telem->gaugeSet(Gauge::G_PumpBatchTarget, Ctl->batchTarget());
      if (Ctl->dynamicPolicy())
        Telem->gaugeSet(Gauge::G_PolicyActive,
                        static_cast<uint64_t>(Ctl->policy()));
    }
  }
  {
    CheckerServiceOptions SO;
    SO.Backpressure = Config.Backpressure;
    SO.ForensicPrefix = Config.ForensicPrefix;
    SO.SnapshotBase = Config.LogFilePath;
    Svc = std::make_unique<CheckerService>(std::move(SO));
    Svc->setTelemetry(Telem.get());
    Svc->setTracer(Tracer.get());
    Svc->setController(Ctl.get());
  }
  if (!Config.Monitor.SocketPath.empty()) {
    MonSource = std::make_unique<MonitorAdapter>(*this);
    Mon = std::make_unique<MonitorServer>(Config.Monitor, *MonSource);
    if (!Mon->valid())
      std::fprintf(stderr, "vyrd: monitor disabled: %s\n",
                   Mon->error().c_str());
  }
}

Verifier::Verifier(std::unique_ptr<Spec> S, std::unique_ptr<Replayer> R,
                   VerifierConfig C)
    : Verifier(std::move(C)) {
  assert(S && "Verifier requires a specification");
  // The anonymous single object of the historical interface: reports and
  // violation strings stay exactly as they were before the multi-object
  // engine.
  (void)registerObject("", std::move(S), std::move(R), Config.Checker);
}

Verifier::~Verifier() {
  if (Started && !Done)
    (void)finish();
}

Hooks Verifier::registerObject(std::string ObjName, std::unique_ptr<Spec> S,
                               std::unique_ptr<Replayer> R,
                               CheckerConfig CC) {
  assert(!Started && "registerObject after start");
  ObjectId Id = Svc->addObject(std::move(ObjName), std::move(S),
                               std::move(R), CC);
  return hooks(Id);
}

Hooks Verifier::registerObject(std::string ObjName, std::unique_ptr<Spec> S,
                               std::unique_ptr<Replayer> R) {
  return registerObject(std::move(ObjName), std::move(S), std::move(R),
                        Config.Checker);
}

Hooks Verifier::hooks(ObjectId Id) const {
  assert(Id < Svc->objectCount() && "hooks for unregistered object");
  LogLevel Level = Svc->objectMode(Id) == CheckMode::CM_ViewRefinement
                       ? LogLevel::LL_View
                       : LogLevel::LL_IO;
  return Hooks(TheLog.get(), Level, Telem.get(), Id);
}

Hooks Verifier::hooks() const {
  assert(Svc->objectCount() && "no object registered");
  return hooks(0);
}

void Verifier::pump() {
  // Batch consumption amortizes one log wakeup + lock round trip over up
  // to PumpBatch records; each record is then routed to its object's
  // pipeline (the checkers themselves stay record-at-a-time). With an
  // adaptive controller the batch target is re-read every loop — it
  // grows under lag and shrinks when the checkers keep up.
  constexpr size_t FixedPumpBatch = 256;
  AdaptiveController *AC = Ctl.get();
  size_t PumpBatch = AC ? AC->batchTarget() : FixedPumpBatch;
  std::vector<Action> Batch;
  Batch.reserve(PumpBatch);
  TelemetryCell *TC =
      telemetryCompiledIn() && Telem ? &Telem->cell() : nullptr;
  const bool SnapshotsOn = Config.Snapshots && Config.Backpressure.SegmentBytes;
  std::vector<SegmentCut> Cuts; ///< pending cut points, oldest first
  uint64_t RoutedUpto = 0;      ///< exclusive frontier of routed records
  while (TheLog->nextBatch(Batch, PumpBatch)) {
    uint64_t FirstSeq = Batch.front().Seq;
    uint64_t LastSeq = Batch.back().Seq;
    size_t NumActions = Batch.size();
    if (TC)
      TC->count(Counter::C_CheckerBatches);
    size_t Begin = 0;
    if (SnapshotsOn) {
      TheLog->takeSegmentCuts(Cuts);
      // Split the batch at each cut that falls inside it: route the
      // records before the cut, serialize the checkers aligned exactly
      // on it, then resume routing. A cut at LastSeq + 1 sits at the
      // batch boundary and is taken after the whole batch is routed.
      while (!Cuts.empty() && Cuts.front().FirstSeq <= LastSeq + 1) {
        SegmentCut Cut = Cuts.front();
        Cuts.erase(Cuts.begin());
        if (Cut.FirstSeq < RoutedUpto) {
          // Late cut: the buffered backend's flusher rotates
          // asynchronously, so the reader can consume past a cut before
          // the pump learns of it. Nothing to align on — skip.
          if (Telem)
            Telem->count(Counter::C_SnapshotSkips);
          continue;
        }
        // lower_bound, not index arithmetic: BP_Shed leaves Seq gaps.
        size_t Split = static_cast<size_t>(
            std::lower_bound(Batch.begin() + Begin, Batch.end(),
                             Cut.FirstSeq,
                             [](const Action &A, uint64_t S) {
                               return A.Seq < S;
                             }) -
            Batch.begin());
        Svc->routeRange(Batch, Begin, Split, TC);
        Begin = Split;
        RoutedUpto = Cut.FirstSeq;
        Svc->takeSnapshot(Cut.Index, Cut.FirstSeq);
      }
    }
    Svc->routeRange(Batch, Begin, Batch.size(), TC);
    RoutedUpto = LastSeq + 1;
    if (Telem)
      Telem->noteConsumed(LastSeq + 1);
    if (Tracer)
      Tracer->noteCheckSpan(FirstSeq, LastSeq, NumActions);
    // Checked-prefix reclamation: everything fed inline is checked
    // through LastSeq; with a pool, the watermark stops at the oldest
    // record still pending on any object.
    if (Config.Backpressure.SegmentBytes)
      TheLog->reclaimCheckedPrefix(Svc->checkedWatermark(LastSeq + 1));
    if (AC) {
      // One control step per consumed batch: lag is the append frontier
      // minus the consumed frontier (saturating — shed gaps cannot push
      // the consumed frontier past the ticket counter, but be safe).
      uint64_t Appended = TheLog->appendCount();
      uint64_t Lag = Appended > LastSeq + 1 ? Appended - (LastSeq + 1) : 0;
      if (AC->observe(Lag, LastSeq, telemetryNowNanos())) {
        AdaptiveController::Transition T = AC->lastTransition();
        if (Tracer)
          Tracer->noteVerifierInstant(
              LastSeq, std::string("policy ") +
                           (T.Escalation ? "escalated" : "de-escalated") +
                           ": " + T.str() + " (lag " +
                           std::to_string(T.LagRecords) + ")");
        // Wake anyone parked under the old policy's wait predicate so
        // the new rung takes effect without waiting for organic churn.
        TheLog->onPolicyChange();
      }
      PumpBatch = AC->batchTarget();
      if (Tracer && Telem) {
        Tracer->noteGauge(LastSeq, "pump_batch_target",
                          Telem->gauge(Gauge::G_PumpBatchTarget));
        if (AC->dynamicPolicy())
          Tracer->noteGauge(LastSeq, "policy_active",
                            Telem->gauge(Gauge::G_PolicyActive));
      }
    }
    if (Tracer && Telem && Config.Backpressure.Enabled) {
      Tracer->noteGauge(LastSeq, "pending_records",
                        Telem->gauge(Gauge::G_PendingRecords));
      Tracer->noteGauge(LastSeq, "tail_bytes",
                        Telem->gauge(Gauge::G_TailBytes));
      if (Config.Backpressure.SegmentBytes)
        Tracer->noteGauge(LastSeq, "segments_live",
                          Telem->gauge(Gauge::G_SegmentsLive));
    }
  }
  Svc->finishChecking();
  // Everything is checked now; release any remaining reclaimable
  // segments (the active one is always kept).
  if (Config.Backpressure.SegmentBytes)
    TheLog->reclaimCheckedPrefix(TheLog->appendCount());
}

void Verifier::shipPump() {
  // The shipping consumption loop never touches a checker: it drains the
  // log (so the bounded tail keeps moving and BP_Block producers wake),
  // turns segment rotations into shipSegment calls, and trims the chain
  // as the remote checker's watermark advances. Memory stays bounded on
  // both sides: here by SegmentBytes x live segments, there by the
  // receiver's feed.
  constexpr size_t PumpBatch = 256;
  std::vector<Action> Batch;
  Batch.reserve(PumpBatch);
  std::vector<SegmentCut> Cuts;
  while (TheLog->nextBatch(Batch, PumpBatch)) {
    uint64_t LastSeq = Batch.back().Seq;
    TheLog->takeSegmentCuts(Cuts);
    for (const SegmentCut &Cut : Cuts)
      Shipper->noteCut(Cut.Index);
    Cuts.clear();
    if (Telem)
      Telem->noteConsumed(LastSeq + 1);
    // Reclamation is gated on the REMOTE ack watermark, never the local
    // consumption frontier: a segment leaves this disk only after the
    // checker fleet confirmed it fed every record in it.
    TheLog->reclaimCheckedPrefix(Transport->ackedWatermark());
  }
  // Rotations reported after the reader drained (close() flushes the
  // final writes) still need shipping before finish() ships the last
  // open segment.
  TheLog->takeSegmentCuts(Cuts);
  for (const SegmentCut &Cut : Cuts)
    Shipper->noteCut(Cut.Index);
}

void Verifier::start() {
  assert(!Started && "start called twice");
  assert(Svc->objectCount() &&
         "start with no registered object (registerObject first)");
  Started = true;
  if (!Config.Online)
    return;
  // BP_Shed needs to know which calls start observer-only executions;
  // the registered specs are the authority. Installed before any
  // producer appends (the classifier runs under the log's admission
  // lock, concurrently with checker-side isObserver calls — specs
  // answer it as a pure const query). A dynamic policy that can
  // escalate into BP_Shed needs the classifier armed up front too.
  const bool NeedClassifier =
      Config.Backpressure.Enabled &&
      (Config.Backpressure.Policy == BackpressurePolicy::BP_Shed ||
       (Ctl && Ctl->canReachShed()));
  if (Config.Shipping.enabled()) {
    Transport =
        std::make_unique<SocketTransport>(Config.Shipping, Telem.get());
    Shipper = std::make_unique<SegmentShipper>(*Transport,
                                               Config.LogFilePath,
                                               Telem.get());
    if (NeedClassifier)
      TheLog->setShedClassifier(
          [this](const Action &A) { return Svc->isObserverCall(A); });
    VerifyThread = std::thread([this] { shipPump(); });
    return;
  }
  if (Config.CheckerThreads > 1)
    Svc->startPool(Config.CheckerThreads);
  if (NeedClassifier) {
    auto Classifier = [this](const Action &A) {
      return Svc->isObserverCall(A);
    };
    TheLog->setShedClassifier(Classifier);
    Svc->setShedClassifier(Classifier);
  }
  VerifyThread = std::thread([this] { pump(); });
}

bool Verifier::degradeShipping(VerifierReport &R,
                               uint64_t FinalSeqExclusive) {
  R.Shipping.Degraded = true;
  uint64_t Acked = Transport->ackedWatermark();
  uint64_t Unverified =
      FinalSeqExclusive > Acked ? FinalSeqExclusive - Acked : 0;
  if (Config.Shipping.Degrade == ShipDegrade::SD_LocalCheck) {
    R.Shipping.DegradeMode = "local-check";
    // A sound local verdict needs the chain from record 0 — which is
    // exactly what survives when the fleet never acked (acks are the
    // only thing that reclaims). A partially acked-and-reclaimed chain
    // cannot be re-checked (shipped runs write no sidecars), so its
    // unacked suffix is accounted like SD_Shed.
    std::vector<ChainSegment> Chain;
    bool CanLocal = enumerateChain(Config.LogFilePath, Chain) &&
                    !Chain.empty() &&
                    (Chain.front().Index <= 1 || Chain.front().HasSnapshot);
    if (CanLocal) {
      InProcessTransport Local(*Svc);
      std::string Err;
      if (shipChain(Config.LogFilePath, Local, FinalSeqExclusive, 0, Err)) {
        R.Notes.push_back(
            "shipping degraded: checker fleet at " +
            Config.Shipping.Endpoint +
            " unreachable; surviving chain re-checked locally "
            "(SD_LocalCheck), the verdict below is sound");
        return true;
      }
      R.Notes.push_back("shipping degraded: local re-check failed: " + Err);
    }
    R.Notes.push_back(
        std::string(violationKindName(ViolationKind::VK_Degraded)) + ": " +
        std::to_string(Unverified) +
        " record(s) unverified (checker fleet unreachable and the "
        "partially reclaimed chain cannot be re-checked locally)");
    return false;
  }
  R.Shipping.DegradeMode = "shed";
  R.Notes.push_back(
      std::string(violationKindName(ViolationKind::VK_Degraded)) + ": " +
      std::to_string(Unverified) +
      " record(s) unverified (checker fleet unreachable, SD_Shed)");
  return false;
}

VerifierReport Verifier::finish() {
  assert(Started && "finish before start");
  assert(!Done && "finish called twice");
  Done = true;
  TheLog->close();
  if (Config.Online)
    VerifyThread.join();
  else
    pump();

  VerifierReport R;
  bool LocalFallbackRan = false;
  if (Config.Shipping.enabled()) {
    uint64_t FinalSeq = TheLog->appendCount();
    bool Ok = Shipper->finish(FinalSeq, Config.Shipping.FinalAckTimeoutMs);
    R.Shipping.Enabled = true;
    R.Shipping.Endpoint = Config.Shipping.Endpoint;
    R.Shipping.StreamName = Config.Shipping.StreamName.empty()
                                ? "stream"
                                : Config.Shipping.StreamName;
    R.Shipping.FinalAckOk = Ok;
    if (Ok) {
      TheLog->reclaimCheckedPrefix(Transport->ackedWatermark());
      R.Notes.push_back(
          "shipped: verdicts live with the remote checker at " +
          Config.Shipping.Endpoint + " (session \"" +
          R.Shipping.StreamName + "\")");
    } else {
      LocalFallbackRan = degradeShipping(R, FinalSeq);
    }
    SegmentTransport::Stats TS = Transport->stats();
    R.Shipping.SegmentsShipped = TS.Segments;
    R.Shipping.BytesShipped = TS.Bytes;
    R.Shipping.Acks = TS.Acks;
    R.Shipping.Retries = TS.Retries;
    R.Shipping.AckedWatermark = Transport->ackedWatermark();
  }
  Svc->finishChecking();
  Svc->buildReport(R);
  if (LocalFallbackRan) {
    uint64_t N = 0;
    for (const ObjectReport &O : R.Objects)
      N += O.Records;
    R.Shipping.FallbackRecords = N;
    if (Telem)
      Telem->count(Counter::C_ShipFallbackRecords, N);
  }
  R.LogRecords = TheLog->appendCount();
  R.LogBytes = TheLog->byteCount();
  R.Backpressure = TheLog->backpressureStats();
  Svc->mergePoolStats(R.Backpressure);
  if (Ctl) {
    R.Adaptive.Enabled = true;
    R.Adaptive.Escalations = Ctl->escalations();
    R.Adaptive.Deescalations = Ctl->deescalations();
    R.Adaptive.BatchTargetFinal = Ctl->batchTarget();
    R.Adaptive.BatchTargetHwm = Ctl->batchTargetHwm();
    R.Adaptive.FinalPolicy = backpressurePolicyName(Ctl->policy());
    R.Adaptive.Transitions = Ctl->transitions();
  }
  if (R.Backpressure.ShedRecords) {
    // Coverage degradation is a note, not a violation: the records that
    // were checked got sound verdicts, the shed observers simply were
    // not checked (docs/ARCHITECTURE.md, "Bounded pipeline").
    R.Notes.push_back(
        std::string(violationKindName(ViolationKind::VK_Degraded)) + ": " +
        std::to_string(R.Backpressure.ShedRecords) +
        " observer record(s) shed under backpressure (BP_Shed); "
        "coverage reduced, verdicts on checked records unaffected");
    if (!Config.ForensicPrefix.empty()) {
      // The degraded verdict gets its own bundle: what was dropped and
      // how hard the pipeline was pushed when it happened.
      std::string Path = Config.ForensicPrefix + ".degraded.forensic.json";
      std::string Doc =
          "{\"schema\":\"vyrd-forensic-v1\",\"degraded\":{"
          "\"shed_records\":" +
          std::to_string(R.Backpressure.ShedRecords) +
          ",\"pending_records_hwm\":" +
          std::to_string(R.Backpressure.PendingRecordsHwm) +
          ",\"note\":\"" + jsonEscape(R.Notes.back()) + "\"}}\n";
      if (FILE *F = std::fopen(Path.c_str(), "wb")) {
        std::fwrite(Doc.data(), 1, Doc.size(), F);
        std::fclose(F);
        Svc->addForensicFile(std::move(Path));
      } else {
        std::fprintf(stderr, "vyrd: cannot write forensic bundle %s\n",
                     Path.c_str());
      }
    }
  }
  R.ForensicFiles = Svc->forensicFiles();
  if (Telem) {
    Telem->stopSampler();
    R.TelemetryEnabled = true;
    R.Telemetry = Telem->snapshot();
  }
  if (Tracer) {
    // Violations become instants on the verifier track, so the trace
    // shows *where* in the witness each was detected.
    for (const Violation &V : R.Violations) {
      std::string Label = std::string("violation: ") + violationKindName(V.Kind);
      if (V.Object.valid())
        Label += " [" + std::string(V.Object.str()) + "]";
      Tracer->noteVerifierInstant(V.Seq, std::move(Label));
    }
    R.TraceEvents = Tracer->eventCount();
    if (!Tracer->writeFile(Config.Telemetry.TraceFilePath))
      std::fprintf(stderr, "vyrd: cannot write trace file %s\n",
                   Config.Telemetry.TraceFilePath.c_str());
  }
  return R;
}
