//===- Verifier.cpp - Multi-object verification engine --------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Verifier.h"

#include "vyrd/Ring.h"
#include "vyrd/Snapshot.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>

using namespace vyrd;

//===----------------------------------------------------------------------===//
// VerifierConfig
//===----------------------------------------------------------------------===//

std::string VerifierConfig::validate() const {
  if (Backend == LogBackend::LB_File && LogFilePath.empty())
    return "Backend = LB_File requires LogFilePath";
  // LB_Auto is included: its resolution rule may route it to the
  // buffered backend, and a zero shard capacity must not depend on which
  // way the auto choice falls.
  if ((Backend == LogBackend::LB_Buffered ||
       Backend == LogBackend::LB_Auto) &&
      ShardCapacity == 0)
    return "ShardCapacity must be >= 1 (required by LB_Buffered, which "
           "LB_Auto may resolve to)";
  if (Backpressure.Enabled) {
    if (Backpressure.MaxPendingRecords == 0)
      return "Backpressure.MaxPendingRecords must be >= 1 when "
             "backpressure is enabled (a zero bound admits nothing)";
    if (Backpressure.Policy == BackpressurePolicy::BP_SpillToDisk &&
        (LogFilePath.empty() || Backend == LogBackend::LB_Memory))
      return "Backpressure.Policy = BP_SpillToDisk requires a file-backed "
             "log (set LogFilePath and a non-memory backend)";
    if (!Online && Backpressure.Policy == BackpressurePolicy::BP_Block)
      return "Backpressure.Policy = BP_Block requires Online = true "
             "(offline runs have no concurrent reader to make room; a "
             "blocked producer would deadlock)";
    if (!Online && Backpressure.Policy == BackpressurePolicy::BP_Shed)
      return "Backpressure.Policy = BP_Shed requires Online = true "
             "(offline runs buffer the whole log anyway, so shedding "
             "would lose coverage for no memory benefit)";
  }
  if (Adaptive.Enabled) {
    if (!Online)
      return "Adaptive.Enabled requires Online = true (the controller "
             "runs on the consumption thread; an offline pass has no "
             "live lag to react to)";
    if (Adaptive.MinBatch == 0)
      return "Adaptive.MinBatch must be >= 1";
    if (Adaptive.MaxBatch < Adaptive.MinBatch)
      return "Adaptive.MaxBatch must be >= Adaptive.MinBatch";
    if (Adaptive.InitialBatch < Adaptive.MinBatch ||
        Adaptive.InitialBatch > Adaptive.MaxBatch)
      return "Adaptive.InitialBatch must lie in [MinBatch, MaxBatch]";
    if (Adaptive.GrowStep == 0)
      return "Adaptive.GrowStep must be >= 1 (a zero step never grows)";
    if (!(Adaptive.ShrinkFactor > 0.0) || Adaptive.ShrinkFactor > 1.0)
      return "Adaptive.ShrinkFactor must lie in (0, 1]";
    if (Adaptive.EscalatePolicy) {
      if (!Backpressure.Enabled)
        return "Adaptive.EscalatePolicy requires Backpressure.Enabled "
               "(there is no admission policy to escalate without a "
               "bounded pipeline)";
      if (Adaptive.DeescalateLagLo >= Adaptive.EscalateLagHi)
        return "Adaptive.DeescalateLagLo must be < Adaptive.EscalateLagHi "
               "(the watermarks need a dead band or the policy flaps)";
    }
  }
  if (Snapshots) {
    if (!Backpressure.SegmentBytes)
      return "Snapshots requires Backpressure.SegmentBytes > 0 (snapshot "
             "sidecars ride the segment chain; an unsegmented log has no "
             "cut points)";
    if (LogFilePath.empty() || Backend == LogBackend::LB_Memory)
      return "Snapshots requires a file-backed log (set LogFilePath and a "
             "non-memory backend; sidecars live next to the segments)";
  }
  if (CheckerThreads == 0)
    return "CheckerThreads must be >= 1";
  if (CheckerThreads > 1 && !Online)
    return "CheckerThreads > 1 requires Online = true (the offline pass "
           "is a synchronous replay on the caller's thread)";
  if (Checker.MaxViolations == 0)
    return "Checker.MaxViolations must be >= 1 (0 would suppress every "
           "report)";
  if (Telemetry.WatchdogQuietMs && !Telemetry.Enabled)
    return "Telemetry.WatchdogQuietMs requires Telemetry.Enabled";
  if (Telemetry.SampleIntervalUs && !Telemetry.Enabled)
    return "Telemetry.SampleIntervalUs requires Telemetry.Enabled";
  if (!Monitor.SocketPath.empty()) {
    if (!Telemetry.Enabled)
      return "Monitor.SocketPath requires Telemetry.Enabled (the monitor "
             "serves Telemetry::snapshot(); without a hub there is "
             "nothing to report)";
    if (Monitor.MaxClients == 0)
      return "Monitor.MaxClients must be >= 1 (a zero bound admits no "
             "client)";
  }
  return "";
}

//===----------------------------------------------------------------------===//
// VerifierReport
//===----------------------------------------------------------------------===//

std::string VerifierReport::str() const {
  std::string Out;
  Out += "log: " + std::to_string(LogRecords) + " records";
  if (LogBytes)
    Out += ", " + std::to_string(LogBytes) + " bytes";
  Out += "\nchecked: " + std::to_string(Stats.MethodsChecked) + " methods (" +
         std::to_string(Stats.CommitsProcessed) + " commits, " +
         std::to_string(Stats.ObserversChecked) + " observers)\n";
  if (Objects.size() > 1) {
    Out += "objects:\n";
    for (const ObjectReport &O : Objects) {
      std::string Label =
          O.Name.empty() ? "object" + std::to_string(O.Id) : O.Name;
      Out += "  " + Label + ": " + std::to_string(O.Records) + " records, " +
             std::to_string(O.Stats.MethodsChecked) + " methods, " +
             std::to_string(O.Violations.size()) + " violation(s)\n";
    }
  }
  if (Backpressure.any()) {
    Out += "backpressure:";
    if (Backpressure.BlockedAppends)
      Out += " blocked_appends=" + std::to_string(Backpressure.BlockedAppends) +
             " blocked_ms=" +
             std::to_string(Backpressure.BlockedNanos / 1000000);
    if (Backpressure.ShedRecords)
      Out += " shed_records=" + std::to_string(Backpressure.ShedRecords);
    if (Backpressure.SpilledRecords)
      Out += " spilled_records=" + std::to_string(Backpressure.SpilledRecords);
    if (Backpressure.PendingRecordsHwm)
      Out += " pending_hwm=" + std::to_string(Backpressure.PendingRecordsHwm);
    if (Backpressure.TailBytesHwm)
      Out += " tail_bytes_hwm=" + std::to_string(Backpressure.TailBytesHwm);
    if (Backpressure.SegmentsCreated)
      Out += " segments=" + std::to_string(Backpressure.SegmentsCreated) +
             "/reclaimed=" + std::to_string(Backpressure.SegmentsReclaimed) +
             "/live_hwm=" + std::to_string(Backpressure.SegmentsLiveHwm);
    Out += "\n";
  }
  if (Adaptive.Enabled) {
    Out += "adaptive: batch_target=" +
           std::to_string(Adaptive.BatchTargetFinal) +
           " batch_target_hwm=" + std::to_string(Adaptive.BatchTargetHwm);
    if (!Adaptive.FinalPolicy.empty())
      Out += " policy=" + Adaptive.FinalPolicy;
    if (Adaptive.Escalations || Adaptive.Deescalations)
      Out += " escalations=" + std::to_string(Adaptive.Escalations) +
             " deescalations=" + std::to_string(Adaptive.Deescalations);
    Out += "\n";
    for (const AdaptiveController::Transition &T : Adaptive.Transitions)
      Out += "  transition: " + T.str() + " at seq " +
             std::to_string(T.Seq) + " (lag " +
             std::to_string(T.LagRecords) + ")\n";
  }
  for (const std::string &N : Notes)
    Out += "note: " + N + "\n";
  for (const std::string &F : ForensicFiles)
    Out += "forensics: " + F + "\n";
  if (Violations.empty())
    Out += "no refinement violations\n";
  else {
    Out += std::to_string(Violations.size()) + " violation(s):\n";
    for (const Violation &V : Violations)
      Out += "  " + V.str() + "\n";
  }
  if (TelemetryEnabled)
    Out += Telemetry.str();
  if (TraceEvents)
    Out += "trace: " + std::to_string(TraceEvents) + " events\n";
  return Out;
}

/// Renders one CheckerStats as a JSON object body (shared by the report
/// totals and the per-object breakdown).
static std::string statsJson(const CheckerStats &S) {
  std::string Out = "{";
  Out += "\"actions_fed\":" + std::to_string(S.ActionsFed);
  Out += ",\"methods_checked\":" + std::to_string(S.MethodsChecked);
  Out += ",\"commits_processed\":" + std::to_string(S.CommitsProcessed);
  Out += ",\"observers_checked\":" + std::to_string(S.ObserversChecked);
  Out += ",\"view_comparisons\":" + std::to_string(S.ViewComparisons);
  Out += ",\"audits\":" + std::to_string(S.Audits);
  Out += ",\"max_queue_depth\":" + std::to_string(S.MaxQueueDepth);
  Out += ",\"replay_ns\":" + std::to_string(S.ReplayNanos);
  Out += ",\"spec_ns\":" + std::to_string(S.SpecNanos);
  Out += ",\"view_compare_ns\":" + std::to_string(S.ViewCompareNanos);
  Out += ",\"obs_memo_hits\":" + std::to_string(S.ObsMemoHits);
  Out += ",\"obs_memo_misses\":" + std::to_string(S.ObsMemoMisses);
  Out += ",\"spec_version_bumps\":" + std::to_string(S.SpecVersionBumps);
  Out += "}";
  return Out;
}

/// Renders one BackpressureStats as a JSON object body.
static std::string backpressureJson(const BackpressureStats &S) {
  std::string Out = "{";
  Out += "\"blocked_appends\":" + std::to_string(S.BlockedAppends);
  Out += ",\"blocked_ns\":" + std::to_string(S.BlockedNanos);
  Out += ",\"shed_records\":" + std::to_string(S.ShedRecords);
  Out += ",\"spilled_records\":" + std::to_string(S.SpilledRecords);
  Out += ",\"pending_records_hwm\":" + std::to_string(S.PendingRecordsHwm);
  Out += ",\"tail_bytes_hwm\":" + std::to_string(S.TailBytesHwm);
  Out += ",\"segments_created\":" + std::to_string(S.SegmentsCreated);
  Out += ",\"segments_reclaimed\":" + std::to_string(S.SegmentsReclaimed);
  Out += ",\"segments_live_hwm\":" + std::to_string(S.SegmentsLiveHwm);
  Out += "}";
  return Out;
}

/// Escapes a note string for a JSON string literal (notes are generated
/// text; only quotes/backslashes/control bytes need care).
static std::string escapeNote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      Out += ' ';
      continue;
    }
    Out += C;
  }
  return Out;
}

std::string VerifierReport::json() const {
  std::string Out = "{";
  Out += "\"ok\":" + std::string(ok() ? "true" : "false");
  Out += ",\"violations\":" + std::to_string(Violations.size());
  Out += ",\"log_records\":" + std::to_string(LogRecords);
  Out += ",\"log_bytes\":" + std::to_string(LogBytes);
  Out += ",\"stats\":" + statsJson(Stats);
  Out += ",\"objects\":[";
  for (size_t I = 0; I < Objects.size(); ++I) {
    const ObjectReport &O = Objects[I];
    if (I)
      Out += ",";
    Out += "{\"id\":" + std::to_string(O.Id);
    Out += ",\"name\":\"" + O.Name + "\"";
    Out += ",\"records\":" + std::to_string(O.Records);
    Out += ",\"violations\":" + std::to_string(O.Violations.size());
    Out += ",\"stats\":" + statsJson(O.Stats);
    Out += "}";
  }
  Out += "]";
  if (Backpressure.any())
    Out += ",\"backpressure\":" + backpressureJson(Backpressure);
  if (Adaptive.Enabled) {
    Out += ",\"adaptive\":{";
    Out += "\"batch_target_final\":" +
           std::to_string(Adaptive.BatchTargetFinal);
    Out += ",\"batch_target_hwm\":" +
           std::to_string(Adaptive.BatchTargetHwm);
    Out += ",\"final_policy\":\"" + Adaptive.FinalPolicy + "\"";
    Out += ",\"escalations\":" + std::to_string(Adaptive.Escalations);
    Out += ",\"deescalations\":" + std::to_string(Adaptive.Deescalations);
    Out += ",\"transitions\":[";
    for (size_t I = 0; I < Adaptive.Transitions.size(); ++I) {
      const AdaptiveController::Transition &T = Adaptive.Transitions[I];
      if (I)
        Out += ",";
      Out += "{\"from\":\"" +
             std::string(backpressurePolicyName(T.From)) + "\"";
      Out += ",\"to\":\"" + std::string(backpressurePolicyName(T.To)) +
             "\"";
      Out += ",\"seq\":" + std::to_string(T.Seq);
      Out += ",\"lag\":" + std::to_string(T.LagRecords);
      Out += ",\"escalation\":" +
             std::string(T.Escalation ? "true" : "false") + "}";
    }
    Out += "]}";
  }
  if (!Notes.empty()) {
    Out += ",\"notes\":[";
    for (size_t I = 0; I < Notes.size(); ++I) {
      if (I)
        Out += ",";
      Out += "\"" + escapeNote(Notes[I]) + "\"";
    }
    Out += "]";
  }
  if (TelemetryEnabled)
    Out += ",\"telemetry\":" + Telemetry.json();
  if (TraceEvents)
    Out += ",\"trace_events\":" + std::to_string(TraceEvents);
  if (!ForensicFiles.empty()) {
    Out += ",\"forensic_files\":[";
    for (size_t I = 0; I < ForensicFiles.size(); ++I) {
      if (I)
        Out += ",";
      Out += "\"" + jsonEscape(ForensicFiles[I]) + "\"";
    }
    Out += "]";
  }
  Out += "}";
  return Out;
}

//===----------------------------------------------------------------------===//
// Verifier::ObjectState / Verifier::CheckerPool
//===----------------------------------------------------------------------===//

/// Everything one registered object owns: its spec, shadow state and
/// checker pipeline, plus the demux/pool bookkeeping.
struct Verifier::ObjectState {
  ObjectId Id = 0;
  std::string Name;
  std::unique_ptr<Spec> S;
  std::unique_ptr<Replayer> R;
  CheckerConfig CheckerCfg;
  std::unique_ptr<RefinementChecker> Checker;
  /// Records routed to this object so far (pump thread only).
  uint64_t Routed = 0;

  // Pool scheduling state, guarded by CheckerPool::M. An object is
  // "scheduled" from the moment it enters the runnable queue until the
  // worker that picked it up finds its pending queue empty, so at most
  // one worker touches Checker at a time and batches are fed FIFO.
  // ChunkQueue (not a deque) so the steady state — a few batches deep —
  // cycles through the same cache-hot chunks with zero heap traffic.
  ChunkQueue<std::vector<Action>> PendingBatches;
  bool Scheduled = false;
  /// Checker violations already copied into Verifier::Live (accessed
  /// only by the thread currently owning the checker, like Checker).
  size_t Published = 0;
  /// The object's forensic bundle has been flushed (first violation
  /// only; same ownership rule as Published).
  bool ForensicWritten = false;
  /// Records dispatched to this object and not yet fed (pending batches
  /// plus the batch a worker is feeding right now). Guarded by
  /// CheckerPool::M.
  uint64_t PendingRecs = 0;
  /// Every record with Seq < FedExclusive has been fed to the checker.
  /// Guarded by CheckerPool::M; meaningful while PendingRecs > 0 (an
  /// idle object is checked through everything routed to it).
  uint64_t FedExclusive = 0;
};

/// The verification worker pool. Scheduling unit: one object. dispatch()
/// enqueues a demuxed batch on the object and makes the object runnable
/// if it isn't already; a worker that picks up an object owns it — and
/// thereby its checker, exclusively — until it has drained every pending
/// batch. Per-object order is FIFO through PendingBatches; cross-object
/// parallelism is bounded by min(objects, workers).
class Verifier::CheckerPool {
public:
  CheckerPool(Verifier &V, unsigned NumWorkers)
      : V(V), BP(V.Config.Backpressure) {
    Workers.reserve(NumWorkers);
    for (unsigned I = 0; I < NumWorkers; ++I)
      Workers.emplace_back([this] { workerMain(); });
  }

  ~CheckerPool() { drainAndJoin(); }

  /// Called by the pump thread only. Takes \p Batch and leaves a
  /// recycled (empty, capacity-bearing) vector in its place, so the pump
  /// and the workers circulate a bounded set of batch buffers instead of
  /// allocating a fresh one per dispatch.
  ///
  /// With backpressure enabled the total records pending across objects
  /// are bounded by MaxPendingRecords: BP_Block (and BP_SpillToDisk,
  /// which has nothing left to spill here — the records are already in
  /// memory) parks the pump until workers drain below the bound, so the
  /// pressure propagates back into the log; BP_Shed drops observer
  /// executions from the batch while over the bound. Admission is sliced
  /// at the free room, so occupancy never exceeds the bound (the old
  /// batch-granular path could overshoot by a whole pump batch — with
  /// adaptive batch sizing, by up to MaxBatch records).
  void dispatch(ObjectState &O, std::vector<Action> &Batch) {
    std::unique_lock Lock(M);
    const bool Dynamic = V.Ctl && V.Ctl->dynamicPolicy();
    auto Active = [&] {
      return Dynamic ? V.Ctl->policy() : BP.Policy;
    };
    if (BP.Enabled) {
      BackpressurePolicy P = Active();
      if ((P == BackpressurePolicy::BP_Shed || Dynamic) &&
          Shed.hasClassifier()) {
        // With a dynamic policy the filter runs under every rung (new
        // sheds only while BP_Shed is active and over the bound) so open
        // shed windows close whole across de-escalations.
        size_t Kept = 0;
        for (size_t I = 0; I < Batch.size(); ++I) {
          bool Over = P == BackpressurePolicy::BP_Shed &&
                      PendingRecs + Kept >= BP.MaxPendingRecords;
          if (Shed.shouldShed(Batch[I], Over)) {
            ++Stats.ShedRecords;
            continue;
          }
          if (Kept != I)
            Batch[Kept] = std::move(Batch[I]);
          ++Kept;
        }
        if (size_t ShedNow = Batch.size() - Kept; ShedNow && V.Telem)
          V.Telem->count(Counter::C_ShedRecords, ShedNow);
        Batch.resize(Kept);
        if (Batch.empty())
          return; // whole batch shed; buffer reused as-is next round
      }
    }
    const size_t Total = Batch.size();
    size_t Begin = 0;
    bool MovedWhole = false;
    // Enqueues Batch[Begin, Begin + N) and makes the object runnable.
    // A whole-batch slice moves the vector itself (the recycled-buffer
    // protocol with the pump); a partial slice moves the records into a
    // freelist buffer so the next slice can still wait for room.
    auto EnqueueLocked = [&](size_t N) {
      std::vector<Action> Slice;
      if (Begin == 0 && N == Total) {
        Slice = std::move(Batch);
        if (FreeBatches.empty()) {
          Batch = std::vector<Action>();
        } else {
          Batch = std::move(FreeBatches.back());
          FreeBatches.pop_back();
        }
        MovedWhole = true;
      } else {
        if (!FreeBatches.empty()) {
          Slice = std::move(FreeBatches.back());
          FreeBatches.pop_back();
        }
        Slice.insert(Slice.end(),
                     std::make_move_iterator(Batch.begin() + Begin),
                     std::make_move_iterator(Batch.begin() + Begin + N));
      }
      PendingRecs += N;
      O.PendingRecs += N;
      Stats.PendingRecordsHwm =
          std::max(Stats.PendingRecordsHwm, PendingRecs);
      if (V.Telem)
        V.Telem->gaugeAdd(Gauge::G_PendingRecords, N);
      O.PendingBatches.push_back(std::move(Slice));
      if (!O.Scheduled) {
        O.Scheduled = true;
        ++ActiveObjects;
        Runnable.push_back(&O);
        WorkCV.notify_one();
      }
    };
    while (Begin < Total) {
      size_t N = Total - Begin;
      if (BP.Enabled && Active() != BackpressurePolicy::BP_Shed) {
        if (PendingRecs >= BP.MaxPendingRecords) {
          uint64_t T0 = telemetryNowNanos();
          SpaceCV.wait(Lock, [&] {
            return PendingRecs < BP.MaxPendingRecords ||
                   Active() == BackpressurePolicy::BP_Shed;
          });
          uint64_t Waited = telemetryNowNanos() - T0;
          ++Stats.BlockedAppends;
          Stats.BlockedNanos += Waited;
          if (V.Telem) {
            V.Telem->count(Counter::C_BlockedAppends);
            V.Telem->cell().record(Histo::H_BlockedNs, Waited);
          }
          continue; // re-decide: room may be partial, policy may differ
        }
        N = std::min<size_t>(N, BP.MaxPendingRecords - PendingRecs);
      }
      EnqueueLocked(N);
      Begin += N;
    }
    if (!MovedWhole)
      Batch.clear(); // records moved out slice-by-slice; keep capacity
  }

  /// The sequence number below which every record dispatched to the pool
  /// has been fed to its checker, capped at \p Upper (the pump's routed
  /// frontier). The pump passes this to Log::reclaimCheckedPrefix.
  uint64_t checkedWatermark(uint64_t Upper) {
    std::lock_guard Lock(M);
    uint64_t W = Upper;
    for (const auto &O : V.Objects)
      if (O->PendingRecs)
        W = std::min(W, O->FedExclusive);
    return W;
  }

  /// Installs the observer classifier BP_Shed consults (same contract as
  /// Log::setShedClassifier). Call before the pump dispatches.
  void setShedClassifier(std::function<bool(const Action &)> Fn) {
    std::lock_guard Lock(M);
    Shed.setClassifier(std::move(Fn));
  }

  BackpressureStats stats() const {
    std::lock_guard Lock(M);
    return Stats;
  }

  /// Mid-run barrier: waits until every dispatched batch has been fed
  /// (snapshot cuts need all checkers aligned exactly on the cut). The
  /// pool keeps running — unlike drainAndJoin, the workers are not
  /// stopped. Pump thread only; since the pump is the sole dispatcher,
  /// no new work can race in while it waits here.
  void quiesce() {
    std::unique_lock Lock(M);
    IdleCV.wait(Lock, [&] { return ActiveObjects == 0; });
  }

  /// Waits until every dispatched batch has been checked, then stops and
  /// joins the workers. Called by the pump thread after the log is
  /// drained (no dispatch() can race with it). Idempotent.
  void drainAndJoin() {
    {
      std::unique_lock Lock(M);
      if (Joined)
        return;
      IdleCV.wait(Lock, [&] { return ActiveObjects == 0; });
      Stopping = true;
      Joined = true;
    }
    WorkCV.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

private:
  void workerMain() {
    TelemetryCell *TC =
        telemetryCompiledIn() && V.Telem ? &V.Telem->cell() : nullptr;
    std::unique_lock Lock(M);
    while (true) {
      WorkCV.wait(Lock, [&] { return Stopping || !Runnable.empty(); });
      if (Runnable.empty())
        return; // Stopping, nothing left to do.
      ObjectState *O = Runnable.front();
      Runnable.pop_front();
      // Drain the object. Hand-offs between workers are synchronized by
      // M: the previous owner released it under M before this worker
      // claimed it, so the checker's single-threaded contract holds.
      while (true) {
        if (O->PendingBatches.empty()) {
          O->Scheduled = false;
          if (--ActiveObjects == 0)
            IdleCV.notify_all();
          break;
        }
        std::vector<Action> Batch = std::move(O->PendingBatches.front());
        O->PendingBatches.pop_front();
        Lock.unlock();
        V.feedObject(*O, Batch, TC);
        uint64_t BatchN = Batch.size();
        uint64_t BatchEnd = BatchN ? Batch.back().Seq + 1 : 0;
        // Release the records outside the lock; hand the empty buffer
        // (capacity intact) back to the pump via the freelist.
        Batch.clear();
        Lock.lock();
        // Account the batch as fed only now: until this point it was
        // neither pending nor checked, and the watermark must not
        // advance past records still being fed (a reclaimed segment
        // would strand a concurrent spill reader).
        if (BatchN) {
          O->FedExclusive = std::max(O->FedExclusive, BatchEnd);
          O->PendingRecs -= BatchN;
          PendingRecs -= BatchN;
          if (V.Telem)
            V.Telem->gaugeSub(Gauge::G_PendingRecords, BatchN);
          if (BP.Enabled)
            SpaceCV.notify_one();
        }
        if (FreeBatches.size() < MaxFreeBatches)
          FreeBatches.push_back(std::move(Batch));
      }
    }
  }

  Verifier &V;
  const BackpressureConfig BP;
  mutable std::mutex M;
  std::condition_variable WorkCV; ///< workers wait for runnable objects
  std::condition_variable IdleCV; ///< drainAndJoin waits for quiescence
  std::condition_variable SpaceCV; ///< BP_Block: pump waits for room
  ShedFilter Shed;                 ///< BP_Shed windows (guarded by M)
  BackpressureStats Stats;         ///< admission accounting (guarded by M)
  /// Records pending across all objects (dispatched, not yet fed).
  uint64_t PendingRecs = 0;
  std::deque<ObjectState *> Runnable;
  /// Consumed batch buffers awaiting reuse by dispatch() (bounded so a
  /// burst cannot pin memory forever).
  static constexpr size_t MaxFreeBatches = 64;
  std::vector<std::vector<Action>> FreeBatches;
  /// Objects currently scheduled (runnable or being drained by a worker).
  size_t ActiveObjects = 0;
  bool Stopping = false;
  bool Joined = false;
  std::vector<std::thread> Workers;
};

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

/// The monitor's window into a live Verifier: telemetry through the
/// lock-free snapshot path, violations/forensics through the published
/// LiveState. Runs on the monitor thread; everything it touches outlives
/// the MonitorServer (member declaration order).
class Verifier::MonitorAdapter : public MonitorSource {
public:
  explicit MonitorAdapter(Verifier &V) : V(V) {}
  TelemetrySnapshot telemetrySnapshot() override {
    return V.Telem ? V.Telem->snapshot() : TelemetrySnapshot();
  }
  std::vector<Violation> liveViolations() override {
    std::lock_guard Lock(V.Live.M);
    return V.Live.Violations;
  }
  std::vector<std::string> forensicFiles() override {
    std::lock_guard Lock(V.Live.M);
    return V.Live.ForensicFiles;
  }

private:
  Verifier &V;
};

Verifier::Verifier(VerifierConfig C) : Config(std::move(C)) {
  std::string Err = Config.validate();
  if (!Err.empty()) {
    std::fprintf(stderr, "vyrd: invalid VerifierConfig: %s\n", Err.c_str());
    std::abort();
  }
  LogBackend B = Config.Backend;
  if (B == LogBackend::LB_Auto)
    B = Config.LogFilePath.empty() ? LogBackend::LB_Memory
                                   : LogBackend::LB_File;
  switch (B) {
  case LogBackend::LB_Auto: // resolved above
  case LogBackend::LB_Memory:
    TheLog = std::make_unique<MemoryLog>(Config.Backpressure);
    break;
  case LogBackend::LB_File: {
    bool Valid = false;
    auto FL = std::make_unique<FileLog>(Config.LogFilePath, Valid,
                                        Config.Backpressure);
    assert(Valid && "cannot open log file");
    (void)Valid;
    TheLog = std::move(FL);
    break;
  }
  case LogBackend::LB_Buffered: {
    BufferedLog::Options BO;
    BO.ShardCapacity = Config.ShardCapacity;
    BO.FilePath = Config.LogFilePath;
    BO.Backpressure = Config.Backpressure;
    auto BL = std::make_unique<BufferedLog>(std::move(BO));
    assert(BL->valid() && "cannot open log file");
    TheLog = std::move(BL);
    break;
  }
  }
  if (Config.Telemetry.Enabled) {
    Telemetry::Options TO;
    TO.SampleIntervalUs = Config.Telemetry.SampleIntervalUs;
    TO.WatchdogQuietMs = Config.Telemetry.WatchdogQuietMs;
    if (TO.WatchdogQuietMs && !TO.SampleIntervalUs)
      TO.SampleIntervalUs = 1000; // the watchdog needs sample points
    TO.ProducerProbe = [L = TheLog.get()] { return L->appendCount(); };
    Telem = std::make_unique<Telemetry>(std::move(TO));
    TheLog->setTelemetry(Telem.get());
  }
  if (!Config.Telemetry.TraceFilePath.empty())
    Tracer = std::make_unique<TraceRecorder>();
  if (Config.Adaptive.Enabled) {
    // The spill rung needs somewhere to spill: a file-backed backend
    // (both keep the delivery-frontier bookkeeping on from record 0 once
    // the dynamic-policy cell is installed, so a mid-run escalation into
    // spill starts from a correct frontier).
    bool CanSpill = B != LogBackend::LB_Memory && !Config.LogFilePath.empty();
    Ctl = std::make_unique<AdaptiveController>(
        Config.Adaptive, Config.Backpressure.Policy, CanSpill);
    Ctl->setTelemetry(Telem.get());
    TheLog->setBatchTargetHint(&Ctl->batchCell());
    if (Ctl->dynamicPolicy())
      TheLog->setDynamicPolicy(&Ctl->policyCell());
    if (Telem) {
      Telem->gaugeSet(Gauge::G_PumpBatchTarget, Ctl->batchTarget());
      if (Ctl->dynamicPolicy())
        Telem->gaugeSet(Gauge::G_PolicyActive,
                        static_cast<uint64_t>(Ctl->policy()));
    }
  }
  if (!Config.Monitor.SocketPath.empty()) {
    MonSource = std::make_unique<MonitorAdapter>(*this);
    Mon = std::make_unique<MonitorServer>(Config.Monitor, *MonSource);
    if (!Mon->valid())
      std::fprintf(stderr, "vyrd: monitor disabled: %s\n",
                   Mon->error().c_str());
  }
}

Verifier::Verifier(std::unique_ptr<Spec> S, std::unique_ptr<Replayer> R,
                   VerifierConfig C)
    : Verifier(std::move(C)) {
  assert(S && "Verifier requires a specification");
  // The anonymous single object of the historical interface: reports and
  // violation strings stay exactly as they were before the multi-object
  // engine.
  (void)registerObject("", std::move(S), std::move(R), Config.Checker);
}

Verifier::~Verifier() {
  if (Started && !Done)
    (void)finish();
}

Hooks Verifier::registerObject(std::string ObjName, std::unique_ptr<Spec> S,
                               std::unique_ptr<Replayer> R,
                               CheckerConfig CC) {
  assert(!Started && "registerObject after start");
  assert(S && "registerObject requires a specification");
  assert((R || CC.Mode != CheckMode::CM_ViewRefinement) &&
         "view refinement requires a replayer for the shadow state");
  auto O = std::make_unique<ObjectState>();
  O->Id = static_cast<ObjectId>(Objects.size());
  O->Name = std::move(ObjName);
  O->S = std::move(S);
  O->R = std::move(R);
  // Armed forensics imply a flight recorder; a config that set its own
  // depth keeps it.
  if (!Config.ForensicPrefix.empty() && CC.FlightRecorderDepth == 0)
    CC.FlightRecorderDepth = 64;
  O->CheckerCfg = CC;
  O->Checker =
      std::make_unique<RefinementChecker>(*O->S, O->R.get(), O->CheckerCfg);
  O->Checker->setTelemetry(Telem.get());
  if (Telem)
    Telem->registerObject(O->Id, O->Name.empty()
                                     ? "object" + std::to_string(O->Id)
                                     : O->Name);
  if (Tracer && !O->Name.empty())
    Tracer->setObjectName(O->Id, O->Name);
  ObjectId Id = O->Id;
  Objects.push_back(std::move(O));
  return hooks(Id);
}

Hooks Verifier::registerObject(std::string ObjName, std::unique_ptr<Spec> S,
                               std::unique_ptr<Replayer> R) {
  return registerObject(std::move(ObjName), std::move(S), std::move(R),
                        Config.Checker);
}

Hooks Verifier::hooks(ObjectId Id) const {
  assert(Id < Objects.size() && "hooks for unregistered object");
  LogLevel Level =
      Objects[Id]->CheckerCfg.Mode == CheckMode::CM_ViewRefinement
          ? LogLevel::LL_View
          : LogLevel::LL_IO;
  return Hooks(TheLog.get(), Level, Telem.get(), Id);
}

Hooks Verifier::hooks() const {
  assert(!Objects.empty() && "no object registered");
  return hooks(0);
}

void Verifier::feedObject(ObjectState &O, const std::vector<Action> &Batch,
                          TelemetryCell *TC) {
  uint64_t T0 = TC ? telemetryNowNanos() : 0;
  for (const Action &A : Batch)
    O.Checker->feed(A);
  if (TC) {
    TC->count(Counter::C_CheckerActions, Batch.size());
    TC->record(Histo::H_FeedBatch, Batch.size());
    TC->record(Histo::H_FeedNs, telemetryNowNanos() - T0);
  }
  if (Telem)
    Telem->noteObjectChecked(O.Id, Batch.size());
  if (O.Checker->hasViolation()) {
    ViolationFlag.store(true, std::memory_order_release);
    publishObjectViolations(O);
  }
}

void Verifier::publishObjectViolations(ObjectState &O) {
  const std::vector<Violation> &Vs = O.Checker->violations();
  if (Vs.size() == O.Published)
    return;
  Name Tag = O.Name.empty() ? Name() : internName(O.Name);
  {
    std::lock_guard Lock(Live.M);
    for (size_t I = O.Published; I < Vs.size(); ++I) {
      Violation V = Vs[I];
      V.Obj = O.Id;
      V.Object = Tag;
      Live.Violations.push_back(std::move(V));
    }
  }
  O.Published = Vs.size();
  maybeWriteForensic(O);
}

void Verifier::maybeWriteForensic(ObjectState &O) {
  if (Config.ForensicPrefix.empty() || O.ForensicWritten)
    return;
  // First violation that captured a bundle (bundles are parallel to
  // violations; entries are empty when the flight recorder is off).
  const std::vector<std::string> &Bundles = O.Checker->forensics();
  const std::string *Bundle = nullptr;
  for (const std::string &B : Bundles)
    if (!B.empty()) {
      Bundle = &B;
      break;
    }
  if (!Bundle)
    return;
  O.ForensicWritten = true;
  std::string Label =
      O.Name.empty() ? "object" + std::to_string(O.Id) : O.Name;
  std::string Path =
      Config.ForensicPrefix + "." + Label + ".forensic.json";
  std::string Doc = "{\"schema\":\"vyrd-forensic-v1\",\"object\":{\"id\":" +
                    std::to_string(O.Id) + ",\"name\":\"" +
                    jsonEscape(Label) + "\"},\"checker\":" + *Bundle +
                    "}\n";
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "vyrd: cannot write forensic bundle %s\n",
                 Path.c_str());
    return;
  }
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fclose(F);
  std::lock_guard Lock(Live.M);
  Live.ForensicFiles.push_back(std::move(Path));
}

void Verifier::routeRange(std::vector<Action> &Batch, size_t Begin,
                          size_t End, std::vector<std::vector<Action>> &Route,
                          TelemetryCell *TC) {
  for (size_t I = Begin; I < End; ++I) {
    Action &A = Batch[I];
    if (Tracer)
      Tracer->noteAction(A);
    if (A.Obj < Route.size()) {
      Route[A.Obj].push_back(std::move(A));
    } else {
      if (!UnroutedRecords)
        FirstUnroutedSeq = A.Seq;
      ++UnroutedRecords;
    }
  }
  for (size_t I = 0; I < Route.size(); ++I) {
    if (Route[I].empty())
      continue;
    ObjectState &O = *Objects[I];
    O.Routed += Route[I].size();
    if (Telem)
      Telem->noteObjectRouted(O.Id, Route[I].size());
    if (Pool) {
      // dispatch() swaps in a recycled empty buffer for the next round.
      Pool->dispatch(O, Route[I]);
    } else {
      feedObject(O, Route[I], TC);
      Route[I].clear();
    }
  }
}

void Verifier::takeSnapshot(uint64_t SegIndex, uint64_t CutSeq) {
  // Every record below the cut has been routed; with a pool, wait until
  // the workers have actually fed them, so the serialized state is the
  // checkers' state exactly at the cut.
  if (Pool)
    Pool->quiesce();
  SnapshotFile SF;
  SF.SegmentIndex = SegIndex;
  SF.Watermark = CutSeq;
  for (auto &O : Objects) {
    ByteWriter W;
    // A dirty checker (violation recorded, spec diverged) or a spec /
    // replayer without serialization support makes the whole cut
    // unsnapshottable: a partial sidecar could not seed a resume.
    if (!O->Checker->saveState(W)) {
      if (Telem)
        Telem->count(Counter::C_SnapshotSkips);
      return;
    }
    SnapshotObject SO;
    SO.Id = O->Id;
    SO.Name = O->Name;
    SO.Blob = W.buffer();
    SF.Objects.push_back(std::move(SO));
  }
  std::string Path = snapshotSidecarPath(Config.LogFilePath, SegIndex);
  if (!writeSnapshotFile(Path, SF)) {
    std::fprintf(stderr, "vyrd: cannot write snapshot sidecar %s\n",
                 Path.c_str());
    if (Telem)
      Telem->count(Counter::C_SnapshotSkips);
    return;
  }
  if (Telem)
    Telem->count(Counter::C_SnapshotWrites);
  if (Tracer)
    Tracer->noteVerifierInstant(CutSeq, "snapshot: segment " +
                                            std::to_string(SegIndex));
}

void Verifier::pump() {
  // Batch consumption amortizes one log wakeup + lock round trip over up
  // to PumpBatch records; each record is then routed to its object's
  // pipeline (the checkers themselves stay record-at-a-time). With an
  // adaptive controller the batch target is re-read every loop — it
  // grows under lag and shrinks when the checkers keep up.
  constexpr size_t FixedPumpBatch = 256;
  AdaptiveController *AC = Ctl.get();
  size_t PumpBatch = AC ? AC->batchTarget() : FixedPumpBatch;
  std::vector<Action> Batch;
  Batch.reserve(PumpBatch);
  TelemetryCell *TC =
      telemetryCompiledIn() && Telem ? &Telem->cell() : nullptr;
  std::vector<std::vector<Action>> Route(Objects.size());
  const bool SnapshotsOn = Config.Snapshots && Config.Backpressure.SegmentBytes;
  std::vector<SegmentCut> Cuts; ///< pending cut points, oldest first
  uint64_t RoutedUpto = 0;      ///< exclusive frontier of routed records
  while (TheLog->nextBatch(Batch, PumpBatch)) {
    uint64_t FirstSeq = Batch.front().Seq;
    uint64_t LastSeq = Batch.back().Seq;
    size_t NumActions = Batch.size();
    if (TC)
      TC->count(Counter::C_CheckerBatches);
    size_t Begin = 0;
    if (SnapshotsOn) {
      TheLog->takeSegmentCuts(Cuts);
      // Split the batch at each cut that falls inside it: route the
      // records before the cut, serialize the checkers aligned exactly
      // on it, then resume routing. A cut at LastSeq + 1 sits at the
      // batch boundary and is taken after the whole batch is routed.
      while (!Cuts.empty() && Cuts.front().FirstSeq <= LastSeq + 1) {
        SegmentCut Cut = Cuts.front();
        Cuts.erase(Cuts.begin());
        if (Cut.FirstSeq < RoutedUpto) {
          // Late cut: the buffered backend's flusher rotates
          // asynchronously, so the reader can consume past a cut before
          // the pump learns of it. Nothing to align on — skip.
          if (Telem)
            Telem->count(Counter::C_SnapshotSkips);
          continue;
        }
        // lower_bound, not index arithmetic: BP_Shed leaves Seq gaps.
        size_t Split = static_cast<size_t>(
            std::lower_bound(Batch.begin() + Begin, Batch.end(),
                             Cut.FirstSeq,
                             [](const Action &A, uint64_t S) {
                               return A.Seq < S;
                             }) -
            Batch.begin());
        routeRange(Batch, Begin, Split, Route, TC);
        Begin = Split;
        RoutedUpto = Cut.FirstSeq;
        takeSnapshot(Cut.Index, Cut.FirstSeq);
      }
    }
    routeRange(Batch, Begin, Batch.size(), Route, TC);
    RoutedUpto = LastSeq + 1;
    if (Telem)
      Telem->noteConsumed(LastSeq + 1);
    if (Tracer)
      Tracer->noteCheckSpan(FirstSeq, LastSeq, NumActions);
    // Checked-prefix reclamation: everything this thread fed inline is
    // checked through LastSeq; with a pool, the watermark stops at the
    // oldest record still pending on any object.
    if (Config.Backpressure.SegmentBytes) {
      uint64_t Checked =
          Pool ? Pool->checkedWatermark(LastSeq + 1) : LastSeq + 1;
      TheLog->reclaimCheckedPrefix(Checked);
    }
    if (AC) {
      // One control step per consumed batch: lag is the append frontier
      // minus the consumed frontier (saturating — shed gaps cannot push
      // the consumed frontier past the ticket counter, but be safe).
      uint64_t Appended = TheLog->appendCount();
      uint64_t Lag = Appended > LastSeq + 1 ? Appended - (LastSeq + 1) : 0;
      if (AC->observe(Lag, LastSeq, telemetryNowNanos())) {
        AdaptiveController::Transition T = AC->lastTransition();
        if (Tracer)
          Tracer->noteVerifierInstant(
              LastSeq, std::string("policy ") +
                           (T.Escalation ? "escalated" : "de-escalated") +
                           ": " + T.str() + " (lag " +
                           std::to_string(T.LagRecords) + ")");
        // Wake anyone parked under the old policy's wait predicate so
        // the new rung takes effect without waiting for organic churn.
        TheLog->onPolicyChange();
      }
      PumpBatch = AC->batchTarget();
      if (Tracer && Telem) {
        Tracer->noteGauge(LastSeq, "pump_batch_target",
                          Telem->gauge(Gauge::G_PumpBatchTarget));
        if (AC->dynamicPolicy())
          Tracer->noteGauge(LastSeq, "policy_active",
                            Telem->gauge(Gauge::G_PolicyActive));
      }
    }
    if (Tracer && Telem && Config.Backpressure.Enabled) {
      Tracer->noteGauge(LastSeq, "pending_records",
                        Telem->gauge(Gauge::G_PendingRecords));
      Tracer->noteGauge(LastSeq, "tail_bytes",
                        Telem->gauge(Gauge::G_TailBytes));
      if (Config.Backpressure.SegmentBytes)
        Tracer->noteGauge(LastSeq, "segments_live",
                          Telem->gauge(Gauge::G_SegmentsLive));
    }
  }
  if (Pool)
    Pool->drainAndJoin();
  for (auto &O : Objects) {
    O->Checker->finish();
    if (O->Checker->hasViolation()) {
      ViolationFlag.store(true, std::memory_order_release);
      publishObjectViolations(*O);
    }
  }
  // Everything is checked now; release any remaining reclaimable
  // segments (the active one is always kept).
  if (Config.Backpressure.SegmentBytes)
    TheLog->reclaimCheckedPrefix(TheLog->appendCount());
}

void Verifier::start() {
  assert(!Started && "start called twice");
  assert(!Objects.empty() &&
         "start with no registered object (registerObject first)");
  Started = true;
  if (Config.Online) {
    if (Config.CheckerThreads > 1)
      Pool = std::make_unique<CheckerPool>(*this, Config.CheckerThreads);
    // BP_Shed needs to know which calls start observer-only executions;
    // the registered specs are the authority. Installed before any
    // producer appends (the classifier runs under the log's admission
    // lock, concurrently with checker-side isObserver calls — specs
    // answer it as a pure const query). A dynamic policy that can
    // escalate into BP_Shed needs the classifier armed up front too.
    if (Config.Backpressure.Enabled &&
        (Config.Backpressure.Policy == BackpressurePolicy::BP_Shed ||
         (Ctl && Ctl->canReachShed()))) {
      auto Classifier = [this](const Action &A) {
        return A.Obj < Objects.size() &&
               Objects[A.Obj]->S->isObserver(A.Method);
      };
      TheLog->setShedClassifier(Classifier);
      if (Pool)
        Pool->setShedClassifier(Classifier);
    }
    VerifyThread = std::thread([this] { pump(); });
  }
}

VerifierReport Verifier::finish() {
  assert(Started && "finish before start");
  assert(!Done && "finish called twice");
  Done = true;
  TheLog->close();
  if (Config.Online)
    VerifyThread.join();
  else
    pump();

  VerifierReport R;
  for (auto &OS : Objects) {
    ObjectReport OR;
    OR.Id = OS->Id;
    OR.Name = OS->Name;
    OR.Stats = OS->Checker->stats();
    OR.Records = OS->Routed;
    OR.Violations = OS->Checker->violations();
    Name Tag = OS->Name.empty() ? Name() : internName(OS->Name);
    for (Violation &V : OR.Violations) {
      V.Obj = OS->Id;
      V.Object = Tag;
    }
    R.Stats.merge(OR.Stats);
    R.Violations.insert(R.Violations.end(), OR.Violations.begin(),
                        OR.Violations.end());
    R.Objects.push_back(std::move(OR));
  }
  // Merge the per-object violation lists back into witness order.
  sortViolationsBySeq(R.Violations);
  if (UnroutedRecords) {
    Violation V;
    V.Kind = ViolationKind::VK_Instrumentation;
    V.Seq = FirstUnroutedSeq;
    V.Message = std::to_string(UnroutedRecords) +
                " log records reference unregistered object ids (hooks "
                "outliving their verifier, or log corruption)";
    R.Violations.push_back(V);
    ViolationFlag.store(true, std::memory_order_release);
  }
  R.LogRecords = TheLog->appendCount();
  R.LogBytes = TheLog->byteCount();
  R.Backpressure = TheLog->backpressureStats();
  if (Pool)
    R.Backpressure.merge(Pool->stats());
  if (Ctl) {
    R.Adaptive.Enabled = true;
    R.Adaptive.Escalations = Ctl->escalations();
    R.Adaptive.Deescalations = Ctl->deescalations();
    R.Adaptive.BatchTargetFinal = Ctl->batchTarget();
    R.Adaptive.BatchTargetHwm = Ctl->batchTargetHwm();
    R.Adaptive.FinalPolicy = backpressurePolicyName(Ctl->policy());
    R.Adaptive.Transitions = Ctl->transitions();
  }
  if (R.Backpressure.ShedRecords) {
    // Coverage degradation is a note, not a violation: the records that
    // were checked got sound verdicts, the shed observers simply were
    // not checked (docs/ARCHITECTURE.md, "Bounded pipeline").
    R.Notes.push_back(
        std::string(violationKindName(ViolationKind::VK_Degraded)) + ": " +
        std::to_string(R.Backpressure.ShedRecords) +
        " observer record(s) shed under backpressure (BP_Shed); "
        "coverage reduced, verdicts on checked records unaffected");
    if (!Config.ForensicPrefix.empty()) {
      // The degraded verdict gets its own bundle: what was dropped and
      // how hard the pipeline was pushed when it happened.
      std::string Path = Config.ForensicPrefix + ".degraded.forensic.json";
      std::string Doc =
          "{\"schema\":\"vyrd-forensic-v1\",\"degraded\":{"
          "\"shed_records\":" +
          std::to_string(R.Backpressure.ShedRecords) +
          ",\"pending_records_hwm\":" +
          std::to_string(R.Backpressure.PendingRecordsHwm) +
          ",\"note\":\"" + jsonEscape(R.Notes.back()) + "\"}}\n";
      if (FILE *F = std::fopen(Path.c_str(), "wb")) {
        std::fwrite(Doc.data(), 1, Doc.size(), F);
        std::fclose(F);
        std::lock_guard Lock(Live.M);
        Live.ForensicFiles.push_back(std::move(Path));
      } else {
        std::fprintf(stderr, "vyrd: cannot write forensic bundle %s\n",
                     Path.c_str());
      }
    }
  }
  {
    std::lock_guard Lock(Live.M);
    R.ForensicFiles = Live.ForensicFiles;
  }
  if (Telem) {
    Telem->stopSampler();
    R.TelemetryEnabled = true;
    R.Telemetry = Telem->snapshot();
  }
  if (Tracer) {
    // Violations become instants on the verifier track, so the trace
    // shows *where* in the witness each was detected.
    for (const Violation &V : R.Violations) {
      std::string Label = std::string("violation: ") + violationKindName(V.Kind);
      if (V.Object.valid())
        Label += " [" + std::string(V.Object.str()) + "]";
      Tracer->noteVerifierInstant(V.Seq, std::move(Label));
    }
    R.TraceEvents = Tracer->eventCount();
    if (!Tracer->writeFile(Config.Telemetry.TraceFilePath))
      std::fprintf(stderr, "vyrd: cannot write trace file %s\n",
                   Config.Telemetry.TraceFilePath.c_str());
  }
  return R;
}
