//===- Verifier.cpp - Online/offline verification driver ------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Verifier.h"

#include <cassert>
#include <cstdio>

using namespace vyrd;

std::string VerifierReport::str() const {
  std::string Out;
  Out += "log: " + std::to_string(LogRecords) + " records";
  if (LogBytes)
    Out += ", " + std::to_string(LogBytes) + " bytes";
  Out += "\nchecked: " + std::to_string(Stats.MethodsChecked) + " methods (" +
         std::to_string(Stats.CommitsProcessed) + " commits, " +
         std::to_string(Stats.ObserversChecked) + " observers)\n";
  if (Violations.empty())
    Out += "no refinement violations\n";
  else {
    Out += std::to_string(Violations.size()) + " violation(s):\n";
    for (const Violation &V : Violations)
      Out += "  " + V.str() + "\n";
  }
  if (TelemetryEnabled)
    Out += Telemetry.str();
  if (TraceEvents)
    Out += "trace: " + std::to_string(TraceEvents) + " events\n";
  return Out;
}

std::string VerifierReport::json() const {
  std::string Out = "{";
  Out += "\"ok\":" + std::string(ok() ? "true" : "false");
  Out += ",\"violations\":" + std::to_string(Violations.size());
  Out += ",\"log_records\":" + std::to_string(LogRecords);
  Out += ",\"log_bytes\":" + std::to_string(LogBytes);
  Out += ",\"stats\":{";
  Out += "\"actions_fed\":" + std::to_string(Stats.ActionsFed);
  Out += ",\"methods_checked\":" + std::to_string(Stats.MethodsChecked);
  Out += ",\"commits_processed\":" + std::to_string(Stats.CommitsProcessed);
  Out += ",\"observers_checked\":" + std::to_string(Stats.ObserversChecked);
  Out += ",\"view_comparisons\":" + std::to_string(Stats.ViewComparisons);
  Out += ",\"audits\":" + std::to_string(Stats.Audits);
  Out += ",\"max_queue_depth\":" + std::to_string(Stats.MaxQueueDepth);
  Out += ",\"replay_ns\":" + std::to_string(Stats.ReplayNanos);
  Out += ",\"spec_ns\":" + std::to_string(Stats.SpecNanos);
  Out += ",\"view_compare_ns\":" + std::to_string(Stats.ViewCompareNanos);
  Out += "}";
  if (TelemetryEnabled)
    Out += ",\"telemetry\":" + Telemetry.json();
  if (TraceEvents)
    Out += ",\"trace_events\":" + std::to_string(TraceEvents);
  Out += "}";
  return Out;
}

Verifier::Verifier(std::unique_ptr<Spec> S, std::unique_ptr<Replayer> R,
                   VerifierConfig Config)
    : TheSpec(std::move(S)), TheReplayer(std::move(R)), Config(Config) {
  assert(TheSpec && "Verifier requires a specification");
  LogBackend B = Config.Backend;
  if (B == LogBackend::LB_Auto)
    B = Config.LogFilePath.empty() ? LogBackend::LB_Memory
                                   : LogBackend::LB_File;
  switch (B) {
  case LogBackend::LB_Auto: // resolved above
  case LogBackend::LB_Memory:
    TheLog = std::make_unique<MemoryLog>();
    break;
  case LogBackend::LB_File: {
    assert(!Config.LogFilePath.empty() && "LB_File requires LogFilePath");
    bool Valid = false;
    auto FL = std::make_unique<FileLog>(Config.LogFilePath, Valid);
    assert(Valid && "cannot open log file");
    (void)Valid;
    TheLog = std::move(FL);
    break;
  }
  case LogBackend::LB_Buffered: {
    BufferedLog::Options BO;
    BO.ShardCapacity = Config.ShardCapacity;
    BO.FilePath = Config.LogFilePath;
    auto BL = std::make_unique<BufferedLog>(std::move(BO));
    assert(BL->valid() && "cannot open log file");
    TheLog = std::move(BL);
    break;
  }
  }
  if (Config.Telemetry.Enabled) {
    Telemetry::Options TO;
    TO.SampleIntervalUs = Config.Telemetry.SampleIntervalUs;
    TO.WatchdogQuietMs = Config.Telemetry.WatchdogQuietMs;
    if (TO.WatchdogQuietMs && !TO.SampleIntervalUs)
      TO.SampleIntervalUs = 1000; // the watchdog needs sample points
    TO.ProducerProbe = [L = TheLog.get()] { return L->appendCount(); };
    Telem = std::make_unique<Telemetry>(std::move(TO));
    TheLog->setTelemetry(Telem.get());
  }
  if (!Config.Telemetry.TraceFilePath.empty())
    Tracer = std::make_unique<TraceRecorder>();
  Checker = std::make_unique<RefinementChecker>(
      *TheSpec, TheReplayer.get(), Config.Checker);
  Checker->setTelemetry(Telem.get());
}

Verifier::~Verifier() {
  if (Started && !Done)
    (void)finish();
}

Hooks Verifier::hooks() const {
  LogLevel Level = Config.Checker.Mode == CheckMode::CM_ViewRefinement
                       ? LogLevel::LL_View
                       : LogLevel::LL_IO;
  return Hooks(TheLog.get(), Level, Telem.get());
}

void Verifier::pump() {
  // Batch consumption amortizes one log wakeup + lock round trip over up
  // to PumpBatch records; the checker itself stays record-at-a-time.
  constexpr size_t PumpBatch = 256;
  std::vector<Action> Batch;
  Batch.reserve(PumpBatch);
  TelemetryCell *TC =
      telemetryCompiledIn() && Telem ? &Telem->cell() : nullptr;
  while (TheLog->nextBatch(Batch, PumpBatch)) {
    uint64_t T0 = TC ? telemetryNowNanos() : 0;
    for (const Action &A : Batch) {
      if (Tracer)
        Tracer->noteAction(A);
      Checker->feed(A);
    }
    if (TC) {
      TC->count(Counter::C_CheckerBatches);
      TC->count(Counter::C_CheckerActions, Batch.size());
      TC->record(Histo::H_FeedBatch, Batch.size());
      TC->record(Histo::H_FeedNs, telemetryNowNanos() - T0);
    }
    if (Telem)
      Telem->noteConsumed(Batch.back().Seq + 1);
    if (Tracer)
      Tracer->noteCheckSpan(Batch.front().Seq, Batch.back().Seq,
                            Batch.size());
    if (Checker->hasViolation())
      ViolationFlag.store(true, std::memory_order_release);
  }
  Checker->finish();
  if (Checker->hasViolation())
    ViolationFlag.store(true, std::memory_order_release);
}

void Verifier::start() {
  assert(!Started && "start called twice");
  Started = true;
  if (Config.Online)
    VerifyThread = std::thread([this] { pump(); });
}

VerifierReport Verifier::finish() {
  assert(Started && "finish before start");
  assert(!Done && "finish called twice");
  Done = true;
  TheLog->close();
  if (Config.Online)
    VerifyThread.join();
  else
    pump();

  VerifierReport R;
  R.Violations = Checker->violations();
  R.Stats = Checker->stats();
  R.LogRecords = TheLog->appendCount();
  R.LogBytes = TheLog->byteCount();
  if (Telem) {
    Telem->stopSampler();
    R.TelemetryEnabled = true;
    R.Telemetry = Telem->snapshot();
  }
  if (Tracer) {
    // Violations become instants on the verifier track, so the trace
    // shows *where* in the witness each was detected.
    for (const Violation &V : R.Violations)
      Tracer->noteVerifierInstant(
          V.Seq, std::string("violation: ") + violationKindName(V.Kind));
    R.TraceEvents = Tracer->eventCount();
    if (!Tracer->writeFile(Config.Telemetry.TraceFilePath))
      std::fprintf(stderr, "vyrd: cannot write trace file %s\n",
                   Config.Telemetry.TraceFilePath.c_str());
  }
  return R;
}
