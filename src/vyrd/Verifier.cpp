//===- Verifier.cpp - Online/offline verification driver ------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Verifier.h"

#include <cassert>

using namespace vyrd;

std::string VerifierReport::str() const {
  std::string Out;
  Out += "log: " + std::to_string(LogRecords) + " records";
  if (LogBytes)
    Out += ", " + std::to_string(LogBytes) + " bytes";
  Out += "\nchecked: " + std::to_string(Stats.MethodsChecked) + " methods (" +
         std::to_string(Stats.CommitsProcessed) + " commits, " +
         std::to_string(Stats.ObserversChecked) + " observers)\n";
  if (Violations.empty()) {
    Out += "no refinement violations\n";
    return Out;
  }
  Out += std::to_string(Violations.size()) + " violation(s):\n";
  for (const Violation &V : Violations)
    Out += "  " + V.str() + "\n";
  return Out;
}

Verifier::Verifier(std::unique_ptr<Spec> S, std::unique_ptr<Replayer> R,
                   VerifierConfig Config)
    : TheSpec(std::move(S)), TheReplayer(std::move(R)), Config(Config) {
  assert(TheSpec && "Verifier requires a specification");
  LogBackend B = Config.Backend;
  if (B == LogBackend::LB_Auto)
    B = Config.LogFilePath.empty() ? LogBackend::LB_Memory
                                   : LogBackend::LB_File;
  switch (B) {
  case LogBackend::LB_Auto: // resolved above
  case LogBackend::LB_Memory:
    TheLog = std::make_unique<MemoryLog>();
    break;
  case LogBackend::LB_File: {
    assert(!Config.LogFilePath.empty() && "LB_File requires LogFilePath");
    bool Valid = false;
    auto FL = std::make_unique<FileLog>(Config.LogFilePath, Valid);
    assert(Valid && "cannot open log file");
    (void)Valid;
    TheLog = std::move(FL);
    break;
  }
  case LogBackend::LB_Buffered: {
    BufferedLog::Options BO;
    BO.ShardCapacity = Config.ShardCapacity;
    BO.FilePath = Config.LogFilePath;
    auto BL = std::make_unique<BufferedLog>(std::move(BO));
    assert(BL->valid() && "cannot open log file");
    TheLog = std::move(BL);
    break;
  }
  }
  Checker = std::make_unique<RefinementChecker>(
      *TheSpec, TheReplayer.get(), Config.Checker);
}

Verifier::~Verifier() {
  if (Started && !Done)
    (void)finish();
}

Hooks Verifier::hooks() const {
  LogLevel Level = Config.Checker.Mode == CheckMode::CM_ViewRefinement
                       ? LogLevel::LL_View
                       : LogLevel::LL_IO;
  return Hooks(TheLog.get(), Level);
}

void Verifier::pump() {
  // Batch consumption amortizes one log wakeup + lock round trip over up
  // to PumpBatch records; the checker itself stays record-at-a-time.
  constexpr size_t PumpBatch = 256;
  std::vector<Action> Batch;
  Batch.reserve(PumpBatch);
  while (TheLog->nextBatch(Batch, PumpBatch)) {
    for (const Action &A : Batch)
      Checker->feed(A);
    if (Checker->hasViolation())
      ViolationFlag.store(true, std::memory_order_release);
  }
  Checker->finish();
  if (Checker->hasViolation())
    ViolationFlag.store(true, std::memory_order_release);
}

void Verifier::start() {
  assert(!Started && "start called twice");
  Started = true;
  if (Config.Online)
    VerifyThread = std::thread([this] { pump(); });
}

VerifierReport Verifier::finish() {
  assert(Started && "finish before start");
  assert(!Done && "finish called twice");
  Done = true;
  TheLog->close();
  if (Config.Online)
    VerifyThread.join();
  else
    pump();

  VerifierReport R;
  R.Violations = Checker->violations();
  R.Stats = Checker->stats();
  R.LogRecords = TheLog->appendCount();
  R.LogBytes = TheLog->byteCount();
  return R;
}
