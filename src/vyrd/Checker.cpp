//===- Checker.cpp - I/O and view refinement checking ---------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Checker.h"

#include "vyrd/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace vyrd;

namespace {

/// Entry timestamp for a phase-timing region, or 0 when timing is off.
uint64_t tickIf(bool On) { return On ? telemetryNowNanos() : 0; }

} // namespace

const char *vyrd::violationKindName(ViolationKind K) {
  switch (K) {
  case ViolationKind::VK_MutatorMismatch:
    return "mutator-mismatch";
  case ViolationKind::VK_ObserverMismatch:
    return "observer-mismatch";
  case ViolationKind::VK_ViewMismatch:
    return "view-mismatch";
  case ViolationKind::VK_InvariantFailed:
    return "invariant-failed";
  case ViolationKind::VK_Instrumentation:
    return "instrumentation";
  case ViolationKind::VK_Degraded:
    return "degraded";
  }
  assert(false && "unknown ViolationKind");
  return "?";
}

std::string Violation::str() const {
  std::string Out = std::string(violationKindName(Kind)) + " at #" +
                    std::to_string(Seq) + " t" + std::to_string(Tid);
  if (Object.valid()) {
    Out += " [";
    Out += Object.str();
    Out += "]";
  }
  if (Method.valid()) {
    Out += " ";
    Out += Method.str();
  }
  Out += ": " + Message +
         " [methods checked: " + std::to_string(MethodsChecked) + "]";
  return Out;
}

void CheckerStats::merge(const CheckerStats &Other) {
  ActionsFed += Other.ActionsFed;
  MethodsChecked += Other.MethodsChecked;
  CommitsProcessed += Other.CommitsProcessed;
  ObserversChecked += Other.ObserversChecked;
  ViewComparisons += Other.ViewComparisons;
  Audits += Other.Audits;
  MaxQueueDepth = std::max(MaxQueueDepth, Other.MaxQueueDepth);
  ReplayNanos += Other.ReplayNanos;
  SpecNanos += Other.SpecNanos;
  ViewCompareNanos += Other.ViewCompareNanos;
  ObsMemoHits += Other.ObsMemoHits;
  ObsMemoMisses += Other.ObsMemoMisses;
  SpecVersionBumps += Other.SpecVersionBumps;
}

RefinementChecker::RefinementChecker(Spec &S, Replayer *R,
                                     CheckerConfig Config)
    : TheSpec(S), TheReplayer(R), Config(Config) {
  assert((Config.Mode == CheckMode::CM_IORefinement || R) &&
         "view refinement requires a Replayer");
  if (Config.Mode == CheckMode::CM_ViewRefinement) {
    // viewI and viewS are initialized to the same value (Sec. 5.1): both
    // sides must agree on the initial state.
    TheReplayer->buildView(ViewI);
    TheSpec.buildView(ViewS);
    if (!ViewI.deepEquals(ViewS))
      report(ViolationKind::VK_Instrumentation, 0, 0, Name(),
             "initial viewI != initial viewS: " + View::diff(ViewI, ViewS));
  }
}

RefinementChecker::~RefinementChecker() = default;

void RefinementChecker::report(ViolationKind K, uint64_t Seq, ThreadId Tid,
                               Name Method, std::string Message) {
  if (Violations.size() >= Config.MaxViolations)
    return;
  if (Config.StopAtFirstViolation && !Violations.empty())
    return;
  Violation V;
  V.Kind = K;
  V.Seq = Seq;
  V.Tid = Tid;
  V.Method = Method;
  V.Message = std::move(Message);
  V.MethodsChecked = Stats.MethodsChecked;
  for (size_t I = 0, N = RecentActions.size(); I != N; ++I)
    V.Context += RecentActions[I].str() + "\n";
  Violations.push_back(std::move(V));
}

void RefinementChecker::feed(const Action &A) {
  assert(!Finished && "feed after finish");
  ++Stats.ActionsFed;
  if (Config.StopAtFirstViolation && hasViolation())
    return;
  if (Config.ContextRecords) {
    RecentActions.push_back(A);
    if (RecentActions.size() > Config.ContextRecords)
      RecentActions.pop_front();
  }

  ExecPtr *Slot = findOpenExec(A.Tid);
  Exec *X = Slot ? Slot->get() : nullptr;

  switch (A.Kind) {
  case ActionKind::AK_Call: {
    if (X) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, A.Method,
             "nested method call while " + std::string(X->Method.str()) +
                 " is still executing");
      break;
    }
    ExecPtr E = acquireExec();
    E->Tid = A.Tid;
    E->Method = A.Method;
    E->Args = A.Args;
    E->CallSeq = A.Seq;
    E->IsObserver = TheSpec.isObserver(A.Method);
    insertOpenExec(A.Tid, E);
    if (E->IsObserver)
      Events.push_back(Event{EventKind::EK_ObsBegin, A, E});
    break;
  }
  case ActionKind::AK_Return: {
    if (!X) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, A.Method,
             "return with no open method execution");
      break;
    }
    X->Ret = A.Ret;
    X->HasRet = true;
    if (X->InBlock)
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, X->Method,
             "method returned inside an open commit block");
    Events.push_back(Event{X->IsObserver ? EventKind::EK_ObsEnd
                                         : EventKind::EK_MutEnd,
                           A, std::move(*Slot)});
    eraseOpenExec(A.Tid, Slot);
    break;
  }
  case ActionKind::AK_Commit: {
    if (!X) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, Name(),
             "commit with no open method execution");
      break;
    }
    if (X->IsObserver) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, X->Method,
             "observer methods must not commit");
      break;
    }
    if (X->HasCommit) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, X->Method,
             "second commit in one method execution (exactly one commit "
             "action per execution path is required)");
      break;
    }
    X->HasCommit = true;
    X->CommitInBlock = X->InBlock;
    X->OpenAtCommit = OpenExecCount;
    Events.push_back(Event{EventKind::EK_Commit, A, *Slot});
    break;
  }
  case ActionKind::AK_Write:
  case ActionKind::AK_ReplayOp: {
    if (X && X->InBlock) {
      X->BlockWrites.push_back(A);
      break;
    }
    Events.push_back(Event{EventKind::EK_Write, A, nullptr});
    break;
  }
  case ActionKind::AK_BlockBegin: {
    if (!X) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, Name(),
             "commit block outside a method execution");
      break;
    }
    if (X->InBlock) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, X->Method,
             "nested commit blocks are not supported");
      break;
    }
    X->InBlock = true;
    break;
  }
  case ActionKind::AK_BlockEnd: {
    if (!X || !X->InBlock) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid,
             X ? X->Method : Name(), "unmatched commit block end");
      break;
    }
    X->InBlock = false;
    if (X->HasCommit && X->CommitInBlock && !X->BlockDone) {
      // This block contained the commit: seal its writes; they are applied
      // atomically at the commit event, which may now proceed.
      X->CommitBlockWrites = std::move(X->BlockWrites);
      X->BlockWrites.clear();
      X->BlockDone = true;
      break;
    }
    // A block with no commit inside (e.g. a preparatory atomic region):
    // apply its writes atomically at the block end position.
    for (Action &W : X->BlockWrites)
      Events.push_back(Event{EventKind::EK_Write, std::move(W), nullptr});
    X->BlockWrites.clear();
    break;
  }
  }

  drain();
}

void RefinementChecker::drain() {
  if (Events.size() > Stats.MaxQueueDepth)
    Stats.MaxQueueDepth = Events.size();
  while (!Events.empty()) {
    if (!processHead())
      return;
    // The ring keeps popped slots alive to recycle their storage; drop
    // the Exec reference now so a retired slot cannot pin a pooled Exec
    // (acquireExec reuses an Exec only at use_count == 1).
    Events.front().E = nullptr;
    Events.pop_front();
  }
}

bool RefinementChecker::processHead() {
  Event &Ev = Events.front();
  switch (Ev.Kind) {
  case EventKind::EK_Write:
    applyUpdate(Ev.A);
    return true;

  case EventKind::EK_Commit: {
    Exec &X = *Ev.E;
    // Return-value lookahead: stall until the execution's return is fed.
    if (!X.HasRet)
      return false;
    // Commit inside a block: stall until the block closes so the block's
    // writes (including those logged after the commit) apply atomically.
    if (X.CommitInBlock && !X.BlockDone)
      return false;
    processCommit(Ev);
    return true;
  }

  case EventKind::EK_ObsBegin: {
    Exec &X = *Ev.E;
    // The observer's return value is needed to evaluate the window states;
    // stall until it is known (Sec. 4.3).
    if (!X.HasRet)
      return false;
    uint64_t T0 = tickIf(Config.CollectTimings);
    if (Config.MemoizeObservers) {
      // Signature hashes are computed once per execution, here, where the
      // return value first becomes known.
      X.ArgsHash = X.Args.hash();
      X.RetHash = X.Ret.hash();
    }
    X.Satisfied = observerAllowed(X);
    if (T0)
      Stats.SpecNanos += telemetryNowNanos() - T0;
    OpenObservers.push_back(Ev.E);
    return true;
  }

  case EventKind::EK_ObsEnd: {
    Exec &X = *Ev.E;
    // Swap-and-pop: the open-observer set is unordered (every member is
    // (re)evaluated at each commit and returnAllowed is const, so the
    // iteration order cannot be observed).
    for (size_t I = 0; I < OpenObservers.size(); ++I) {
      if (OpenObservers[I].get() != &X)
        continue;
      OpenObservers[I] = std::move(OpenObservers.back());
      OpenObservers.pop_back();
      break;
    }
    if (!X.Satisfied) {
      std::string Msg = std::string(X.Method.str()) + "(";
      for (size_t I = 0; I < X.Args.size(); ++I) {
        if (I)
          Msg += ", ";
        Msg += X.Args[I].str();
      }
      Msg += ") -> " + X.Ret.str() +
             " is inconsistent with every specification state in its "
             "call-to-return window";
      report(ViolationKind::VK_ObserverMismatch, Ev.A.Seq, X.Tid, X.Method,
             std::move(Msg));
    }
    ++Stats.ObserversChecked;
    ++Stats.MethodsChecked;
    recycleExec(std::move(Ev.E));
    return true;
  }

  case EventKind::EK_MutEnd: {
    Exec &X = *Ev.E;
    if (!X.HasCommit)
      report(ViolationKind::VK_Instrumentation, Ev.A.Seq, X.Tid, X.Method,
             "mutator execution returned without a commit action");
    // Close the diagnosis window: a signature that never became enabled
    // anywhere between commit and return is unlikely to be a misplaced
    // annotation. Swap-and-pop: each entry is retried independently, so
    // like OpenObservers the set's order is not semantically relevant.
    for (size_t I = 0; I < FailedMutators.size(); ++I) {
      if (FailedMutators[I].first.get() != &X)
        continue;
      Violations[FailedMutators[I].second].Message +=
          "; diagnosis: the signature never became enabled in the "
          "method's window — likely a genuine refinement violation "
          "(Sec. 4.1)";
      FailedMutators[I] = std::move(FailedMutators.back());
      FailedMutators.pop_back();
      break;
    }
    recycleExec(std::move(Ev.E));
    return true;
  }
  }
  assert(false && "unknown EventKind");
  return true;
}

void RefinementChecker::applyUpdate(const Action &A) {
  if (Config.Mode != CheckMode::CM_ViewRefinement)
    return;
  assert(TheReplayer && "view mode requires a replayer");
  uint64_t T0 = tickIf(Config.CollectTimings);
  TheReplayer->applyUpdate(A, ViewI);
  if (T0)
    Stats.ReplayNanos += telemetryNowNanos() - T0;
}

void RefinementChecker::processCommit(Event &Ev) {
  Exec &X = *Ev.E;
  bool ViewMode = Config.Mode == CheckMode::CM_ViewRefinement;

  // Apply the commit block's writes atomically at this point (Sec. 5.2's
  // tau -> tau' conversion).
  if (ViewMode && !X.CommitBlockWrites.empty()) {
    uint64_t T0 = tickIf(Config.CollectTimings);
    for (const Action &W : X.CommitBlockWrites)
      TheReplayer->applyUpdate(W, ViewI);
    if (T0)
      Stats.ReplayNanos += telemetryNowNanos() - T0;
  }
  X.CommitBlockWrites.clear();

  // Drive the specification with the execution's signature.
  uint64_t SpecT0 = tickIf(Config.CollectTimings);
  bool SpecOk = TheSpec.applyMutator(X.Method, X.Args, X.Ret, ViewS);
  if (SpecT0)
    Stats.SpecNanos += telemetryNowNanos() - SpecT0;
  if (SpecOk) {
    // The spec state moved: cached observer verdicts are now stale (they
    // stay in the memo table keyed by the old version and are simply
    // never consulted again).
    ++SpecVersion;
    ++Stats.SpecVersionBumps;
  }
  if (!SpecOk) {
    std::string Msg = "specification cannot execute " +
                      std::string(X.Method.str()) + "(";
    for (size_t I = 0; I < X.Args.size(); ++I) {
      if (I)
        Msg += ", ";
      Msg += X.Args[I].str();
    }
    Msg += ") -> " + X.Ret.str() + " at this point in the witness";
    size_t ViolationIdx = Violations.size();
    report(ViolationKind::VK_MutatorMismatch, Ev.A.Seq, X.Tid, X.Method,
           Msg);
    // Sec. 4.1: distinguish a misplaced commit annotation from a genuine
    // violation by retrying the signature at later window states.
    if (Config.DiagnoseCommitPoints && ViolationIdx < Violations.size())
      FailedMutators.emplace_back(Ev.E, ViolationIdx);
  }
  ++Stats.CommitsProcessed;

  // The Sec. 8 ablation restricts state comparison to quiescent commits
  // (commit-atomicity style); the default compares at every commit.
  bool Compare = !Config.QuiescentOnly || X.OpenAtCommit <= 1;
  if (ViewMode && Compare &&
      !(Config.StopAtFirstViolation && hasViolation())) {
    uint64_t T0 = tickIf(Config.CollectTimings || Telem);
    compareViews(X, Ev.A.Seq);
    std::string InvMsg;
    if (!TheReplayer->checkInvariants(InvMsg))
      report(ViolationKind::VK_InvariantFailed, Ev.A.Seq, X.Tid, X.Method,
             std::move(InvMsg));
    if (T0) {
      uint64_t Ns = telemetryNowNanos() - T0;
      if (Config.CollectTimings)
        Stats.ViewCompareNanos += Ns;
      if (telemetryCompiledIn() && Telem)
        Telem->record(Histo::H_ViewCompareNs, Ns);
    }
  }

  // Retry failed mutators *after* this commit's own comparison: the late
  // application models the failed method taking effect at (or after) this
  // point, which is also when its implementation-side writes land.
  if (!FailedMutators.empty())
    retryFailedMutators(Ev.A.Seq);

  // Every open observer's window includes this commit: evaluate the new
  // specification state against each still-unsatisfied return value.
  evalOpenObservers();

  ++Stats.MethodsChecked;
}

void RefinementChecker::retryFailedMutators(uint64_t Seq) {
  uint64_t T0 = tickIf(Config.CollectTimings);
  for (size_t I = 0; I < FailedMutators.size();) {
    auto &[E, ViolationIdx] = FailedMutators[I];
    if (!TheSpec.applyMutator(E->Method, E->Args, E->Ret, ViewS)) {
      ++I;
      continue;
    }
    // The signature is enabled here: apply it (recovering the spec state)
    // and annotate the original violation. The recovery mutated the spec,
    // so cached observer verdicts must be invalidated too.
    ++SpecVersion;
    ++Stats.SpecVersionBumps;
    Violations[ViolationIdx].Message +=
        "; diagnosis: the signature became enabled after the commit at #" +
        std::to_string(Seq) +
        " — the commit-point annotation is likely too early (Sec. 4.1)";
    FailedMutators[I] = std::move(FailedMutators.back());
    FailedMutators.pop_back();
  }
  if (T0)
    Stats.SpecNanos += telemetryNowNanos() - T0;
}

RefinementChecker::MemoSlot &RefinementChecker::memoSlotFor(const Exec &X) {
  if (ObsMemo.empty())
    ObsMemo.resize(256);
  // Bound the table: a workload with unbounded distinct signatures would
  // otherwise grow it forever. Resetting loses only cache warmth.
  if (ObsMemoUsed >= Config.MemoMaxEntries) {
    std::fill(ObsMemo.begin(), ObsMemo.end(), MemoSlot());
    ObsMemoUsed = 0;
  } else if (ObsMemoUsed * 4 >= ObsMemo.size() * 3) {
    growMemo(ObsMemo.size() * 2);
  }
  size_t Mask = ObsMemo.size() - 1;
  size_t I = static_cast<size_t>(X.ArgsHash ^ (X.RetHash * 0x9e3779b9) ^
                                 (uint64_t(X.Method.id()) << 32)) &
             Mask;
  // The hashes route the probe; occupancy is decided by equality of the
  // stored signature, so colliding signatures occupy distinct slots.
  while (ObsMemo[I].Used &&
         !(ObsMemo[I].Method == X.Method && ObsMemo[I].ArgsHash == X.ArgsHash &&
           ObsMemo[I].RetHash == X.RetHash && ObsMemo[I].Args == X.Args &&
           ObsMemo[I].Ret == X.Ret))
    I = (I + 1) & Mask;
  return ObsMemo[I];
}

void RefinementChecker::growMemo(size_t NewSlots) {
  std::vector<MemoSlot> Old;
  Old.swap(ObsMemo);
  ObsMemo.resize(NewSlots);
  size_t Mask = NewSlots - 1;
  for (MemoSlot &S : Old) {
    if (!S.Used)
      continue;
    size_t I = static_cast<size_t>(S.ArgsHash ^ (S.RetHash * 0x9e3779b9) ^
                                   (uint64_t(S.Method.id()) << 32)) &
               Mask;
    while (ObsMemo[I].Used)
      I = (I + 1) & Mask;
    ObsMemo[I] = std::move(S);
  }
}

bool RefinementChecker::observerAllowed(Exec &X) {
  X.LastEvalVersion = SpecVersion;
  if (!Config.MemoizeObservers)
    return TheSpec.returnAllowed(X.Method, X.Args, X.Ret);
  MemoSlot &E = memoSlotFor(X);
  if (E.Used && E.Version == SpecVersion) {
    ++Stats.ObsMemoHits;
    return E.Allowed;
  }
  ++Stats.ObsMemoMisses;
  if (!E.Used) {
    E.Used = true;
    E.Method = X.Method;
    E.Args = X.Args;
    E.Ret = X.Ret;
    E.ArgsHash = X.ArgsHash;
    E.RetHash = X.RetHash;
    ++ObsMemoUsed;
  }
  E.Version = SpecVersion;
  E.Allowed = TheSpec.returnAllowed(X.Method, X.Args, X.Ret);
  return E.Allowed;
}

void RefinementChecker::evalOpenObservers() {
  if (OpenObservers.empty())
    return;
  uint64_t T0 = tickIf(Config.CollectTimings);
  for (ExecPtr &ObsP : OpenObservers) {
    Exec &Obs = *ObsP;
    if (Obs.Satisfied)
      continue;
    if (Config.MemoizeObservers && Obs.LastEvalVersion == SpecVersion) {
      // Already answered (negatively) at this exact spec state — e.g. the
      // commit's applyMutator failed, so the state did not move. Counts as
      // a hit: the unmemoized checker would have re-asked the spec here.
      ++Stats.ObsMemoHits;
      continue;
    }
    Obs.Satisfied = observerAllowed(Obs);
  }
  if (T0)
    Stats.SpecNanos += telemetryNowNanos() - T0;
}

RefinementChecker::ExecPtr *RefinementChecker::findOpenExec(ThreadId Tid) {
  if (Tid < DenseTidLimit) {
    if (Tid < OpenExecsDense.size() && OpenExecsDense[Tid])
      return &OpenExecsDense[Tid];
    return nullptr;
  }
  auto It = OpenExecsSparse.find(Tid);
  return It == OpenExecsSparse.end() ? nullptr : &It->second;
}

void RefinementChecker::insertOpenExec(ThreadId Tid, ExecPtr E) {
  if (Tid < DenseTidLimit) {
    if (OpenExecsDense.size() <= Tid)
      OpenExecsDense.resize(std::min<size_t>(
          DenseTidLimit,
          std::max<size_t>(Tid + 1, OpenExecsDense.empty()
                                        ? 16
                                        : OpenExecsDense.size() * 2)));
    OpenExecsDense[Tid] = std::move(E);
  } else {
    OpenExecsSparse[Tid] = std::move(E);
  }
  ++OpenExecCount;
}

void RefinementChecker::eraseOpenExec(ThreadId Tid, ExecPtr *Slot) {
  if (Tid < DenseTidLimit)
    Slot->reset();
  else
    OpenExecsSparse.erase(Tid);
  --OpenExecCount;
}

RefinementChecker::ExecPtr RefinementChecker::acquireExec() {
  while (!ExecPool.empty()) {
    ExecPtr E = std::move(ExecPool.back());
    ExecPool.pop_back();
    // A retired Exec can still be referenced by a stalled event deep in
    // the queue (its window closed out of order); skip those.
    if (E.use_count() != 1)
      continue;
    Exec &X = *E;
    X.Tid = 0;
    X.Method = Name();
    X.Args.clear();
    X.Ret = Value();
    X.CallSeq = 0;
    X.IsObserver = false;
    X.HasRet = false;
    X.HasCommit = false;
    X.CommitInBlock = false;
    X.BlockDone = false;
    X.InBlock = false;
    X.Satisfied = false;
    X.OpenAtCommit = 0;
    X.ArgsHash = 0;
    X.RetHash = 0;
    X.LastEvalVersion = ~uint64_t(0);
    X.BlockWrites.clear();        // clear() keeps the buffer capacity —
    X.CommitBlockWrites.clear();  // that is the point of pooling Execs
    return E;
  }
  return std::make_shared<Exec>();
}

void RefinementChecker::recycleExec(ExecPtr E) {
  if (ExecPool.size() < 256)
    ExecPool.push_back(std::move(E));
}

void RefinementChecker::compareViews(const Exec &X, uint64_t Seq) {
  ++Stats.ViewComparisons;

  if (Config.FullViewRecompute) {
    View FreshI, FreshS;
    TheReplayer->buildView(FreshI);
    TheSpec.buildView(FreshS);
    if (!FreshI.deepEquals(FreshS))
      report(ViolationKind::VK_ViewMismatch, Seq, X.Tid, X.Method,
             "viewI != viewS after commit: " + View::diff(FreshI, FreshS));
    return;
  }

  if (ViewI != ViewS) {
    // Hash mismatch: confirm and produce a precise diff.
    if (!ViewI.deepEquals(ViewS))
      report(ViolationKind::VK_ViewMismatch, Seq, X.Tid, X.Method,
             "viewI != viewS after commit: " + View::diff(ViewI, ViewS));
  }

  if (Config.AuditPeriod && ++CommitsSinceAudit >= Config.AuditPeriod) {
    CommitsSinceAudit = 0;
    runAudit(Seq);
  }
}

void RefinementChecker::runAudit(uint64_t Seq) {
  ++Stats.Audits;
  View FreshI, FreshS;
  TheReplayer->buildView(FreshI);
  TheSpec.buildView(FreshS);
  if (!FreshI.deepEquals(ViewI))
    report(ViolationKind::VK_Instrumentation, Seq, 0, Name(),
           "audit: incrementally maintained viewI diverged from rebuilt "
           "viewI: " +
               View::diff(ViewI, FreshI));
  if (!FreshS.deepEquals(ViewS))
    report(ViolationKind::VK_Instrumentation, Seq, 0, Name(),
           "audit: incrementally maintained viewS diverged from rebuilt "
           "viewS: " +
               View::diff(ViewS, FreshS));
}

void RefinementChecker::finish() {
  if (Finished)
    return;
  Finished = true;
  if (telemetryCompiledIn() && Telem) {
    TelemetryCell &C = Telem->cell();
    if (Stats.ObsMemoHits)
      C.count(Counter::C_ObsMemoHits, Stats.ObsMemoHits);
    if (Stats.ObsMemoMisses)
      C.count(Counter::C_ObsMemoMisses, Stats.ObsMemoMisses);
  }
  if (Config.AllowIncompleteTail)
    return;
  if (!Events.empty()) {
    const Event &Ev = Events.front();
    report(ViolationKind::VK_Instrumentation, Ev.A.Seq, Ev.A.Tid,
           Ev.E ? Ev.E->Method : Name(),
           "log ended with " + std::to_string(Events.size()) +
               " unprocessed events (incomplete executions)");
  }
  for (size_t Tid = 0; Tid < OpenExecsDense.size(); ++Tid)
    if (const ExecPtr &E = OpenExecsDense[Tid])
      report(ViolationKind::VK_Instrumentation, E->CallSeq,
             static_cast<ThreadId>(Tid), E->Method,
             "method execution still open at end of log");
  for (auto &[Tid, E] : OpenExecsSparse)
    report(ViolationKind::VK_Instrumentation, E->CallSeq, Tid, E->Method,
           "method execution still open at end of log");
}
