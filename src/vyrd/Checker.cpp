//===- Checker.cpp - I/O and view refinement checking ---------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Checker.h"

#include "vyrd/Serialize.h"
#include "vyrd/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>

using namespace vyrd;

namespace {

/// Entry timestamp for a phase-timing region, or 0 when timing is off.
uint64_t tickIf(bool On) { return On ? telemetryNowNanos() : 0; }

} // namespace

const char *vyrd::violationKindName(ViolationKind K) {
  switch (K) {
  case ViolationKind::VK_MutatorMismatch:
    return "mutator-mismatch";
  case ViolationKind::VK_ObserverMismatch:
    return "observer-mismatch";
  case ViolationKind::VK_ViewMismatch:
    return "view-mismatch";
  case ViolationKind::VK_InvariantFailed:
    return "invariant-failed";
  case ViolationKind::VK_Instrumentation:
    return "instrumentation";
  case ViolationKind::VK_Degraded:
    return "degraded";
  }
  assert(false && "unknown ViolationKind");
  return "?";
}

void vyrd::sortViolationsBySeq(std::vector<Violation> &Vs) {
  std::vector<size_t> Order(Vs.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&Vs](size_t A, size_t B) {
    return Vs[A].Seq != Vs[B].Seq ? Vs[A].Seq < Vs[B].Seq : A < B;
  });
  std::vector<Violation> Sorted;
  Sorted.reserve(Vs.size());
  for (size_t I : Order)
    Sorted.push_back(std::move(Vs[I]));
  Vs = std::move(Sorted);
}

std::string Violation::str() const {
  std::string Out = std::string(violationKindName(Kind)) + " at #" +
                    std::to_string(Seq) + " t" + std::to_string(Tid);
  if (Object.valid()) {
    Out += " [";
    Out += Object.str();
    Out += "]";
  }
  if (Method.valid()) {
    Out += " ";
    Out += Method.str();
  }
  Out += ": " + Message +
         " [methods checked: " + std::to_string(MethodsChecked) + "]";
  return Out;
}

void CheckerStats::merge(const CheckerStats &Other) {
  ActionsFed += Other.ActionsFed;
  MethodsChecked += Other.MethodsChecked;
  CommitsProcessed += Other.CommitsProcessed;
  ObserversChecked += Other.ObserversChecked;
  ViewComparisons += Other.ViewComparisons;
  Audits += Other.Audits;
  MaxQueueDepth = std::max(MaxQueueDepth, Other.MaxQueueDepth);
  ReplayNanos += Other.ReplayNanos;
  SpecNanos += Other.SpecNanos;
  ViewCompareNanos += Other.ViewCompareNanos;
  ObsMemoHits += Other.ObsMemoHits;
  ObsMemoMisses += Other.ObsMemoMisses;
  SpecVersionBumps += Other.SpecVersionBumps;
}

RefinementChecker::RefinementChecker(Spec &S, Replayer *R,
                                     CheckerConfig Config)
    : TheSpec(S), TheReplayer(R), Config(Config) {
  assert((Config.Mode == CheckMode::CM_IORefinement || R) &&
         "view refinement requires a Replayer");
  if (Config.Mode == CheckMode::CM_ViewRefinement) {
    // viewI and viewS are initialized to the same value (Sec. 5.1): both
    // sides must agree on the initial state.
    TheReplayer->buildView(ViewI);
    TheSpec.buildView(ViewS);
    if (!ViewI.deepEquals(ViewS))
      report(ViolationKind::VK_Instrumentation, 0, 0, Name(),
             "initial viewI != initial viewS: " + View::diff(ViewI, ViewS));
  }
}

RefinementChecker::~RefinementChecker() = default;

void RefinementChecker::report(ViolationKind K, uint64_t Seq, ThreadId Tid,
                               Name Method, std::string Message) {
  if (Violations.size() >= Config.MaxViolations)
    return;
  if (Config.StopAtFirstViolation && !Violations.empty())
    return;
  Violation V;
  V.Kind = K;
  V.Seq = Seq;
  V.Tid = Tid;
  V.Method = Method;
  V.Message = std::move(Message);
  V.MethodsChecked = Stats.MethodsChecked;
  // The ring may be flight-recorder sized; the rendered context stays
  // bounded by ContextRecords as before.
  size_t N = RecentActions.size();
  size_t First = N - std::min<size_t>(N, Config.ContextRecords);
  for (size_t I = First; I != N; ++I)
    V.Context += RecentActions[I].str() + "\n";
  Violations.push_back(std::move(V));
  // Keep the bundle list parallel to Violations so forensics()[i] always
  // pairs with violations()[i].
  ForensicBundles.push_back(
      Config.FlightRecorderDepth ? captureForensic(Violations.back())
                                 : std::string());
}

namespace {

/// FNV-1a over a byte buffer: a stable fingerprint for the serialized
/// spec state inside a forensic bundle (equal states -> equal hashes).
uint64_t fnv1a(const std::vector<uint8_t> &Bytes) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint8_t B : Bytes) {
    H ^= B;
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string actionJson(const Action &A) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf),
                "{\"seq\":%" PRIu64 ",\"tid\":%u,\"kind\":\"%s\"", A.Seq,
                A.Tid, actionKindName(A.Kind));
  std::string Out = Buf;
  if (A.Method.valid())
    Out += ",\"method\":\"" + jsonEscape(std::string(A.Method.str())) +
           "\"";
  if (A.Var.valid())
    Out += ",\"var\":\"" + jsonEscape(std::string(A.Var.str())) + "\"";
  if (!A.Args.empty()) {
    Out += ",\"args\":[";
    for (size_t I = 0; I < A.Args.size(); ++I) {
      Out += I ? ",\"" : "\"";
      Out += jsonEscape(A.Args[I].str()) + "\"";
    }
    Out += "]";
  }
  if (!A.Ret.isNull())
    Out += ",\"ret\":\"" + jsonEscape(A.Ret.str()) + "\"";
  Out += "}";
  return Out;
}

} // namespace

std::string RefinementChecker::captureForensic(const Violation &V) const {
  char Buf[160];
  std::string Out = "{\"schema\":\"vyrd-forensic-v1\"";

  Out += ",\"violation\":{\"kind\":\"";
  Out += violationKindName(V.Kind);
  std::snprintf(Buf, sizeof(Buf),
                "\",\"seq\":%" PRIu64 ",\"tid\":%u,\"methods_checked\":%"
                PRIu64,
                V.Seq, V.Tid, V.MethodsChecked);
  Out += Buf;
  if (V.Method.valid())
    Out += ",\"method\":\"" + jsonEscape(std::string(V.Method.str())) +
           "\"";
  Out += ",\"message\":\"" + jsonEscape(V.Message) + "\"}";

  // The flight-recorder tail: the last FlightRecorderDepth records fed
  // before (and including) the one that established the violation.
  size_t N = RecentActions.size();
  size_t First = N - std::min<size_t>(N, Config.FlightRecorderDepth);
  Out += ",\"recent_actions\":[";
  for (size_t I = First; I != N; ++I) {
    if (I != First)
      Out += ",";
    Out += actionJson(RecentActions[I]);
  }
  Out += "]";

  // Every method execution still open: what each thread was doing when
  // the violation was established.
  Out += ",\"open_execs\":[";
  bool FirstExec = true;
  auto AddExec = [&](const Exec &X) {
    if (!FirstExec)
      Out += ",";
    FirstExec = false;
    std::snprintf(Buf, sizeof(Buf),
                  "{\"tid\":%u,\"call_seq\":%" PRIu64
                  ",\"observer\":%s,\"has_ret\":%s,\"has_commit\":%s,"
                  "\"in_block\":%s,\"satisfied\":%s",
                  X.Tid, X.CallSeq, X.IsObserver ? "true" : "false",
                  X.HasRet ? "true" : "false",
                  X.HasCommit ? "true" : "false",
                  X.InBlock ? "true" : "false",
                  X.Satisfied ? "true" : "false");
    Out += Buf;
    Out += ",\"method\":\"" + jsonEscape(std::string(X.Method.str())) +
           "\",\"args\":[";
    for (size_t I = 0; I < X.Args.size(); ++I) {
      Out += I ? ",\"" : "\"";
      Out += jsonEscape(X.Args[I].str()) + "\"";
    }
    Out += "]";
    if (X.HasRet)
      Out += ",\"ret\":\"" + jsonEscape(X.Ret.str()) + "\"";
    Out += "}";
  };
  for (const ExecPtr &E : OpenExecsDense)
    if (E)
      AddExec(*E);
  for (const auto &KV : OpenExecsSparse)
    AddExec(*KV.second);
  Out += "]";

  // Spec-state digest: the view digests pin down what each side believed
  // the abstract state to be; the serialized-spec fingerprint lets two
  // bundles be compared for state equality without replaying anything.
  std::snprintf(Buf, sizeof(Buf), ",\"spec_state\":{\"spec_version\":%"
                PRIu64,
                SpecVersion);
  Out += Buf;
  if (Config.Mode == CheckMode::CM_ViewRefinement) {
    auto DI = ViewI.digest(), DS = ViewS.digest();
    std::snprintf(Buf, sizeof(Buf),
                  ",\"view_i\":{\"size\":%zu,\"digest\":[%" PRIu64
                  ",%" PRIu64 "]},\"view_s\":{\"size\":%zu,\"digest\":[%"
                  PRIu64 ",%" PRIu64 "]}",
                  ViewI.size(), DI.first, DI.second, ViewS.size(),
                  DS.first, DS.second);
    Out += Buf;
  }
  ByteWriter W;
  if (TheSpec.saveState(W)) {
    std::snprintf(Buf, sizeof(Buf),
                  ",\"spec_blob_bytes\":%zu,\"spec_blob_fnv1a\":\"%016"
                  PRIx64 "\"",
                  W.size(), fnv1a(W.buffer()));
    Out += Buf;
  } else {
    Out += ",\"spec_blob_bytes\":null,\"spec_blob_fnv1a\":null";
  }
  Out += "}";

  std::snprintf(Buf, sizeof(Buf),
                ",\"stats\":{\"actions_fed\":%" PRIu64
                ",\"methods_checked\":%" PRIu64 ",\"commits\":%" PRIu64
                ",\"observers\":%" PRIu64 ",\"open_execs\":%zu}}",
                Stats.ActionsFed, Stats.MethodsChecked,
                Stats.CommitsProcessed, Stats.ObserversChecked,
                OpenExecCount);
  Out += Buf;
  return Out;
}

void RefinementChecker::feed(const Action &A) {
  assert(!Finished && "feed after finish");
  ++Stats.ActionsFed;
  if (Config.StopAtFirstViolation && hasViolation())
    return;
  if (unsigned Depth = recentRingDepth()) {
    RecentActions.push_back(A);
    if (RecentActions.size() > Depth)
      RecentActions.pop_front();
  }

  ExecPtr *Slot = findOpenExec(A.Tid);
  Exec *X = Slot ? Slot->get() : nullptr;

  switch (A.Kind) {
  case ActionKind::AK_Call: {
    if (X) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, A.Method,
             "nested method call while " + std::string(X->Method.str()) +
                 " is still executing");
      break;
    }
    ExecPtr E = acquireExec();
    E->Tid = A.Tid;
    E->Method = A.Method;
    E->Args = A.Args;
    E->CallSeq = A.Seq;
    E->IsObserver = TheSpec.isObserver(A.Method);
    insertOpenExec(A.Tid, E);
    if (E->IsObserver)
      Events.push_back(Event{EventKind::EK_ObsBegin, A, E});
    break;
  }
  case ActionKind::AK_Return: {
    if (!X) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, A.Method,
             "return with no open method execution");
      break;
    }
    X->Ret = A.Ret;
    X->HasRet = true;
    if (X->InBlock)
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, X->Method,
             "method returned inside an open commit block");
    Events.push_back(Event{X->IsObserver ? EventKind::EK_ObsEnd
                                         : EventKind::EK_MutEnd,
                           A, std::move(*Slot)});
    eraseOpenExec(A.Tid, Slot);
    break;
  }
  case ActionKind::AK_Commit: {
    if (!X) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, Name(),
             "commit with no open method execution");
      break;
    }
    if (X->IsObserver) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, X->Method,
             "observer methods must not commit");
      break;
    }
    if (X->HasCommit) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, X->Method,
             "second commit in one method execution (exactly one commit "
             "action per execution path is required)");
      break;
    }
    X->HasCommit = true;
    X->CommitInBlock = X->InBlock;
    X->OpenAtCommit = OpenExecCount;
    Events.push_back(Event{EventKind::EK_Commit, A, *Slot});
    break;
  }
  case ActionKind::AK_Write:
  case ActionKind::AK_ReplayOp: {
    if (X && X->InBlock) {
      X->BlockWrites.push_back(A);
      break;
    }
    Events.push_back(Event{EventKind::EK_Write, A, nullptr});
    break;
  }
  case ActionKind::AK_BlockBegin: {
    if (!X) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, Name(),
             "commit block outside a method execution");
      break;
    }
    if (X->InBlock) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid, X->Method,
             "nested commit blocks are not supported");
      break;
    }
    X->InBlock = true;
    break;
  }
  case ActionKind::AK_BlockEnd: {
    if (!X || !X->InBlock) {
      report(ViolationKind::VK_Instrumentation, A.Seq, A.Tid,
             X ? X->Method : Name(), "unmatched commit block end");
      break;
    }
    X->InBlock = false;
    if (X->HasCommit && X->CommitInBlock && !X->BlockDone) {
      // This block contained the commit: seal its writes; they are applied
      // atomically at the commit event, which may now proceed.
      X->CommitBlockWrites = std::move(X->BlockWrites);
      X->BlockWrites.clear();
      X->BlockDone = true;
      break;
    }
    // A block with no commit inside (e.g. a preparatory atomic region):
    // apply its writes atomically at the block end position.
    for (Action &W : X->BlockWrites)
      Events.push_back(Event{EventKind::EK_Write, std::move(W), nullptr});
    X->BlockWrites.clear();
    break;
  }
  }

  drain();
}

void RefinementChecker::drain() {
  if (Events.size() > Stats.MaxQueueDepth)
    Stats.MaxQueueDepth = Events.size();
  while (!Events.empty()) {
    if (!processHead())
      return;
    // The ring keeps popped slots alive to recycle their storage; drop
    // the Exec reference now so a retired slot cannot pin a pooled Exec
    // (acquireExec reuses an Exec only at use_count == 1).
    Events.front().E = nullptr;
    Events.pop_front();
  }
}

bool RefinementChecker::processHead() {
  Event &Ev = Events.front();
  switch (Ev.Kind) {
  case EventKind::EK_Write:
    applyUpdate(Ev.A);
    return true;

  case EventKind::EK_Commit: {
    Exec &X = *Ev.E;
    // Return-value lookahead: stall until the execution's return is fed.
    if (!X.HasRet)
      return false;
    // Commit inside a block: stall until the block closes so the block's
    // writes (including those logged after the commit) apply atomically.
    if (X.CommitInBlock && !X.BlockDone)
      return false;
    processCommit(Ev);
    return true;
  }

  case EventKind::EK_ObsBegin: {
    Exec &X = *Ev.E;
    // The observer's return value is needed to evaluate the window states;
    // stall until it is known (Sec. 4.3).
    if (!X.HasRet)
      return false;
    uint64_t T0 = tickIf(Config.CollectTimings);
    if (Config.MemoizeObservers) {
      // Signature hashes are computed once per execution, here, where the
      // return value first becomes known.
      X.ArgsHash = X.Args.hash();
      X.RetHash = X.Ret.hash();
    }
    X.Satisfied = observerAllowed(X);
    if (T0)
      Stats.SpecNanos += telemetryNowNanos() - T0;
    OpenObservers.push_back(Ev.E);
    return true;
  }

  case EventKind::EK_ObsEnd: {
    Exec &X = *Ev.E;
    // Swap-and-pop: the open-observer set is unordered (every member is
    // (re)evaluated at each commit and returnAllowed is const, so the
    // iteration order cannot be observed).
    for (size_t I = 0; I < OpenObservers.size(); ++I) {
      if (OpenObservers[I].get() != &X)
        continue;
      OpenObservers[I] = std::move(OpenObservers.back());
      OpenObservers.pop_back();
      break;
    }
    if (!X.Satisfied) {
      std::string Msg = std::string(X.Method.str()) + "(";
      for (size_t I = 0; I < X.Args.size(); ++I) {
        if (I)
          Msg += ", ";
        Msg += X.Args[I].str();
      }
      Msg += ") -> " + X.Ret.str() +
             " is inconsistent with every specification state in its "
             "call-to-return window";
      report(ViolationKind::VK_ObserverMismatch, Ev.A.Seq, X.Tid, X.Method,
             std::move(Msg));
    }
    ++Stats.ObserversChecked;
    ++Stats.MethodsChecked;
    recycleExec(std::move(Ev.E));
    return true;
  }

  case EventKind::EK_MutEnd: {
    Exec &X = *Ev.E;
    if (!X.HasCommit)
      report(ViolationKind::VK_Instrumentation, Ev.A.Seq, X.Tid, X.Method,
             "mutator execution returned without a commit action");
    // Close the diagnosis window: a signature that never became enabled
    // anywhere between commit and return is unlikely to be a misplaced
    // annotation. Swap-and-pop: each entry is retried independently, so
    // like OpenObservers the set's order is not semantically relevant.
    for (size_t I = 0; I < FailedMutators.size(); ++I) {
      if (FailedMutators[I].first.get() != &X)
        continue;
      Violations[FailedMutators[I].second].Message +=
          "; diagnosis: the signature never became enabled in the "
          "method's window — likely a genuine refinement violation "
          "(Sec. 4.1)";
      FailedMutators[I] = std::move(FailedMutators.back());
      FailedMutators.pop_back();
      break;
    }
    recycleExec(std::move(Ev.E));
    return true;
  }
  }
  assert(false && "unknown EventKind");
  return true;
}

void RefinementChecker::applyUpdate(const Action &A) {
  if (Config.Mode != CheckMode::CM_ViewRefinement)
    return;
  assert(TheReplayer && "view mode requires a replayer");
  uint64_t T0 = tickIf(Config.CollectTimings);
  TheReplayer->applyUpdate(A, ViewI);
  if (T0)
    Stats.ReplayNanos += telemetryNowNanos() - T0;
}

void RefinementChecker::processCommit(Event &Ev) {
  Exec &X = *Ev.E;
  bool ViewMode = Config.Mode == CheckMode::CM_ViewRefinement;

  // Apply the commit block's writes atomically at this point (Sec. 5.2's
  // tau -> tau' conversion).
  if (ViewMode && !X.CommitBlockWrites.empty()) {
    uint64_t T0 = tickIf(Config.CollectTimings);
    for (const Action &W : X.CommitBlockWrites)
      TheReplayer->applyUpdate(W, ViewI);
    if (T0)
      Stats.ReplayNanos += telemetryNowNanos() - T0;
  }
  X.CommitBlockWrites.clear();

  // Drive the specification with the execution's signature.
  uint64_t SpecT0 = tickIf(Config.CollectTimings);
  bool SpecOk = TheSpec.applyMutator(X.Method, X.Args, X.Ret, ViewS);
  if (SpecT0)
    Stats.SpecNanos += telemetryNowNanos() - SpecT0;
  if (SpecOk) {
    // The spec state moved: cached observer verdicts are now stale (they
    // stay in the memo table keyed by the old version and are simply
    // never consulted again).
    ++SpecVersion;
    ++Stats.SpecVersionBumps;
  }
  if (!SpecOk) {
    std::string Msg = "specification cannot execute " +
                      std::string(X.Method.str()) + "(";
    for (size_t I = 0; I < X.Args.size(); ++I) {
      if (I)
        Msg += ", ";
      Msg += X.Args[I].str();
    }
    Msg += ") -> " + X.Ret.str() + " at this point in the witness";
    size_t ViolationIdx = Violations.size();
    report(ViolationKind::VK_MutatorMismatch, Ev.A.Seq, X.Tid, X.Method,
           Msg);
    // Sec. 4.1: distinguish a misplaced commit annotation from a genuine
    // violation by retrying the signature at later window states.
    if (Config.DiagnoseCommitPoints && ViolationIdx < Violations.size())
      FailedMutators.emplace_back(Ev.E, ViolationIdx);
  }
  ++Stats.CommitsProcessed;

  // The Sec. 8 ablation restricts state comparison to quiescent commits
  // (commit-atomicity style); the default compares at every commit.
  bool Compare = !Config.QuiescentOnly || X.OpenAtCommit <= 1;
  if (ViewMode && Compare &&
      !(Config.StopAtFirstViolation && hasViolation())) {
    uint64_t T0 = tickIf(Config.CollectTimings || Telem);
    compareViews(X, Ev.A.Seq);
    std::string InvMsg;
    if (!TheReplayer->checkInvariants(InvMsg))
      report(ViolationKind::VK_InvariantFailed, Ev.A.Seq, X.Tid, X.Method,
             std::move(InvMsg));
    if (T0) {
      uint64_t Ns = telemetryNowNanos() - T0;
      if (Config.CollectTimings)
        Stats.ViewCompareNanos += Ns;
      if (telemetryCompiledIn() && Telem)
        Telem->record(Histo::H_ViewCompareNs, Ns);
    }
  }

  // Retry failed mutators *after* this commit's own comparison: the late
  // application models the failed method taking effect at (or after) this
  // point, which is also when its implementation-side writes land.
  if (!FailedMutators.empty())
    retryFailedMutators(Ev.A.Seq);

  // Every open observer's window includes this commit: evaluate the new
  // specification state against each still-unsatisfied return value.
  evalOpenObservers();

  ++Stats.MethodsChecked;
}

void RefinementChecker::retryFailedMutators(uint64_t Seq) {
  uint64_t T0 = tickIf(Config.CollectTimings);
  for (size_t I = 0; I < FailedMutators.size();) {
    auto &[E, ViolationIdx] = FailedMutators[I];
    if (!TheSpec.applyMutator(E->Method, E->Args, E->Ret, ViewS)) {
      ++I;
      continue;
    }
    // The signature is enabled here: apply it (recovering the spec state)
    // and annotate the original violation. The recovery mutated the spec,
    // so cached observer verdicts must be invalidated too.
    ++SpecVersion;
    ++Stats.SpecVersionBumps;
    Violations[ViolationIdx].Message +=
        "; diagnosis: the signature became enabled after the commit at #" +
        std::to_string(Seq) +
        " — the commit-point annotation is likely too early (Sec. 4.1)";
    FailedMutators[I] = std::move(FailedMutators.back());
    FailedMutators.pop_back();
  }
  if (T0)
    Stats.SpecNanos += telemetryNowNanos() - T0;
}

RefinementChecker::MemoSlot &RefinementChecker::memoSlotFor(const Exec &X) {
  if (ObsMemo.empty())
    ObsMemo.resize(256);
  // Bound the table: a workload with unbounded distinct signatures would
  // otherwise grow it forever. Resetting loses only cache warmth.
  if (ObsMemoUsed >= Config.MemoMaxEntries) {
    std::fill(ObsMemo.begin(), ObsMemo.end(), MemoSlot());
    ObsMemoUsed = 0;
  } else if (ObsMemoUsed * 4 >= ObsMemo.size() * 3) {
    growMemo(ObsMemo.size() * 2);
  }
  size_t Mask = ObsMemo.size() - 1;
  size_t I = static_cast<size_t>(X.ArgsHash ^ (X.RetHash * 0x9e3779b9) ^
                                 (uint64_t(X.Method.id()) << 32)) &
             Mask;
  // The hashes route the probe; occupancy is decided by equality of the
  // stored signature, so colliding signatures occupy distinct slots.
  while (ObsMemo[I].Used &&
         !(ObsMemo[I].Method == X.Method && ObsMemo[I].ArgsHash == X.ArgsHash &&
           ObsMemo[I].RetHash == X.RetHash && ObsMemo[I].Args == X.Args &&
           ObsMemo[I].Ret == X.Ret))
    I = (I + 1) & Mask;
  return ObsMemo[I];
}

void RefinementChecker::growMemo(size_t NewSlots) {
  std::vector<MemoSlot> Old;
  Old.swap(ObsMemo);
  ObsMemo.resize(NewSlots);
  size_t Mask = NewSlots - 1;
  for (MemoSlot &S : Old) {
    if (!S.Used)
      continue;
    size_t I = static_cast<size_t>(S.ArgsHash ^ (S.RetHash * 0x9e3779b9) ^
                                   (uint64_t(S.Method.id()) << 32)) &
               Mask;
    while (ObsMemo[I].Used)
      I = (I + 1) & Mask;
    ObsMemo[I] = std::move(S);
  }
}

bool RefinementChecker::observerAllowed(Exec &X) {
  X.LastEvalVersion = SpecVersion;
  if (!Config.MemoizeObservers)
    return TheSpec.returnAllowed(X.Method, X.Args, X.Ret);
  MemoSlot &E = memoSlotFor(X);
  if (E.Used && E.Version == SpecVersion) {
    ++Stats.ObsMemoHits;
    return E.Allowed;
  }
  ++Stats.ObsMemoMisses;
  if (!E.Used) {
    E.Used = true;
    E.Method = X.Method;
    E.Args = X.Args;
    E.Ret = X.Ret;
    E.ArgsHash = X.ArgsHash;
    E.RetHash = X.RetHash;
    ++ObsMemoUsed;
  }
  E.Version = SpecVersion;
  E.Allowed = TheSpec.returnAllowed(X.Method, X.Args, X.Ret);
  return E.Allowed;
}

void RefinementChecker::evalOpenObservers() {
  if (OpenObservers.empty())
    return;
  uint64_t T0 = tickIf(Config.CollectTimings);
  for (ExecPtr &ObsP : OpenObservers) {
    Exec &Obs = *ObsP;
    if (Obs.Satisfied)
      continue;
    if (Config.MemoizeObservers && Obs.LastEvalVersion == SpecVersion) {
      // Already answered (negatively) at this exact spec state — e.g. the
      // commit's applyMutator failed, so the state did not move. Counts as
      // a hit: the unmemoized checker would have re-asked the spec here.
      ++Stats.ObsMemoHits;
      continue;
    }
    Obs.Satisfied = observerAllowed(Obs);
  }
  if (T0)
    Stats.SpecNanos += telemetryNowNanos() - T0;
}

RefinementChecker::ExecPtr *RefinementChecker::findOpenExec(ThreadId Tid) {
  if (Tid < DenseTidLimit) {
    if (Tid < OpenExecsDense.size() && OpenExecsDense[Tid])
      return &OpenExecsDense[Tid];
    return nullptr;
  }
  auto It = OpenExecsSparse.find(Tid);
  return It == OpenExecsSparse.end() ? nullptr : &It->second;
}

void RefinementChecker::insertOpenExec(ThreadId Tid, ExecPtr E) {
  if (Tid < DenseTidLimit) {
    if (OpenExecsDense.size() <= Tid)
      OpenExecsDense.resize(std::min<size_t>(
          DenseTidLimit,
          std::max<size_t>(Tid + 1, OpenExecsDense.empty()
                                        ? 16
                                        : OpenExecsDense.size() * 2)));
    OpenExecsDense[Tid] = std::move(E);
  } else {
    OpenExecsSparse[Tid] = std::move(E);
  }
  ++OpenExecCount;
}

void RefinementChecker::eraseOpenExec(ThreadId Tid, ExecPtr *Slot) {
  if (Tid < DenseTidLimit)
    Slot->reset();
  else
    OpenExecsSparse.erase(Tid);
  --OpenExecCount;
}

RefinementChecker::ExecPtr RefinementChecker::acquireExec() {
  while (!ExecPool.empty()) {
    ExecPtr E = std::move(ExecPool.back());
    ExecPool.pop_back();
    // A retired Exec can still be referenced by a stalled event deep in
    // the queue (its window closed out of order); skip those.
    if (E.use_count() != 1)
      continue;
    Exec &X = *E;
    X.Tid = 0;
    X.Method = Name();
    X.Args.clear();
    X.Ret = Value();
    X.CallSeq = 0;
    X.IsObserver = false;
    X.HasRet = false;
    X.HasCommit = false;
    X.CommitInBlock = false;
    X.BlockDone = false;
    X.InBlock = false;
    X.Satisfied = false;
    X.OpenAtCommit = 0;
    X.ArgsHash = 0;
    X.RetHash = 0;
    X.LastEvalVersion = ~uint64_t(0);
    X.BlockWrites.clear();        // clear() keeps the buffer capacity —
    X.CommitBlockWrites.clear();  // that is the point of pooling Execs
    return E;
  }
  return std::make_shared<Exec>();
}

void RefinementChecker::recycleExec(ExecPtr E) {
  if (ExecPool.size() < 256)
    ExecPool.push_back(std::move(E));
}

void RefinementChecker::compareViews(const Exec &X, uint64_t Seq) {
  ++Stats.ViewComparisons;

  if (Config.FullViewRecompute) {
    View FreshI, FreshS;
    TheReplayer->buildView(FreshI);
    TheSpec.buildView(FreshS);
    if (!FreshI.deepEquals(FreshS))
      report(ViolationKind::VK_ViewMismatch, Seq, X.Tid, X.Method,
             "viewI != viewS after commit: " + View::diff(FreshI, FreshS));
    return;
  }

  if (ViewI != ViewS) {
    // Hash mismatch: confirm and produce a precise diff.
    if (!ViewI.deepEquals(ViewS))
      report(ViolationKind::VK_ViewMismatch, Seq, X.Tid, X.Method,
             "viewI != viewS after commit: " + View::diff(ViewI, ViewS));
  }

  if (Config.AuditPeriod && ++CommitsSinceAudit >= Config.AuditPeriod) {
    CommitsSinceAudit = 0;
    runAudit(Seq);
  }
}

void RefinementChecker::runAudit(uint64_t Seq) {
  ++Stats.Audits;
  View FreshI, FreshS;
  TheReplayer->buildView(FreshI);
  TheSpec.buildView(FreshS);
  if (!FreshI.deepEquals(ViewI))
    report(ViolationKind::VK_Instrumentation, Seq, 0, Name(),
           "audit: incrementally maintained viewI diverged from rebuilt "
           "viewI: " +
               View::diff(ViewI, FreshI));
  if (!FreshS.deepEquals(ViewS))
    report(ViolationKind::VK_Instrumentation, Seq, 0, Name(),
           "audit: incrementally maintained viewS diverged from rebuilt "
           "viewS: " +
               View::diff(ViewS, FreshS));
}

//===----------------------------------------------------------------------===//
// Snapshot support (docs/SNAPSHOTS.md)
//===----------------------------------------------------------------------===//

// Blob layout: [varint blob version][varint len][stats][varint len][core].
// The stats section carries the cumulative counters, so a resumed run's
// final totals equal a from-zero run's. The core section carries the
// resumable state proper and is *canonical*: execs enumerate in a
// deterministic order, names travel as strings interned in first-use order
// (no process-local ids leak into the bytes), and unordered containers in
// spec/replayer blobs serialize sorted — equivalent checker states produce
// byte-identical cores, which is what lets the epoch baseline audit
// byte-compare a re-derived core against the next sidecar's.
static constexpr uint64_t CheckerBlobVersion = 1;

namespace {

// Exec flag bits (core section, one byte per exec).
enum : uint8_t {
  XF_IsObserver = 1 << 0,
  XF_HasRet = 1 << 1,
  XF_HasCommit = 1 << 2,
  XF_CommitInBlock = 1 << 3,
  XF_BlockDone = 1 << 4,
  XF_InBlock = 1 << 5,
  XF_Satisfied = 1 << 6,
  XF_IsOpen = 1 << 7, // member of the open-exec table at snapshot time
};

void writeStats(ByteWriter &W, const CheckerStats &S) {
  W.varint(S.ActionsFed);
  W.varint(S.MethodsChecked);
  W.varint(S.CommitsProcessed);
  W.varint(S.ObserversChecked);
  W.varint(S.ViewComparisons);
  W.varint(S.Audits);
  W.varint(S.MaxQueueDepth);
  W.varint(S.ReplayNanos);
  W.varint(S.SpecNanos);
  W.varint(S.ViewCompareNanos);
  W.varint(S.ObsMemoHits);
  W.varint(S.ObsMemoMisses);
  W.varint(S.SpecVersionBumps);
}

bool readStats(ByteReader &R, CheckerStats &S) {
  S.ActionsFed = R.varint();
  S.MethodsChecked = R.varint();
  S.CommitsProcessed = R.varint();
  S.ObserversChecked = R.varint();
  S.ViewComparisons = R.varint();
  S.Audits = R.varint();
  S.MaxQueueDepth = R.varint();
  S.ReplayNanos = R.varint();
  S.SpecNanos = R.varint();
  S.ViewCompareNanos = R.varint();
  S.ObsMemoHits = R.varint();
  S.ObsMemoMisses = R.varint();
  S.SpecVersionBumps = R.varint();
  return R.ok() && R.atEnd();
}

} // namespace

bool RefinementChecker::saveState(ByteWriter &W) const {
  // Only a clean checker snapshots: a recorded violation (or a pending
  // diagnosis retry, which implies one) must surface through the normal
  // reporting path, and a finished checker has already flushed its
  // pipeline.
  if (Finished || !Violations.empty() || !FailedMutators.empty())
    return false;

  ByteWriter Core;
  Core.u8(static_cast<uint8_t>(Config.Mode));
  Core.varint(SpecVersion);
  Core.varint(CommitsSinceAudit);

  {
    ByteWriter SpecW;
    if (!TheSpec.saveState(SpecW))
      return false; // spec does not support snapshots
    Core.varint(SpecW.size());
    Core.bytes(SpecW.buffer().data(), SpecW.size());
  }

  bool ViewMode = Config.Mode == CheckMode::CM_ViewRefinement;
  Core.u8(ViewMode ? 1 : 0);
  if (ViewMode) {
    ByteWriter RepW;
    if (!TheReplayer || !TheReplayer->saveState(RepW))
      return false;
    Core.varint(RepW.size());
    Core.bytes(RepW.buffer().data(), RepW.size());
  }

  // Canonical exec enumeration: open executions by ascending Tid (dense
  // slots first, then the sorted sparse ones), then execs reachable only
  // through the event queue in queue order, then open observers. Every
  // ordering step is a function of the checker state alone, so equivalent
  // states enumerate identically.
  std::vector<const Exec *> Table;
  std::unordered_map<const Exec *, size_t> Index;
  auto Add = [&](const ExecPtr &E) {
    if (!E || Index.count(E.get()))
      return;
    Index.emplace(E.get(), Table.size());
    Table.push_back(E.get());
  };
  for (const ExecPtr &E : OpenExecsDense)
    Add(E);
  {
    std::vector<ThreadId> SparseTids;
    SparseTids.reserve(OpenExecsSparse.size());
    for (const auto &KV : OpenExecsSparse)
      SparseTids.push_back(KV.first);
    std::sort(SparseTids.begin(), SparseTids.end());
    for (ThreadId Tid : SparseTids)
      Add(OpenExecsSparse.at(Tid));
  }
  Events.forEach([&](const Event &Ev) { Add(Ev.E); });
  for (const ExecPtr &E : OpenObservers)
    Add(E);

  auto IsOpenExec = [&](const Exec &X) {
    if (X.Tid < DenseTidLimit)
      return X.Tid < OpenExecsDense.size() &&
             OpenExecsDense[X.Tid].get() == &X;
    auto It = OpenExecsSparse.find(X.Tid);
    return It != OpenExecsSparse.end() && It->second.get() == &X;
  };

  // One encoder for the whole core: name definitions interleave with the
  // records exactly as in a log file, in first-use order.
  ActionEncoder Enc;
  auto WriteActions = [&](const std::vector<Action> &As) {
    Core.varint(As.size());
    for (const Action &A : As)
      Enc.encode(A, Core);
  };

  Core.varint(Table.size());
  for (const Exec *XP : Table) {
    const Exec &X = *XP;
    Core.varint(X.Tid);
    Core.u8(X.Method.valid() ? 1 : 0);
    if (X.Method.valid())
      Core.str(X.Method.str());
    Core.varint(X.Args.size());
    for (const Value &V : X.Args)
      writeValue(Core, V);
    writeValue(Core, X.Ret);
    Core.varint(X.CallSeq);
    uint8_t Flags = 0;
    if (X.IsObserver)
      Flags |= XF_IsObserver;
    if (X.HasRet)
      Flags |= XF_HasRet;
    if (X.HasCommit)
      Flags |= XF_HasCommit;
    if (X.CommitInBlock)
      Flags |= XF_CommitInBlock;
    if (X.BlockDone)
      Flags |= XF_BlockDone;
    if (X.InBlock)
      Flags |= XF_InBlock;
    if (X.Satisfied)
      Flags |= XF_Satisfied;
    if (IsOpenExec(X))
      Flags |= XF_IsOpen;
    Core.u8(Flags);
    Core.varint(X.OpenAtCommit);
    // LastEvalVersion compresses to one bit: either the observer was
    // evaluated at the *current* spec state (the only fact the memo skip
    // in evalOpenObservers relies on) or it counts as never evaluated.
    // The signature hashes are process-local and recomputed on restore.
    Core.u8(X.LastEvalVersion == SpecVersion ? 1 : 0);
    WriteActions(X.BlockWrites);
    WriteActions(X.CommitBlockWrites);
  }

  Core.varint(Events.size());
  Events.forEach([&](const Event &Ev) {
    Core.u8(static_cast<uint8_t>(Ev.Kind));
    Enc.encode(Ev.A, Core);
    Core.svarint(Ev.E ? static_cast<int64_t>(Index.at(Ev.E.get())) : -1);
  });

  Core.varint(OpenObservers.size());
  for (const ExecPtr &E : OpenObservers)
    Core.varint(Index.at(E.get()));

  ByteWriter StatsW;
  writeStats(StatsW, Stats);

  W.varint(CheckerBlobVersion);
  W.varint(StatsW.size());
  W.bytes(StatsW.buffer().data(), StatsW.size());
  W.varint(Core.size());
  W.bytes(Core.buffer().data(), Core.size());
  return true;
}

bool RefinementChecker::restoreState(ByteReader &R) {
  if (R.varint() != CheckerBlobVersion || !R.ok())
    return false;
  uint64_t StatsLen = R.varint();
  if (!R.ok() || StatsLen > (1u << 20))
    return false;
  std::vector<uint8_t> StatsBytes(StatsLen);
  if (StatsLen && !R.bytes(StatsBytes.data(), StatsLen))
    return false;
  uint64_t CoreLen = R.varint();
  if (!R.ok() || CoreLen > (uint64_t(1) << 32))
    return false;
  std::vector<uint8_t> CoreBytes(CoreLen);
  if (CoreLen && !R.bytes(CoreBytes.data(), CoreLen))
    return false;

  CheckerStats NewStats;
  {
    ByteReader SR(StatsBytes.data(), StatsBytes.size());
    if (!readStats(SR, NewStats))
      return false;
  }

  ByteReader C(CoreBytes.data(), CoreBytes.size());
  if (static_cast<CheckMode>(C.u8()) != Config.Mode || !C.ok())
    return false; // snapshot taken under a different check mode
  uint64_t NewSpecVersion = C.varint();
  uint64_t NewCommitsSinceAudit = C.varint();
  if (!C.ok())
    return false;

  {
    uint64_t Len = C.varint();
    if (!C.ok() || Len > CoreBytes.size())
      return false;
    std::vector<uint8_t> Blob(Len);
    if (Len && !C.bytes(Blob.data(), Len))
      return false;
    ByteReader SpecR(Blob.data(), Blob.size());
    if (!TheSpec.loadState(SpecR) || !SpecR.ok())
      return false;
  }

  bool ViewMode = Config.Mode == CheckMode::CM_ViewRefinement;
  uint8_t HasRep = C.u8();
  if (!C.ok() || (HasRep != 0) != ViewMode)
    return false;
  if (HasRep) {
    uint64_t Len = C.varint();
    if (!C.ok() || Len > CoreBytes.size())
      return false;
    std::vector<uint8_t> Blob(Len);
    if (Len && !C.bytes(Blob.data(), Len))
      return false;
    ByteReader RepR(Blob.data(), Blob.size());
    if (!TheReplayer || !TheReplayer->loadState(RepR) || !RepR.ok())
      return false;
  }

  uint64_t NExecs = C.varint();
  if (!C.ok() || NExecs > (1u << 20))
    return false;
  ActionDecoder Dec; // records use the current (v3-style) layout
  auto ReadActions = [&](std::vector<Action> &Out) -> bool {
    uint64_t N = C.varint();
    if (!C.ok() || N > (1u << 20))
      return false;
    Out.clear();
    for (uint64_t I = 0; I < N; ++I) {
      Action A;
      if (!Dec.decode(C, A))
        return false;
      Out.push_back(std::move(A));
    }
    return true;
  };
  std::vector<ExecPtr> Table;
  std::vector<bool> OpenFlags;
  Table.reserve(NExecs);
  OpenFlags.reserve(NExecs);
  for (uint64_t I = 0; I < NExecs; ++I) {
    ExecPtr E = std::make_shared<Exec>();
    Exec &X = *E;
    X.Tid = static_cast<ThreadId>(C.varint());
    if (C.u8())
      X.Method = internName(C.str());
    uint64_t NArgs = C.varint();
    if (!C.ok() || NArgs > (1u << 20))
      return false;
    for (uint64_t J = 0; J < NArgs; ++J)
      X.Args.push_back(readValue(C));
    X.Ret = readValue(C);
    X.CallSeq = C.varint();
    uint8_t Flags = C.u8();
    X.OpenAtCommit = C.varint();
    uint8_t EvalNow = C.u8();
    if (!C.ok())
      return false;
    X.IsObserver = Flags & XF_IsObserver;
    X.HasRet = Flags & XF_HasRet;
    X.HasCommit = Flags & XF_HasCommit;
    X.CommitInBlock = Flags & XF_CommitInBlock;
    X.BlockDone = Flags & XF_BlockDone;
    X.InBlock = Flags & XF_InBlock;
    X.Satisfied = Flags & XF_Satisfied;
    X.LastEvalVersion = EvalNow ? NewSpecVersion : ~uint64_t(0);
    if (X.IsObserver && X.HasRet) {
      X.ArgsHash = X.Args.hash();
      X.RetHash = X.Ret.hash();
    }
    if (!ReadActions(X.BlockWrites) || !ReadActions(X.CommitBlockWrites))
      return false;
    OpenFlags.push_back((Flags & XF_IsOpen) != 0);
    Table.push_back(std::move(E));
  }

  uint64_t NEvents = C.varint();
  if (!C.ok() || NEvents > (1u << 24))
    return false;
  // From here on the live state is replaced; a failure below leaves the
  // checker unusable, as documented. Drop Exec references before popping
  // (ring slots survive pop and would otherwise pin pooled Execs).
  while (!Events.empty()) {
    Events.front().E = nullptr;
    Events.pop_front();
  }
  for (uint64_t I = 0; I < NEvents; ++I) {
    uint8_t Kind = C.u8();
    if (!C.ok() || Kind > static_cast<uint8_t>(EventKind::EK_MutEnd))
      return false;
    Event Ev;
    Ev.Kind = static_cast<EventKind>(Kind);
    if (!Dec.decode(C, Ev.A))
      return false;
    int64_t Idx = C.svarint();
    if (!C.ok() || Idx < -1 || Idx >= static_cast<int64_t>(Table.size()))
      return false;
    Ev.E = Idx < 0 ? nullptr : Table[static_cast<size_t>(Idx)];
    Events.push_back(std::move(Ev));
  }

  uint64_t NObs = C.varint();
  if (!C.ok() || NObs > Table.size())
    return false;
  OpenObservers.clear();
  for (uint64_t I = 0; I < NObs; ++I) {
    uint64_t Idx = C.varint();
    if (!C.ok() || Idx >= Table.size())
      return false;
    OpenObservers.push_back(Table[Idx]);
  }
  if (!C.ok() || !C.atEnd())
    return false; // trailing garbage: reject, the blob is suspect

  OpenExecsDense.clear();
  OpenExecsSparse.clear();
  OpenExecCount = 0;
  for (size_t I = 0; I < Table.size(); ++I)
    if (OpenFlags[I])
      insertOpenExec(Table[I]->Tid, Table[I]);

  // Caches and diagnostics reset rather than restore: the memo table
  // rebuilds on demand, and the recent-actions ring loses pre-snapshot
  // context (bounded diagnostic loss, see docs/SNAPSHOTS.md).
  FailedMutators.clear();
  Violations.clear();
  ForensicBundles.clear();
  RecentActions.clear();
  ObsMemo.clear();
  ObsMemoUsed = 0;
  ExecPool.clear();
  Finished = false;
  SpecVersion = NewSpecVersion;
  CommitsSinceAudit = NewCommitsSinceAudit;
  Stats = NewStats;

  if (ViewMode) {
    // Rebuild both views from the restored state. No cross-check here:
    // between commits viewI legitimately leads viewS (implementation
    // writes land at write events, the spec moves at commits), so
    // inequality at a snapshot point is not an error.
    TheReplayer->buildView(ViewI);
    TheSpec.buildView(ViewS);
  }
  return true;
}

bool RefinementChecker::coreSection(const uint8_t *Data, size_t Size,
                                    size_t &Off, size_t &Len) {
  ByteReader R(Data, Size);
  if (R.varint() != CheckerBlobVersion || !R.ok())
    return false;
  uint64_t StatsLen = R.varint();
  if (!R.ok() || StatsLen > Size - R.position())
    return false;
  size_t P = R.position() + static_cast<size_t>(StatsLen);
  ByteReader R2(Data + P, Size - P);
  uint64_t CoreLen = R2.varint();
  if (!R2.ok() || CoreLen > (Size - P) - R2.position())
    return false;
  Off = P + R2.position();
  Len = static_cast<size_t>(CoreLen);
  return true;
}

void RefinementChecker::finish() {
  if (Finished)
    return;
  Finished = true;
  if (telemetryCompiledIn() && Telem) {
    TelemetryCell &C = Telem->cell();
    if (Stats.ObsMemoHits)
      C.count(Counter::C_ObsMemoHits, Stats.ObsMemoHits);
    if (Stats.ObsMemoMisses)
      C.count(Counter::C_ObsMemoMisses, Stats.ObsMemoMisses);
  }
  if (Config.AllowIncompleteTail)
    return;
  if (!Events.empty()) {
    const Event &Ev = Events.front();
    report(ViolationKind::VK_Instrumentation, Ev.A.Seq, Ev.A.Tid,
           Ev.E ? Ev.E->Method : Name(),
           "log ended with " + std::to_string(Events.size()) +
               " unprocessed events (incomplete executions)");
  }
  for (size_t Tid = 0; Tid < OpenExecsDense.size(); ++Tid)
    if (const ExecPtr &E = OpenExecsDense[Tid])
      report(ViolationKind::VK_Instrumentation, E->CallSeq,
             static_cast<ThreadId>(Tid), E->Method,
             "method execution still open at end of log");
  for (auto &[Tid, E] : OpenExecsSparse)
    report(ViolationKind::VK_Instrumentation, E->CallSeq, Tid, E->Method,
           "method execution still open at end of log");
}
