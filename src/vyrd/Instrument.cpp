//===- Instrument.cpp - Hooks the implementation code calls ---------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Instrument.h"

#include <mutex>
#include <thread>
#include <vector>

using namespace vyrd;

//===----------------------------------------------------------------------===//
// Thread ids
//===----------------------------------------------------------------------===//

namespace {

/// Dense-id registry with a free-list: ids released by exited threads are
/// handed to new threads before the high-water mark grows. Everything the
/// pipeline indexes by ThreadId (the checker's open-exec vectors,
/// BufferedLog's shard table) then stays bounded by the peak number of
/// *live* threads, not by the total ever created — long-running servers
/// with thread churn no longer grow those tables without bound.
std::mutex TidRegistryM;
std::vector<uint32_t> TidFreeList;
uint32_t TidHighWater = 0;

/// The id value itself stays a plain thread_local so the hot path is one
/// TLS load + compare; the releaser object below returns it to the
/// free-list when the thread exits.
thread_local uint32_t MyTid = UINT32_MAX;

/// Returning the id from a TLS destructor is safe for shard handoff: the
/// exiting thread's appends happen-before the free-list push (program
/// order), the push happens-before the pop (TidRegistryM), and the pop
/// happens-before the adopting thread's first append — so an SPSC shard
/// keyed by the recycled id never sees two producers at once.
struct TidReleaser {
  bool Armed = false;
  ~TidReleaser() {
    if (!Armed)
      return;
    std::lock_guard<std::mutex> Lock(TidRegistryM);
    TidFreeList.push_back(MyTid);
    // A late currentTid() from another TLS destructor re-acquires (and
    // may briefly alias a recycled id); no instrumented code runs that
    // late today, and the alternative — never recycling — is the
    // unbounded growth this registry exists to prevent.
    MyTid = UINT32_MAX;
  }
};
thread_local TidReleaser MyTidReleaser;

} // namespace

ThreadId vyrd::currentTid() {
  if (MyTid == UINT32_MAX) {
    std::lock_guard<std::mutex> Lock(TidRegistryM);
    if (!TidFreeList.empty()) {
      MyTid = TidFreeList.back();
      TidFreeList.pop_back();
    } else {
      MyTid = TidHighWater++;
    }
    MyTidReleaser.Armed = true;
  }
  return MyTid;
}

//===----------------------------------------------------------------------===//
// Chaos
//===----------------------------------------------------------------------===//

std::atomic<uint32_t> Chaos::InverseProb{0};
std::atomic<uint64_t> Chaos::BaseSeed{0};
std::atomic<uint64_t> Chaos::Session{0};

namespace {
/// Per-thread xorshift state, reseeded when the thread first observes a
/// new Chaos::enable session. Keying the reseed on a session counter (not
/// on the seed value) is what makes the sequence reproducible: re-enabling
/// with the same seed restarts the per-thread stream from the top instead
/// of silently continuing where the previous session left off.
thread_local uint64_t ChaosState = 0;
thread_local uint64_t ChaosSessionSeen = 0;
} // namespace

void Chaos::enable(uint32_t Inverse, uint64_t Seed) {
  BaseSeed.store(Seed | 1, std::memory_order_relaxed);
  Session.fetch_add(1, std::memory_order_relaxed);
  InverseProb.store(Inverse, std::memory_order_relaxed);
}

void Chaos::disable() { InverseProb.store(0, std::memory_order_relaxed); }

bool Chaos::point() {
  uint32_t Inv = InverseProb.load(std::memory_order_relaxed);
  if (Inv == 0)
    return false;
  uint64_t S = Session.load(std::memory_order_relaxed);
  if (ChaosSessionSeen != S) {
    ChaosSessionSeen = S;
    uint64_t Seed = BaseSeed.load(std::memory_order_relaxed);
    ChaosState = Seed * 0x9e3779b97f4a7c15ULL +
                 (static_cast<uint64_t>(currentTid()) + 1) * 0x100000001b3ULL;
  }
  // xorshift64*
  uint64_t X = ChaosState;
  X ^= X >> 12;
  X ^= X << 25;
  X ^= X >> 27;
  ChaosState = X;
  if ((X * 0x2545F4914F6CDD1DULL >> 33) % Inv != 0)
    return false;
  std::this_thread::yield();
  return true;
}
