//===- Instrument.cpp - Hooks the implementation code calls ---------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Instrument.h"

#include <thread>

using namespace vyrd;

//===----------------------------------------------------------------------===//
// Thread ids
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint32_t> NextTid{0};
thread_local uint32_t MyTid = UINT32_MAX;
} // namespace

ThreadId vyrd::currentTid() {
  if (MyTid == UINT32_MAX)
    MyTid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return MyTid;
}

//===----------------------------------------------------------------------===//
// Chaos
//===----------------------------------------------------------------------===//

std::atomic<uint32_t> Chaos::InverseProb{0};
std::atomic<uint64_t> Chaos::BaseSeed{0};

namespace {
/// Per-thread xorshift state, reseeded when Chaos::enable changes the seed.
thread_local uint64_t ChaosState = 0;
thread_local uint64_t ChaosSeedSeen = 0;
} // namespace

void Chaos::enable(uint32_t Inverse, uint64_t Seed) {
  BaseSeed.store(Seed | 1, std::memory_order_relaxed);
  InverseProb.store(Inverse, std::memory_order_relaxed);
}

void Chaos::disable() { InverseProb.store(0, std::memory_order_relaxed); }

void Chaos::point() {
  uint32_t Inv = InverseProb.load(std::memory_order_relaxed);
  if (Inv == 0)
    return;
  uint64_t Seed = BaseSeed.load(std::memory_order_relaxed);
  if (ChaosSeedSeen != Seed) {
    ChaosSeedSeen = Seed;
    ChaosState = Seed * 0x9e3779b97f4a7c15ULL +
                 (static_cast<uint64_t>(currentTid()) + 1) * 0x100000001b3ULL;
  }
  // xorshift64*
  uint64_t X = ChaosState;
  X ^= X >> 12;
  X ^= X << 25;
  X ^= X >> 27;
  ChaosState = X;
  if ((X * 0x2545F4914F6CDD1DULL >> 33) % Inv == 0)
    std::this_thread::yield();
}
