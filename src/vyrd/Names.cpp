//===- Names.cpp - Interned identifiers for methods and variables --------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Names.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

using namespace vyrd;

namespace {

/// Process-wide intern table. Strings live in a deque so string_views handed
/// out remain valid as the table grows.
class NameTable {
public:
  Name intern(std::string_view S) {
    {
      std::shared_lock Lock(M);
      auto It = Ids.find(std::string(S));
      if (It != Ids.end())
        return Name(It->second);
    }
    std::unique_lock Lock(M);
    auto [It, Inserted] = Ids.try_emplace(std::string(S), 0);
    if (!Inserted)
      return Name(It->second);
    Strings.push_back(It->first);
    It->second = static_cast<uint32_t>(Strings.size());
    return Name(It->second);
  }

  std::string_view str(uint32_t Id) const {
    if (Id == 0)
      return "<invalid>";
    std::shared_lock Lock(M);
    assert(Id <= Strings.size() && "unknown name id");
    return Strings[Id - 1];
  }

  static NameTable &get() {
    static NameTable T;
    return T;
  }

private:
  mutable std::shared_mutex M;
  std::unordered_map<std::string, uint32_t> Ids;
  std::deque<std::string_view> Strings; // index = id - 1
};

} // namespace

std::string_view Name::str() const { return NameTable::get().str(Id); }

Name vyrd::internName(std::string_view S) { return NameTable::get().intern(S); }
