//===- Epoch.h - Epoch-parallel offline verification ------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-parallel checking of a recorded log chain. Snapshot sidecars
/// (LOGFORMAT v5, see Snapshot.h) cut one object's record stream into
/// *epochs*: a sidecar at segment N serializes every checker's state as of
/// the segment's first record, so the chain splits at each sidecar into
/// independently checkable slices — restore the checker from the sidecar,
/// feed the slice, and the verdict composes with the neighboring slices
/// because refinement is preserved under sequential splits of the trace
/// (docs/SNAPSHOTS.md, "Why epoch stitching is sound").
///
/// epochCheck() runs the (object, epoch) task matrix on a small thread
/// pool. This parallelizes *within* one object — the dimension the online
/// pool's object-affine scheduling cannot touch — so a chain dominated by
/// a single hot object still checks on all cores. Stitching is pessimistic
/// where it must be: a violation (or a baseline-audit mismatch) in epoch k
/// invalidates the snapshots later epochs restored from, so the object is
/// re-checked serially from epoch k's snapshot through the end of the
/// chain before anything is reported.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_EPOCH_H
#define VYRD_EPOCH_H

#include "vyrd/Verifier.h"

#include <functional>
#include <memory>
#include <string>

namespace vyrd {

/// Builds the spec + replayer pipeline for one registered object of the
/// recorded run. epochCheck calls it once per (object, epoch) task — each
/// task needs a private pipeline — so the factory must be thread-safe and
/// must produce the same spec the recording run registered for \p Id
/// (same constructor parameters; the sidecar blobs restore into it).
/// \p Name receives the object's report name. \returns false when \p Id
/// is not a known object (the task is skipped).
using PipelineFactory = std::function<bool(
    ObjectId Id, std::string &Name, std::unique_ptr<Spec> &S,
    std::unique_ptr<Replayer> &R)>;

/// Options for epochCheck().
struct EpochCheckOptions {
  /// Checker settings for every task (AllowIncompleteTail is forced on
  /// for non-final epochs: their executions legitimately straddle the
  /// epoch boundary and are completed by the successor slice).
  CheckerConfig Checker;
  /// Size of the (object, epoch) task pool. 1 = serial (still epoch by
  /// epoch when UseSnapshots, useful for testing the stitching).
  unsigned Threads = 1;
  /// When false, ignore sidecars and run one from-zero epoch per object —
  /// the serial offline baseline the speedup is measured against.
  bool UseSnapshots = true;
  /// Cold-restart mode (`vyrd-check --resume`): only the front segment's
  /// sidecar seeds the check; later sidecars are ignored, so each object
  /// runs as one epoch from the oldest live record to the end of the
  /// chain. Also sets G_RestartLag (records between the resume watermark
  /// and the chain's end) when a hub is attached.
  bool ResumeOnly = false;
  /// Optional hub for C_SnapshotLoads / C_EpochsChecked /
  /// G_EpochsInFlight accounting; may be null.
  Telemetry *Telem = nullptr;
};

/// Result of an epochCheck run: the familiar report plus the epoch
/// bookkeeping the tests and benchmarks assert on.
struct EpochReport {
  /// Aggregated verdict, same shape as a Verifier run's report.
  VerifierReport Report;
  /// Epochs the chain split into (1 when UseSnapshots is false or no
  /// usable sidecar exists).
  uint64_t Epochs = 0;
  /// (object, epoch) tasks executed, excluding serial re-checks.
  uint64_t Tasks = 0;
  /// Sidecar blobs restored into checkers.
  uint64_t SnapshotLoads = 0;
  /// Objects re-checked serially because an epoch found a violation or
  /// failed its baseline audit.
  uint64_t SerialRechecks = 0;
  /// Non-empty when the chain was unusable (no files, reclaimed prefix
  /// without a sidecar, malformed front segment); Report is empty then.
  std::string Error;

  bool ok() const { return Error.empty() && Report.ok(); }
};

/// Checks the recorded chain rooted at \p LogPath (a plain log file or a
/// segment chain base) for the \p NumObjects objects the recording run
/// registered, splitting each object's stream into snapshot-delimited
/// epochs and checking the (object, epoch) matrix on \p Opts.Threads
/// workers. See the file comment for the stitching rule.
EpochReport epochCheck(const std::string &LogPath, size_t NumObjects,
                       const PipelineFactory &Factory,
                       const EpochCheckOptions &Opts);

} // namespace vyrd

#endif // VYRD_EPOCH_H
