//===- Backpressure.cpp - Bounded-pipeline admission policies -------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Backpressure.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

using namespace vyrd;

const char *vyrd::backpressurePolicyName(BackpressurePolicy P) {
  switch (P) {
  case BackpressurePolicy::BP_Block:
    return "block";
  case BackpressurePolicy::BP_SpillToDisk:
    return "spill";
  case BackpressurePolicy::BP_Shed:
    return "shed";
  }
  return "?";
}

void BackpressureStats::merge(const BackpressureStats &O) {
  BlockedAppends += O.BlockedAppends;
  BlockedNanos += O.BlockedNanos;
  ShedRecords += O.ShedRecords;
  SpilledRecords += O.SpilledRecords;
  PendingRecordsHwm = std::max(PendingRecordsHwm, O.PendingRecordsHwm);
  TailBytesHwm = std::max(TailBytesHwm, O.TailBytesHwm);
  SegmentsCreated += O.SegmentsCreated;
  SegmentsReclaimed += O.SegmentsReclaimed;
  SegmentsLiveHwm = std::max(SegmentsLiveHwm, O.SegmentsLiveHwm);
}

bool BackpressureStats::any() const {
  return BlockedAppends || ShedRecords || SpilledRecords ||
         PendingRecordsHwm || SegmentsCreated;
}

/// Heap bytes a Value pins beyond its inline storage. Strings inside the
/// small-string buffer cost nothing extra.
static size_t valueHeapBytes(const Value &V) {
  if (V.isStr()) {
    const std::string &S = V.asStr();
    return S.capacity() > sizeof(std::string) ? S.capacity() : 0;
  }
  if (V.isBytes())
    return V.asBytes().capacity();
  return 0;
}

size_t vyrd::actionFootprintBytes(const Action &A) {
  size_t B = sizeof(Action);
  if (!A.Args.inlined())
    B += A.Args.capacity() * sizeof(Value);
  for (const Value &V : A.Args)
    B += valueHeapBytes(V);
  B += valueHeapBytes(A.Ret);
  return B;
}

//===----------------------------------------------------------------------===//
// ShedFilter
//===----------------------------------------------------------------------===//

bool ShedFilter::shouldShed(const Action &A, bool OverLimit) {
  uint64_t Key = (static_cast<uint64_t>(A.Obj) << 32) | A.Tid;
  auto It = OpenWindows.find(Key);
  if (It != OpenWindows.end()) {
    // Inside a shed execution: everything this (object, thread) emits up
    // to the matching return goes down with the call.
    if (A.Kind == ActionKind::AK_Return)
      OpenWindows.erase(It);
    return true;
  }
  if (!OverLimit || A.Kind != ActionKind::AK_Call)
    return false;
  if (!Classifier || !Classifier(A))
    return false;
  OpenWindows.insert(Key);
  return true;
}

//===----------------------------------------------------------------------===//
// SegmentSink
//===----------------------------------------------------------------------===//

std::string vyrd::logSegmentPath(const std::string &Base, uint64_t Index) {
  char Suffix[16];
  std::snprintf(Suffix, sizeof(Suffix), ".%06" PRIu64, Index);
  return Base + Suffix;
}

bool vyrd::splitLogSegmentPath(const std::string &Path, std::string &Base,
                               uint64_t &Index) {
  if (Path.size() < 8 || Path[Path.size() - 7] != '.')
    return false;
  uint64_t N = 0;
  for (size_t I = Path.size() - 6; I < Path.size(); ++I) {
    char C = Path[I];
    if (C < '0' || C > '9')
      return false;
    N = N * 10 + static_cast<uint64_t>(C - '0');
  }
  if (N == 0)
    return false; // chain indices are 1-based
  Base = Path.substr(0, Path.size() - 7);
  Index = N;
  return true;
}

SegmentSink::~SegmentSink() { close(); }

std::string SegmentSink::segmentPathLocked(uint64_t Index) const {
  return SegmentBytes ? logSegmentPath(Path, Index) : Path;
}

bool SegmentSink::openSegmentLocked(uint64_t FirstSeq) {
  std::string P =
      SegmentBytes ? segmentPathLocked(NextIndex) : Path;
  File = std::fopen(P.c_str(), "wb");
  if (!File)
    return false;
  // Segments are self-contained: every rotation restarts the
  // name-interning table, so a segment decodes (and its predecessors
  // delete) independently.
  Encoder = ActionEncoder();
  ByteWriter HW;
  if (SegmentBytes)
    writeSegmentHeader(HW, NextIndex, FirstSeq);
  else
    writeLogHeader(HW);
  std::fwrite(HW.buffer().data(), 1, HW.size(), File);
  TotalBytes += HW.size();
  CurSegmentBytes = HW.size();
  Segment S;
  S.Index = SegmentBytes ? NextIndex : 0;
  S.FirstSeq = FirstSeq;
  Segments.push_back(S);
  ++NextIndex;
  ++SegmentsCreated;
  SegmentsLiveHwm = std::max<uint64_t>(SegmentsLiveHwm, Segments.size());
  return true;
}

bool SegmentSink::open(const std::string &OutPath, uint64_t SegBytes) {
  std::lock_guard Lock(M);
  Path = OutPath;
  SegmentBytes = SegBytes;
  Opened = openSegmentLocked(0);
  return Opened;
}

bool SegmentSink::valid() const {
  std::lock_guard Lock(M);
  return Opened;
}

void SegmentSink::flushPendingLocked() {
  if (Pending.size() == 0)
    return;
  if (File)
    std::fwrite(Pending.buffer().data(), 1, Pending.size(), File);
  Pending.clear();
}

void SegmentSink::rotateLocked(uint64_t NextFirstSeq) {
  flushPendingLocked();
  if (File) {
    // Flush and close the full segment *before* creating its successor:
    // chain readers take the successor's existence as proof the
    // predecessor is complete on disk.
    std::fflush(File);
    std::fclose(File);
    File = nullptr;
  }
  if (!Segments.empty())
    Segments.back().Closed = true;
  if (!openSegmentLocked(NextFirstSeq)) {
    std::fprintf(stderr, "vyrd: cannot open log segment %s\n",
                 segmentPathLocked(NextIndex).c_str());
    return;
  }
  // The successor exists: record the cut for the snapshot machinery
  // (Segments.back() is the segment openSegmentLocked just pushed).
  Cuts.push_back(SegmentCut{Segments.back().Index, NextFirstSeq});
}

void SegmentSink::write(const Action &A) {
  std::lock_guard Lock(M);
  if (!Opened || ClosedDown)
    return;
  if (SegmentBytes && CurSegmentBytes >= SegmentBytes &&
      !Segments.empty() && Segments.back().Records > 0)
    rotateLocked(A.Seq);
  size_t Before = Pending.size();
  Encoder.encode(A, Pending);
  size_t D = Pending.size() - Before;
  TotalBytes += D;
  CurSegmentBytes += D;
  if (!Segments.empty()) {
    Segment &S = Segments.back();
    if (S.Records == 0)
      S.FirstSeq = A.Seq;
    S.LastSeq = A.Seq;
    ++S.Records;
  }
  // Keep the pending buffer modest even if the owner forgets to flush.
  if (Pending.size() >= (1u << 18))
    flushPendingLocked();
}

void SegmentSink::flushPending() {
  std::lock_guard Lock(M);
  flushPendingLocked();
}

void SegmentSink::sync() {
  std::lock_guard Lock(M);
  flushPendingLocked();
  if (File)
    std::fflush(File);
}

void SegmentSink::close() {
  std::lock_guard Lock(M);
  if (ClosedDown)
    return;
  ClosedDown = true;
  flushPendingLocked();
  if (File) {
    std::fflush(File);
    std::fclose(File);
    File = nullptr;
  }
  if (!Segments.empty())
    Segments.back().Closed = true;
}

uint64_t SegmentSink::bytesWritten() const {
  std::lock_guard Lock(M);
  return TotalBytes;
}

void SegmentSink::reclaimThrough(uint64_t Watermark) {
  std::lock_guard Lock(M);
  if (!SegmentBytes)
    return;
  size_t N = 0;
  while (N < Segments.size()) {
    const Segment &S = Segments[N];
    if (!S.Closed || S.Records == 0 || S.LastSeq >= Watermark)
      break;
    std::remove(segmentPathLocked(S.Index).c_str());
    // A reclaimed segment's snapshot sidecar (if the Verifier wrote one)
    // goes with it: the sidecar encodes the state *before* this segment,
    // which is only useful while the segment's records still exist.
    std::remove((segmentPathLocked(S.Index) + ".snap").c_str());
    ++SegmentsReclaimed;
    ++N;
  }
  if (N)
    Segments.erase(Segments.begin(), Segments.begin() + N);
}

size_t SegmentSink::liveSegments() const {
  std::lock_guard Lock(M);
  return Segments.size();
}

std::string SegmentSink::pathForSeq(uint64_t Seq) const {
  std::lock_guard Lock(M);
  if (!SegmentBytes || Segments.empty())
    return Path;
  const Segment *Best = nullptr;
  for (const Segment &S : Segments) {
    if (S.FirstSeq <= Seq)
      Best = &S;
    else
      break;
  }
  if (!Best)
    Best = &Segments.front(); // conservative: walk forward from oldest
  return segmentPathLocked(Best->Index);
}

void SegmentSink::drainCuts(std::vector<SegmentCut> &Out) {
  std::lock_guard Lock(M);
  if (Cuts.empty())
    return;
  Out.insert(Out.end(), Cuts.begin(), Cuts.end());
  Cuts.clear();
}

BackpressureStats SegmentSink::stats() const {
  std::lock_guard Lock(M);
  BackpressureStats S;
  S.SegmentsCreated = SegmentsCreated;
  S.SegmentsReclaimed = SegmentsReclaimed;
  S.SegmentsLiveHwm = SegmentsLiveHwm;
  return S;
}
