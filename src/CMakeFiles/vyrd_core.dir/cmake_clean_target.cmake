file(REMOVE_RECURSE
  "libvyrd_core.a"
)
