# Empty dependencies file for vyrd_core.
# This may be replaced when dependencies are built.
