
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vyrd/Action.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Action.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Action.cpp.o.d"
  "/root/repo/src/vyrd/Auto.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Auto.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Auto.cpp.o.d"
  "/root/repo/src/vyrd/Backpressure.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Backpressure.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Backpressure.cpp.o.d"
  "/root/repo/src/vyrd/BufferedLog.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/BufferedLog.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/BufferedLog.cpp.o.d"
  "/root/repo/src/vyrd/Checker.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Checker.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Checker.cpp.o.d"
  "/root/repo/src/vyrd/Epoch.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Epoch.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Epoch.cpp.o.d"
  "/root/repo/src/vyrd/Instrument.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Instrument.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Instrument.cpp.o.d"
  "/root/repo/src/vyrd/Log.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Log.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Log.cpp.o.d"
  "/root/repo/src/vyrd/Monitor.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Monitor.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Monitor.cpp.o.d"
  "/root/repo/src/vyrd/Names.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Names.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Names.cpp.o.d"
  "/root/repo/src/vyrd/Replayer.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Replayer.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Replayer.cpp.o.d"
  "/root/repo/src/vyrd/Serialize.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Serialize.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Serialize.cpp.o.d"
  "/root/repo/src/vyrd/Snapshot.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Snapshot.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Snapshot.cpp.o.d"
  "/root/repo/src/vyrd/Spec.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Spec.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Spec.cpp.o.d"
  "/root/repo/src/vyrd/Telemetry.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Telemetry.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Telemetry.cpp.o.d"
  "/root/repo/src/vyrd/Trace.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Trace.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Trace.cpp.o.d"
  "/root/repo/src/vyrd/Value.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Value.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Value.cpp.o.d"
  "/root/repo/src/vyrd/Verifier.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/Verifier.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/Verifier.cpp.o.d"
  "/root/repo/src/vyrd/View.cpp" "src/CMakeFiles/vyrd_core.dir/vyrd/View.cpp.o" "gcc" "src/CMakeFiles/vyrd_core.dir/vyrd/View.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
