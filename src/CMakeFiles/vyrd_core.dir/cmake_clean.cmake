file(REMOVE_RECURSE
  "CMakeFiles/vyrd_core.dir/vyrd/Action.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Action.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Backpressure.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Backpressure.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/BufferedLog.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/BufferedLog.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Checker.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Checker.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Instrument.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Instrument.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Log.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Log.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Names.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Names.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Replayer.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Replayer.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Serialize.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Serialize.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Spec.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Spec.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Telemetry.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Telemetry.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Trace.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Trace.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Value.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Value.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/Verifier.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/Verifier.cpp.o.d"
  "CMakeFiles/vyrd_core.dir/vyrd/View.cpp.o"
  "CMakeFiles/vyrd_core.dir/vyrd/View.cpp.o.d"
  "libvyrd_core.a"
  "libvyrd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
