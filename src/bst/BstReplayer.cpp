//===- BstReplayer.cpp - Shadow state for the BST multiset ----------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bst/BstReplayer.h"

#include "vyrd/Serialize.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace vyrd;
using namespace vyrd::bst;

BstReplayer::BstReplayer() : V(BstVocab::get()) {
  ShadowNode &S = Nodes[SentinelId];
  S.Attached = true;
}

BstReplayer::ShadowNode *BstReplayer::node(uint64_t Id) {
  auto It = Nodes.find(Id);
  return It == Nodes.end() ? nullptr : &It->second;
}

void BstReplayer::setAttached(uint64_t Id, bool Attach, View &ViewI) {
  // Iterative subtree walk toggling attachment and the view contribution.
  // Nodes already in the target state stop the walk (guards against
  // anomalous double-links produced by buggy interleavings).
  std::vector<uint64_t> Stack{Id};
  while (!Stack.empty()) {
    uint64_t Cur = Stack.back();
    Stack.pop_back();
    if (Cur == 0)
      continue;
    ShadowNode *N = node(Cur);
    if (!N || N->Attached == Attach)
      continue;
    N->Attached = Attach;
    for (size_t I = 0; I < N->Count; ++I) {
      if (Attach)
        ViewI.add(Value(N->Key), Value());
      else
        ViewI.remove(Value(N->Key), Value());
    }
    Stack.push_back(N->Child[0]);
    Stack.push_back(N->Child[1]);
  }
}

void BstReplayer::applyUpdate(const Action &A, View &ViewI) {
  assert(A.Kind == ActionKind::AK_ReplayOp &&
         "BST logs coarse-grained replay ops only");

  if (A.Var == V.OpNode) {
    assert(A.Args.size() == 2);
    uint64_t Id = static_cast<uint64_t>(A.Args[0].asInt());
    ShadowNode &N = Nodes[Id];
    N.Key = A.Args[1].asInt();
    return;
  }

  if (A.Var == V.OpLink) {
    assert(A.Args.size() == 3);
    uint64_t PId = static_cast<uint64_t>(A.Args[0].asInt());
    int Dir = static_cast<int>(A.Args[1].asInt());
    uint64_t CId =
        A.Args[2].isNull() ? 0 : static_cast<uint64_t>(A.Args[2].asInt());
    ShadowNode *P = node(PId);
    assert(P && "link under unknown parent");
    assert((Dir == 0 || Dir == 1) && "bad link direction");
    uint64_t Old = P->Child[Dir];
    if (Old == CId)
      return;
    if (P->Attached && Old)
      setAttached(Old, false, ViewI);
    P->Child[Dir] = CId;
    if (P->Attached && CId)
      setAttached(CId, true, ViewI);
    return;
  }

  if (A.Var == V.OpCount) {
    assert(A.Args.size() == 2);
    uint64_t Id = static_cast<uint64_t>(A.Args[0].asInt());
    size_t NewCount = static_cast<size_t>(A.Args[1].asInt());
    ShadowNode *N = node(Id);
    assert(N && "count write to unknown node");
    if (N->Attached) {
      for (size_t I = N->Count; I < NewCount; ++I)
        ViewI.add(Value(N->Key), Value());
      for (size_t I = NewCount; I < N->Count; ++I)
        ViewI.remove(Value(N->Key), Value());
    }
    N->Count = NewCount;
    return;
  }

  assert(false && "unknown BST replay op");
}

void BstReplayer::buildView(View &Out) const {
  Out.clear();
  // Walk from the sentinel; only reachable nodes contribute. A visited set
  // keeps the walk terminating even if a buggy interleaving produced a
  // cyclic shadow shape.
  std::unordered_map<uint64_t, bool> Visited;
  std::vector<uint64_t> Stack{SentinelId};
  while (!Stack.empty()) {
    uint64_t Cur = Stack.back();
    Stack.pop_back();
    if (Cur == 0 || Visited[Cur])
      continue;
    Visited[Cur] = true;
    auto It = Nodes.find(Cur);
    if (It == Nodes.end())
      continue;
    const ShadowNode &N = It->second;
    if (Cur != SentinelId)
      for (size_t I = 0; I < N.Count; ++I)
        Out.add(Value(N.Key), Value());
    Stack.push_back(N.Child[0]);
    Stack.push_back(N.Child[1]);
  }
}

bool BstReplayer::saveState(ByteWriter &W) const {
  // Unordered storage, canonical blob: emit nodes sorted by id.
  std::vector<uint64_t> Ids;
  Ids.reserve(Nodes.size());
  for (const auto &[Id, N] : Nodes)
    Ids.push_back(Id);
  std::sort(Ids.begin(), Ids.end());
  W.varint(Ids.size());
  for (uint64_t Id : Ids) {
    const ShadowNode &N = Nodes.at(Id);
    W.varint(Id);
    W.svarint(N.Key);
    W.varint(N.Count);
    W.varint(N.Child[0]);
    W.varint(N.Child[1]);
    W.u8(N.Attached ? 1 : 0);
  }
  return true;
}

bool BstReplayer::loadState(ByteReader &R) {
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  Nodes.clear();
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Id = R.varint();
    ShadowNode S;
    S.Key = R.svarint();
    S.Count = static_cast<size_t>(R.varint());
    S.Child[0] = R.varint();
    S.Child[1] = R.varint();
    S.Attached = R.u8() != 0;
    if (!R.ok())
      return false;
    Nodes.emplace(Id, S);
  }
  return R.ok();
}
