//===- BstReplayer.h - Shadow state for the BST multiset --------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs the BST multiset from coarse-grained replay records
/// (Sec. 6.2) and maintains viewI — the multiset of keys with their
/// occurrence counts on nodes *reachable from the root* — incrementally.
/// Reachability is what makes the lost-update bug visible: when a buggy
/// insert overwrites a child pointer, the replayed link detaches the old
/// subtree and its keys leave viewI while viewS still has them.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_BST_BSTREPLAYER_H
#define VYRD_BST_BSTREPLAYER_H

#include "bst/BstMultiset.h"
#include "vyrd/Replayer.h"

#include <unordered_map>

namespace vyrd {
namespace bst {

/// Shadow nodes keyed by the implementation's node ids.
class BstReplayer : public Replayer {
public:
  BstReplayer();

  void applyUpdate(const Action &A, View &ViewI) override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

private:
  struct ShadowNode {
    int64_t Key = 0;
    size_t Count = 0;
    uint64_t Child[2] = {0, 0}; // 0 = null
    bool Attached = false;
  };

  ShadowNode *node(uint64_t Id);
  void setAttached(uint64_t Id, bool Attach, View &ViewI);

  BstVocab V;
  std::unordered_map<uint64_t, ShadowNode> Nodes;
  static constexpr uint64_t SentinelId = 1;
};

} // namespace bst
} // namespace vyrd

#endif // VYRD_BST_BSTREPLAYER_H
