//===- BstSpec.h - Atomic specification for the BST multiset ----*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Method-atomic specification for the BST multiset. Same abstract state as
/// the array multiset's spec (a multiset of integers); the method set
/// differs: no InsertPair, and a Compress mutator whose transition is the
/// identity (the compression thread re-arranges structure only, Sec. 7.2.3
/// applies the same idea to the B-link tree).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_BST_BSTSPEC_H
#define VYRD_BST_BSTSPEC_H

#include "bst/BstMultiset.h"
#include "vyrd/Spec.h"

#include <map>

namespace vyrd {
namespace bst {

/// Specification state: the multiset contents M.
class BstSpec : public Spec {
public:
  BstSpec();

  bool isObserver(Name Method) const override;
  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override;
  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

  size_t count(int64_t X) const;

private:
  BstVocab V;
  std::map<int64_t, size_t> M;
};

} // namespace bst
} // namespace vyrd

#endif // VYRD_BST_BSTSPEC_H
