//===- BstMultiset.h - Binary-search-tree multiset --------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's second multiset implementation (Sec. 7.4.2): a binary search
/// tree with hand-over-hand (lock-coupling) traversal, per-key occurrence
/// counts, a Delete operation, and a compression thread that splices out
/// empty nodes without changing the multiset contents.
///
/// Instrumentation uses coarse-grained replay records (Sec. 6.2):
/// `bst.node` (node creation), `bst.link` (child-pointer write) and
/// `bst.count` (occurrence-count write), rather than raw field writes —
/// the replayer reconstructs reachability from them, so the bespoke
/// BstReplayer stays. Everything else is automatic: per-node locks are
/// `vyrd::Mutex` shims (a lock-coupling descent holds a chain of them, so
/// the whole descent is one commit bracket — opened lazily at the first
/// record, which keeps pure-reader descents out of the log), and the
/// `BstMultiset` facade dispatches through `Instrumented<T>`.
///
/// Injectable bug (Table 1, "Unlocking parent before insertion"): the
/// inserting thread releases the parent's lock after finding the insertion
/// point and re-acquires it to link the new node *without re-checking* that
/// the child slot is still empty, so a concurrent insert into the same slot
/// is overwritten and its node leaks out of the tree.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_BST_BSTMULTISET_H
#define VYRD_BST_BSTMULTISET_H

#include "vyrd/Auto.h"

#include <cstdint>
#include <mutex>
#include <vector>

namespace vyrd {
namespace bst {

/// Interned method and replay-op names for the BST multiset.
struct BstVocab {
  Name Insert, Delete, LookUp, Compress;
  Name OpNode, OpLink, OpCount;
  static BstVocab get();
};

/// The uninstrumented BST core (trailing-AutoContext protocol).
class BstMultisetImpl {
public:
  struct Options {
    /// Inject the unlock-parent-before-insertion bug.
    bool BuggyInsert = false;
  };

  BstMultisetImpl(const Options &Opts, AutoContext &Ctx);
  ~BstMultisetImpl();

  BstMultisetImpl(const BstMultisetImpl &) = delete;
  BstMultisetImpl &operator=(const BstMultisetImpl &) = delete;

  /// Inserts one occurrence of \p X. Always succeeds.
  bool insert(int64_t X);

  /// Removes one occurrence of \p X. \returns false if absent.
  bool remove(int64_t X);

  /// Observer: whether \p X is currently a member.
  bool lookUp(int64_t X) const;

  /// One compression step: splices out one empty (count == 0) node with at
  /// most one child, if any exists. Contents are unchanged; the spec
  /// transition is the identity. \returns whether a node was spliced.
  bool compress();

  /// Number of allocated nodes (spliced ones included); for tests.
  size_t allocatedNodes() const;

private:
  struct Node {
    explicit Node(AutoContext &C) : M(C) {}
    uint64_t Id = 0;
    int64_t Key = 0;
    size_t Count = 0;
    Node *Child[2] = {nullptr, nullptr};
    mutable Mutex M;
  };

  Node *newNode(int64_t Key);
  void logLink(const Node *Parent, int Dir, const Node *Child);
  void logCount(const Node *N);

  Options Opts;
  AutoContext &Ctx;
  BstVocab V;
  /// Sentinel pseudo-root: real nodes hang off Sentinel->Child[1].
  Node *Sentinel;
  /// All nodes ever allocated; freed in the destructor (spliced and
  /// orphaned nodes must outlive racing readers). Internal bookkeeping,
  /// not logged state: a plain mutex, not a shim.
  mutable std::mutex RegistryM;
  std::vector<Node *> Registry;
  uint64_t NextId = 2; // 1 is the sentinel
};

} // namespace bst

template <> struct AutoMethods<bst::BstMultisetImpl> {
  using B = bst::BstMultisetImpl;
  static constexpr auto desc(MethodTag<&B::insert>) {
    return method("BstInsert");
  }
  static constexpr auto desc(MethodTag<&B::remove>) {
    return method("BstDelete");
  }
  static constexpr auto desc(MethodTag<&B::lookUp>) {
    return observer("BstLookUp");
  }
  static constexpr auto desc(MethodTag<&B::compress>) {
    return method("BstCompress");
  }
};

namespace bst {

/// The instrumented BST facade.
class BstMultiset : public Instrumented<BstMultisetImpl> {
public:
  using Options = BstMultisetImpl::Options;

  BstMultiset(const Options &O, Hooks H) : Instrumented(H, O) {}

  bool insert(int64_t X) { return invoke<&BstMultisetImpl::insert>(X); }
  bool remove(int64_t X) { return invoke<&BstMultisetImpl::remove>(X); }
  bool lookUp(int64_t X) { return invoke<&BstMultisetImpl::lookUp>(X); }
  bool compress() { return invoke<&BstMultisetImpl::compress>(); }

  size_t allocatedNodes() const { return raw().allocatedNodes(); }
};

} // namespace bst
} // namespace vyrd

#endif // VYRD_BST_BSTMULTISET_H
