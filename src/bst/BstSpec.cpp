//===- BstSpec.cpp - Atomic specification for the BST multiset ------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bst/BstSpec.h"

#include "vyrd/Serialize.h"

using namespace vyrd;
using namespace vyrd::bst;

BstSpec::BstSpec() : V(BstVocab::get()) {}

bool BstSpec::isObserver(Name Method) const { return Method == V.LookUp; }

bool BstSpec::applyMutator(Name Method, const ValueList &Args,
                           const Value &Ret, View &ViewS) {
  if (Method == V.Compress) {
    // Structure-only maintenance: the abstract state must not change.
    return Ret.isBool();
  }
  if (!Ret.isBool())
    return false;
  bool Success = Ret.asBool();

  if (Method == V.Insert) {
    if (Args.size() != 1 || !Args[0].isInt())
      return false;
    if (!Success)
      return true; // exceptional termination: no change
    ++M[Args[0].asInt()];
    ViewS.add(Args[0], Value());
    return true;
  }

  if (Method == V.Delete) {
    if (Args.size() != 1 || !Args[0].isInt())
      return false;
    if (!Success)
      return true;
    auto It = M.find(Args[0].asInt());
    if (It == M.end())
      return false; // successful Delete of an absent element
    if (--It->second == 0)
      M.erase(It);
    ViewS.remove(Args[0], Value());
    return true;
  }

  return false;
}

bool BstSpec::returnAllowed(Name Method, const ValueList &Args,
                            const Value &Ret) const {
  if (Method != V.LookUp || Args.size() != 1 || !Args[0].isInt() ||
      !Ret.isBool())
    return false;
  return Ret.asBool() == (M.count(Args[0].asInt()) != 0);
}

void BstSpec::buildView(View &Out) const {
  Out.clear();
  for (const auto &[X, Mult] : M)
    for (size_t I = 0; I < Mult; ++I)
      Out.add(Value(X), Value());
}

size_t BstSpec::count(int64_t X) const {
  auto It = M.find(X);
  return It == M.end() ? 0 : It->second;
}

bool BstSpec::saveState(ByteWriter &W) const {
  W.varint(M.size());
  for (const auto &[X, Mult] : M) {
    W.svarint(X);
    W.varint(Mult);
  }
  return true;
}

bool BstSpec::loadState(ByteReader &R) {
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  M.clear();
  for (uint64_t I = 0; I < N; ++I) {
    int64_t X = R.svarint();
    uint64_t Mult = R.varint();
    if (!R.ok() || Mult == 0)
      return false;
    M.emplace(X, static_cast<size_t>(Mult));
  }
  return R.ok();
}
