//===- BstMultiset.cpp - Binary-search-tree multiset ----------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bst/BstMultiset.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::bst;

BstVocab BstVocab::get() {
  BstVocab V;
  V.Insert = internName("BstInsert");
  V.Delete = internName("BstDelete");
  V.LookUp = internName("BstLookUp");
  V.Compress = internName("BstCompress");
  V.OpNode = internName("bst.node");
  V.OpLink = internName("bst.link");
  V.OpCount = internName("bst.count");
  return V;
}

BstMultisetImpl::BstMultisetImpl(const Options &Opts, AutoContext &Ctx)
    : Opts(Opts), Ctx(Ctx), V(BstVocab::get()) {
  Sentinel = new Node(Ctx);
  Sentinel->Id = 1;
  Sentinel->Key = INT64_MIN;
  Registry.push_back(Sentinel);
}

BstMultisetImpl::~BstMultisetImpl() {
  for (Node *N : Registry)
    delete N;
}

BstMultisetImpl::Node *BstMultisetImpl::newNode(int64_t Key) {
  Node *N = new Node(Ctx);
  N->Key = Key;
  {
    std::lock_guard Lock(RegistryM);
    N->Id = NextId++;
    Registry.push_back(N);
  }
  Ctx.replayOp(V.OpNode, {Value(static_cast<int64_t>(N->Id)), Value(Key)});
  return N;
}

void BstMultisetImpl::logLink(const Node *Parent, int Dir, const Node *Child) {
  Ctx.replayOp(V.OpLink,
               {Value(static_cast<int64_t>(Parent->Id)), Value(Dir),
                Child ? Value(static_cast<int64_t>(Child->Id)) : Value()});
}

void BstMultisetImpl::logCount(const Node *N) {
  Ctx.replayOp(V.OpCount, {Value(static_cast<int64_t>(N->Id)),
                           Value(static_cast<int64_t>(N->Count))});
}

size_t BstMultisetImpl::allocatedNodes() const {
  std::lock_guard Lock(RegistryM);
  return Registry.size();
}

bool BstMultisetImpl::insert(int64_t X) {
  Node *Cur = Sentinel;
  Cur->M.lock();
  while (true) {
    int Dir = Cur == Sentinel ? 1 : (X < Cur->Key ? 0 : 1);
    if (Cur != Sentinel && X == Cur->Key) {
      // Existing key: bump its occurrence count under the node lock.
      ++Cur->Count;
      logCount(Cur);
      Ctx.commit();
      Cur->M.unlock();
      return true;
    }
    Node *Next = Cur->Child[Dir];
    if (!Next) {
      // Insertion point found at (Cur, Dir).
      Node *N = newNode(X);
      if (Opts.BuggyInsert) {
        // BUG: give up the parent lock before linking, then re-acquire and
        // link without re-checking that the slot is still empty. A
        // concurrent insert that grabbed the slot in between is silently
        // overwritten; its node becomes unreachable.
        Cur->M.unlock();
        Chaos::point();
        Cur->M.lock();
      }
      Cur->Child[Dir] = N;
      logLink(Cur, Dir, N);
      N->Count = 1;
      logCount(N);
      Ctx.commit();
      Cur->M.unlock();
      return true;
    }
    // Hand-over-hand: take the child's lock before releasing the parent's.
    Next->M.lock();
    Cur->M.unlock();
    Cur = Next;
  }
}

bool BstMultisetImpl::remove(int64_t X) {
  Node *Cur = Sentinel;
  Cur->M.lock();
  while (true) {
    if (Cur != Sentinel && X == Cur->Key) {
      bool Ok = Cur->Count > 0;
      if (Ok) {
        --Cur->Count;
        logCount(Cur);
        Ctx.commit();
      }
      Cur->M.unlock();
      return Ok;
    }
    int Dir = Cur == Sentinel ? 1 : (X < Cur->Key ? 0 : 1);
    Node *Next = Cur->Child[Dir];
    if (!Next) {
      Cur->M.unlock();
      return false;
    }
    Next->M.lock();
    Cur->M.unlock();
    Cur = Next;
  }
}

bool BstMultisetImpl::lookUp(int64_t X) const {
  const Node *Cur = Sentinel;
  Cur->M.lock();
  while (true) {
    if (Cur != Sentinel && X == Cur->Key) {
      bool Found = Cur->Count > 0;
      Cur->M.unlock();
      return Found;
    }
    int Dir = Cur == Sentinel ? 1 : (X < Cur->Key ? 0 : 1);
    const Node *Next = Cur->Child[Dir];
    if (!Next) {
      Cur->M.unlock();
      return false;
    }
    Next->M.lock();
    Cur->M.unlock();
    Cur = Next;
  }
}

bool BstMultisetImpl::compress() {
  // Walk down holding parent + child locks, looking for an empty node with
  // at most one child to splice out. One splice per call.
  Node *Parent = Sentinel;
  Parent->M.lock();
  int Dir = 1;
  while (true) {
    Node *Cur = Parent->Child[Dir];
    if (!Cur) {
      // Try the other side once at each level.
      if (Parent != Sentinel && Dir == 0) {
        Dir = 1;
        continue;
      }
      Parent->M.unlock();
      return false;
    }
    Cur->M.lock();
    if (Cur->Count == 0 && (!Cur->Child[0] || !Cur->Child[1])) {
      Node *Survivor = Cur->Child[0] ? Cur->Child[0] : Cur->Child[1];
      Parent->Child[Dir] = Survivor;
      logLink(Parent, Dir, Survivor);
      Ctx.commit();
      Cur->M.unlock();
      Parent->M.unlock();
      return true;
    }
    Parent->M.unlock();
    Parent = Cur;
    Dir = Parent->Child[0] ? 0 : 1;
  }
}
