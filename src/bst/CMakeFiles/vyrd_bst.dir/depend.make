# Empty dependencies file for vyrd_bst.
# This may be replaced when dependencies are built.
