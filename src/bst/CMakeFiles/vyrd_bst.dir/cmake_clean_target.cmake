file(REMOVE_RECURSE
  "libvyrd_bst.a"
)
