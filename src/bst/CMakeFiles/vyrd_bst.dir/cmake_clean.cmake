file(REMOVE_RECURSE
  "CMakeFiles/vyrd_bst.dir/BstMultiset.cpp.o"
  "CMakeFiles/vyrd_bst.dir/BstMultiset.cpp.o.d"
  "CMakeFiles/vyrd_bst.dir/BstReplayer.cpp.o"
  "CMakeFiles/vyrd_bst.dir/BstReplayer.cpp.o.d"
  "CMakeFiles/vyrd_bst.dir/BstSpec.cpp.o"
  "CMakeFiles/vyrd_bst.dir/BstSpec.cpp.o.d"
  "libvyrd_bst.a"
  "libvyrd_bst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd_bst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
