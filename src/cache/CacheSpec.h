//===- CacheSpec.h - Atomic spec + replayer for Cache+ChunkManager -*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification and replayer for the combined Cache + Chunk Manager
/// system (Sec. 7.2.1). The abstract state is a map handle -> bytes; Flush
/// and Evict are no-op mutators. viewI is extracted exactly as the paper
/// describes: "for each handle, if there exists a cache entry associated
/// with handle, the byte-array is taken from the cache entry, otherwise it
/// is taken from Chunk Manager". The replayer also evaluates the two
/// runtime invariants of Sec. 7.2.1 at every commit.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_CACHE_CACHESPEC_H
#define VYRD_CACHE_CACHESPEC_H

#include "cache/BoxCache.h"
#include "vyrd/Replayer.h"
#include "vyrd/Spec.h"

#include <functional>
#include <map>
#include <set>

namespace vyrd {
namespace cache {

/// Specification state: the abstract store.
///
/// Two modes:
/// * **fixed** — constructed with the pre-allocated handle universe; every
///   handle contributes a view entry (empty contents included). The mode
///   used for the paper's Cache experiments.
/// * **dynamic** — handles register themselves on first use (for clients
///   that allocate blocks at runtime, e.g. the B-link tree running over a
///   verified cache). Only handles with non-empty contents contribute view
///   entries, so both sides add an entry at the same commit regardless of
///   when each first learned of the handle.
class CacheSpec : public Spec {
public:
  /// Fixed mode: \p Handles pre-allocated chunk handles (the shared
  /// initial state of all test cases); each starts with empty contents.
  explicit CacheSpec(const std::vector<uint64_t> &Handles);
  /// Dynamic mode.
  CacheSpec();

  bool isObserver(Name Method) const override;
  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override;
  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

  const Bytes *contents(uint64_t H) const;

private:
  /// Whether \p B contributes a view entry in the current mode.
  bool viewVisible(const Bytes &B) const { return !Dynamic || !B.empty(); }

  CacheVocab V;
  bool Dynamic;
  std::map<uint64_t, Bytes> Store;
};

/// Shadow state: entry buffers, clean/dirty membership, Chunk Manager
/// contents; maintains viewI and the Sec. 7.2.1 invariants incrementally.
class CacheReplayer : public Replayer {
public:
  /// Fixed mode (see CacheSpec).
  explicit CacheReplayer(const std::vector<uint64_t> &Handles);
  /// Dynamic mode.
  CacheReplayer();

  void applyUpdate(const Action &A, View &ViewI) override;
  void buildView(View &Out) const override;
  bool checkInvariants(std::string &Message) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

private:
  struct HandleShadow {
    Bytes Cm;         // Chunk Manager contents
    Bytes Entry;      // cache entry contents (valid if HasEntry)
    bool HasEntry = false;
    bool InClean = false;
    bool InDirty = false;
  };

  /// The bytes an application currently observes for \p S.
  static const Bytes &visible(const HandleShadow &S) {
    return (S.InClean || S.InDirty) ? S.Entry : S.Cm;
  }
  void mutate(uint64_t H, View &ViewI,
              const std::function<void(HandleShadow &)> &Fn);
  void refreshInvariants(uint64_t H, const HandleShadow &S);
  bool viewVisible(const Bytes &B) const { return !Dynamic || !B.empty(); }

  CacheVocab V;
  bool Dynamic;
  std::map<uint64_t, HandleShadow> Handles;
  /// Invariant (i) violations: clean handles whose entry != CM bytes.
  std::set<uint64_t> CleanMismatch;
  /// Invariant (ii) violations: handles on both lists.
  std::set<uint64_t> BothLists;
};

} // namespace cache
} // namespace vyrd

#endif // VYRD_CACHE_CACHESPEC_H
