//===- BoxCache.cpp - The Boxwood cache module -----------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache/BoxCache.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::cache;

CacheVocab CacheVocab::get() {
  CacheVocab V;
  V.Write = internName("CacheWrite");
  V.Read = internName("CacheRead");
  V.Flush = internName("CacheFlush");
  V.Evict = internName("CacheEvict");
  V.Revoke = internName("CacheRevoke");
  V.OpNewEntry = internName("cache.newEntry");
  V.OpCopy = internName("cache.copy");
  V.OpAddClean = internName("cache.addClean");
  V.OpAddDirty = internName("cache.addDirty");
  V.OpRemoveClean = internName("cache.removeClean");
  V.OpRemoveDirty = internName("cache.removeDirty");
  V.OpCmWrite = internName("cm.write");
  return V;
}

BoxCacheImpl::BoxCacheImpl(ChunkManager &CM, const Options &Opts,
                           AutoContext &Ctx)
    : CM(CM), Opts(Opts), Ctx(Ctx), V(CacheVocab::get()), CleanLock(Ctx),
      ReclaimLock(Ctx) {}

void BoxCacheImpl::copyToCache(const Bytes &B, Entry &E) {
  assert(B.size() <= Opts.ChunkSize && "chunk larger than cache buffer");
  // COPY-TO-CACHE (Fig. 8): byte-by-byte in-place overwrite. The chaos
  // points widen the racy window when the caller failed to take
  // LOCK(clean).
  for (size_t I = 0; I < B.size(); ++I) {
    E.Data[I].store(B[I], std::memory_order_relaxed);
    if ((I & 7) == 7)
      Chaos::point();
  }
  E.Len.store(B.size(), std::memory_order_relaxed);
}

Bytes BoxCacheImpl::snapshotEntry(const Entry &E) const {
  size_t N = E.Len.load(std::memory_order_relaxed);
  Bytes Out(N);
  for (size_t I = 0; I < N; ++I) {
    Out[I] = E.Data[I].load(std::memory_order_relaxed);
    if ((I & 15) == 15)
      Chaos::point();
  }
  return Out;
}

void BoxCacheImpl::write(uint64_t Hd, const Bytes &B,
                         const std::function<void()> &LogFn) {
  std::shared_lock Reclaim(ReclaimLock); // RECLAIMLOCK.BEGINREAD
  UniqueLock Clean(CleanLock);           // LOCK(clean)
  auto DirtyIt = DirtyMap.find(Hd);

  if (DirtyIt != DirtyMap.end()) {
    // Dirty hit: overwrite the cached buffer in place (commit point 3).
    EntryPtr E = DirtyIt->second;
    if (Opts.BuggyUnprotectedCopy) {
      // BUG (Sec. 7.2.2): the copy runs without LOCK(clean); a concurrent
      // FLUSH can snapshot the buffer mid-copy and persist torn bytes.
      // The replay record and commit land unbracketed — the atomicity of
      // visibility and log update is exactly what the bug breaks.
      Clean.unlock();
      Chaos::point();
      copyToCache(B, *E);
      Ctx.replayOp(V.OpCopy, {Value(static_cast<int64_t>(Hd)), Value(B)});
      Ctx.commit();
      if (LogFn)
        LogFn();
    } else {
      copyToCache(B, *E);
      Ctx.replayOp(V.OpCopy, {Value(static_cast<int64_t>(Hd)), Value(B)});
      Ctx.commit();
      if (LogFn)
        LogFn();
    }
    return;
  }

  auto CleanIt = CleanMap.find(Hd);
  if (CleanIt != CleanMap.end()) {
    // Clean hit: move the entry to the dirty list and overwrite it
    // (commit point 2). All under LOCK(clean).
    EntryPtr E = CleanIt->second;
    CleanMap.erase(CleanIt);
    copyToCache(B, *E);
    DirtyMap.emplace(Hd, E);
    Ctx.replayOp(V.OpRemoveClean, {Value(static_cast<int64_t>(Hd))});
    Ctx.replayOp(V.OpCopy, {Value(static_cast<int64_t>(Hd)), Value(B)});
    Ctx.replayOp(V.OpAddDirty, {Value(static_cast<int64_t>(Hd))});
    Ctx.commit();
    if (LogFn)
      LogFn();
    return;
  }

  // Miss: make a new entry and add it to the dirty list (commit point 1).
  // Unlike Fig. 8 we keep LOCK(clean) held across the re-check and insert;
  // the pseudocode's unlock/relock window admits a double-insert race that
  // is not the bug under study.
  EntryPtr E = std::make_shared<Entry>(Opts.ChunkSize);
  copyToCache(B, *E);
  DirtyMap.emplace(Hd, E);
  Ctx.replayOp(V.OpNewEntry, {Value(static_cast<int64_t>(Hd))});
  Ctx.replayOp(V.OpCopy, {Value(static_cast<int64_t>(Hd)), Value(B)});
  Ctx.replayOp(V.OpAddDirty, {Value(static_cast<int64_t>(Hd))});
  Ctx.commit();
  if (LogFn)
    LogFn();
}

bool BoxCacheImpl::read(uint64_t Hd, Bytes &Out) {
  std::shared_lock Reclaim(ReclaimLock);
  UniqueLock Clean(CleanLock);

  auto DirtyIt = DirtyMap.find(Hd);
  if (DirtyIt != DirtyMap.end()) {
    Out = snapshotEntry(*DirtyIt->second);
    return true;
  }
  auto CleanIt = CleanMap.find(Hd);
  if (CleanIt != CleanMap.end()) {
    Out = snapshotEntry(*CleanIt->second);
    return true;
  }

  // Miss: fetch from the Chunk Manager and install a clean entry. Reads
  // are observers (no commit); the install is recorded so the shadow state
  // tracks the new entry.
  if (!CM.read(Hd, Out))
    return false;
  EntryPtr E = std::make_shared<Entry>(Opts.ChunkSize);
  copyToCache(Out, *E);
  CleanMap.emplace(Hd, E);
  Ctx.replayOp(V.OpNewEntry, {Value(static_cast<int64_t>(Hd))});
  Ctx.replayOp(V.OpCopy, {Value(static_cast<int64_t>(Hd)), Value(Out)});
  Ctx.replayOp(V.OpAddClean, {Value(static_cast<int64_t>(Hd))});
  return true;
}

size_t BoxCacheImpl::flush() {
  UniqueLock Clean(CleanLock); // LOCK(clean) held for the whole flush
  size_t Moved = 0;
  // Fig. 8: every dirty entry is "old enough"; write each back to the
  // Chunk Manager, then move it to the clean list. The byte-by-byte
  // snapshot is where a torn buffer (from the buggy unprotected copy)
  // gets persisted.
  for (auto It = DirtyMap.begin(); It != DirtyMap.end();) {
    uint64_t Hd = It->first;
    EntryPtr E = It->second;
    Bytes Snapshot = snapshotEntry(*E);
    CM.write(Hd, Snapshot);
    Ctx.replayOp(V.OpCmWrite,
                 {Value(static_cast<int64_t>(Hd)), Value(Snapshot)});
    It = DirtyMap.erase(It);
    CleanMap.emplace(Hd, E);
    Ctx.replayOp(V.OpRemoveDirty, {Value(static_cast<int64_t>(Hd))});
    Ctx.replayOp(V.OpAddClean, {Value(static_cast<int64_t>(Hd))});
    ++Moved;
  }
  Ctx.commit();
  return Moved;
}

bool BoxCacheImpl::revoke(uint64_t Hd) {
  UniqueLock Clean(CleanLock);
  auto It = DirtyMap.find(Hd);
  if (It == DirtyMap.end())
    return false; // nothing dirty under this handle; auto-commit
  EntryPtr E = It->second;
  Bytes Snapshot = snapshotEntry(*E);
  CM.write(Hd, Snapshot);
  Ctx.replayOp(V.OpCmWrite,
               {Value(static_cast<int64_t>(Hd)), Value(Snapshot)});
  DirtyMap.erase(It);
  CleanMap.emplace(Hd, E);
  Ctx.replayOp(V.OpRemoveDirty, {Value(static_cast<int64_t>(Hd))});
  Ctx.replayOp(V.OpAddClean, {Value(static_cast<int64_t>(Hd))});
  Ctx.commit();
  return true;
}

size_t BoxCacheImpl::evict() {
  std::unique_lock Reclaim(ReclaimLock); // exclusive: no readers/writers
  UniqueLock Clean(CleanLock);
  size_t Dropped = CleanMap.size();
  for (auto &[Hd, E] : CleanMap)
    Ctx.replayOp(V.OpRemoveClean, {Value(static_cast<int64_t>(Hd))});
  CleanMap.clear();
  Ctx.commit();
  return Dropped;
}

size_t BoxCacheImpl::cleanCount() const {
  LockGuard Lock(CleanLock);
  return CleanMap.size();
}

size_t BoxCacheImpl::dirtyCount() const {
  LockGuard Lock(CleanLock);
  return DirtyMap.size();
}
