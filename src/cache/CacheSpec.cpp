//===- CacheSpec.cpp - Atomic spec + replayer for Cache+ChunkManager ------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache/CacheSpec.h"

#include "vyrd/Serialize.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::cache;

//===----------------------------------------------------------------------===//
// CacheSpec
//===----------------------------------------------------------------------===//

CacheSpec::CacheSpec(const std::vector<uint64_t> &Handles)
    : V(CacheVocab::get()), Dynamic(false) {
  for (uint64_t H : Handles)
    Store.emplace(H, Bytes());
}

CacheSpec::CacheSpec() : V(CacheVocab::get()), Dynamic(true) {}

bool CacheSpec::isObserver(Name Method) const { return Method == V.Read; }

bool CacheSpec::applyMutator(Name Method, const ValueList &Args,
                             const Value &Ret, View &ViewS) {
  if (Method == V.Write) {
    if (Args.size() != 2 || !Args[0].isInt() || !Args[1].isBytes())
      return false;
    uint64_t Hd = static_cast<uint64_t>(Args[0].asInt());
    auto It = Store.find(Hd);
    if (It == Store.end()) {
      if (!Dynamic)
        return false;
      It = Store.emplace(Hd, Bytes()).first; // first use registers
    }
    if (viewVisible(It->second))
      ViewS.remove(Args[0], Value(It->second));
    It->second = Args[1].asBytes();
    if (viewVisible(It->second))
      ViewS.add(Args[0], Value(It->second));
    return Ret.isBool() && Ret.asBool();
  }
  if (Method == V.Flush || Method == V.Evict) {
    // Maintenance operations: no abstract state change; any count is fine.
    return Ret.isInt();
  }
  if (Method == V.Revoke) {
    // Single-entry write-back: also a no-op on the abstract store.
    return Ret.isBool();
  }
  return false;
}

bool CacheSpec::returnAllowed(Name Method, const ValueList &Args,
                              const Value &Ret) const {
  if (Method != V.Read || Args.size() != 1 || !Args[0].isInt())
    return false;
  auto It = Store.find(static_cast<uint64_t>(Args[0].asInt()));
  if (It == Store.end()) {
    // Fixed mode: unknown handle reads return null. Dynamic mode: a
    // handle the spec has not seen written is indistinguishable from an
    // allocated-but-unwritten chunk (reads as empty) or an unallocated
    // one (reads as null); accept either.
    if (!Dynamic)
      return Ret.isNull();
    return Ret.isNull() || (Ret.isBytes() && Ret.asBytes().empty());
  }
  if (Dynamic && It->second.empty() && Ret.isNull())
    return true;
  return Ret.isBytes() && Ret.asBytes() == It->second;
}

void CacheSpec::buildView(View &Out) const {
  Out.clear();
  for (const auto &[H, B] : Store)
    if (viewVisible(B))
      Out.add(Value(static_cast<int64_t>(H)), Value(B));
}

const Bytes *CacheSpec::contents(uint64_t H) const {
  auto It = Store.find(H);
  return It == Store.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// CacheReplayer
//===----------------------------------------------------------------------===//

CacheReplayer::CacheReplayer(const std::vector<uint64_t> &Handles)
    : V(CacheVocab::get()), Dynamic(false) {
  for (uint64_t H : Handles)
    this->Handles.emplace(H, HandleShadow());
}

CacheReplayer::CacheReplayer() : V(CacheVocab::get()), Dynamic(true) {}

void CacheReplayer::refreshInvariants(uint64_t H, const HandleShadow &S) {
  // (i) a clean entry's bytes must match the Chunk Manager's.
  if (S.InClean && S.HasEntry && S.Entry != S.Cm)
    CleanMismatch.insert(H);
  else
    CleanMismatch.erase(H);
  // (ii) an entry must not be on both lists.
  if (S.InClean && S.InDirty)
    BothLists.insert(H);
  else
    BothLists.erase(H);
}

void CacheReplayer::mutate(uint64_t H, View &ViewI,
                           const std::function<void(HandleShadow &)> &Fn) {
  auto It = Handles.find(H);
  if (It == Handles.end()) {
    assert(Dynamic && "replay op on unknown handle (fixed mode)");
    It = Handles.emplace(H, HandleShadow()).first;
  }
  HandleShadow &S = It->second;
  Bytes Before = visible(S);
  Fn(S);
  const Bytes &After = visible(S);
  if (Before != After) {
    if (viewVisible(Before))
      ViewI.remove(Value(static_cast<int64_t>(H)), Value(Before));
    if (viewVisible(After))
      ViewI.add(Value(static_cast<int64_t>(H)), Value(After));
  }
  refreshInvariants(H, S);
}

void CacheReplayer::applyUpdate(const Action &A, View &ViewI) {
  assert(A.Kind == ActionKind::AK_ReplayOp &&
         "cache logs coarse-grained replay ops only");
  assert(!A.Args.empty() && A.Args[0].isInt());
  uint64_t H = static_cast<uint64_t>(A.Args[0].asInt());

  if (A.Var == V.OpNewEntry) {
    mutate(H, ViewI, [](HandleShadow &S) {
      S.HasEntry = true;
      S.Entry.clear();
    });
  } else if (A.Var == V.OpCopy) {
    assert(A.Args.size() == 2 && A.Args[1].isBytes());
    mutate(H, ViewI,
           [&](HandleShadow &S) { S.Entry = A.Args[1].asBytes(); });
  } else if (A.Var == V.OpAddClean) {
    mutate(H, ViewI, [](HandleShadow &S) { S.InClean = true; });
  } else if (A.Var == V.OpAddDirty) {
    mutate(H, ViewI, [](HandleShadow &S) { S.InDirty = true; });
  } else if (A.Var == V.OpRemoveClean) {
    mutate(H, ViewI, [](HandleShadow &S) { S.InClean = false; });
  } else if (A.Var == V.OpRemoveDirty) {
    mutate(H, ViewI, [](HandleShadow &S) { S.InDirty = false; });
  } else if (A.Var == V.OpCmWrite) {
    assert(A.Args.size() == 2 && A.Args[1].isBytes());
    mutate(H, ViewI, [&](HandleShadow &S) { S.Cm = A.Args[1].asBytes(); });
  } else {
    assert(false && "unknown cache replay op");
  }
}

void CacheReplayer::buildView(View &Out) const {
  Out.clear();
  for (const auto &[H, S] : Handles)
    if (viewVisible(visible(S)))
      Out.add(Value(static_cast<int64_t>(H)), Value(visible(S)));
}

bool CacheReplayer::checkInvariants(std::string &Message) const {
  if (!CleanMismatch.empty()) {
    uint64_t H = *CleanMismatch.begin();
    Message = "cache invariant (i) violated: clean entry for handle " +
              std::to_string(H) +
              " differs from the Chunk Manager contents (" +
              std::to_string(CleanMismatch.size()) + " handle(s) affected)";
    return false;
  }
  if (!BothLists.empty()) {
    Message = "cache invariant (ii) violated: handle " +
              std::to_string(*BothLists.begin()) +
              " is on both the clean and dirty lists";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Snapshot support
//===----------------------------------------------------------------------===//

namespace {

void saveBytes(ByteWriter &W, const Bytes &B) {
  W.varint(B.size());
  W.bytes(B.data(), B.size());
}

bool loadBytes(ByteReader &R, Bytes &B) {
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  B.resize(N);
  return N == 0 || R.bytes(B.data(), N);
}

void saveHandleSet(ByteWriter &W, const std::set<uint64_t> &S) {
  W.varint(S.size());
  for (uint64_t H : S)
    W.varint(H);
}

bool loadHandleSet(ByteReader &R, std::set<uint64_t> &S) {
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  S.clear();
  for (uint64_t I = 0; I < N; ++I)
    S.insert(R.varint());
  return R.ok();
}

} // namespace

bool CacheSpec::saveState(ByteWriter &W) const {
  // The mode is part of the state: it decides which entries are
  // view-visible, so a resumed checker must agree with the recorder.
  W.u8(Dynamic ? 1 : 0);
  W.varint(Store.size());
  for (const auto &[H, B] : Store) {
    W.varint(H);
    saveBytes(W, B);
  }
  return true;
}

bool CacheSpec::loadState(ByteReader &R) {
  Dynamic = R.u8() != 0;
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  Store.clear();
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t H = R.varint();
    Bytes B;
    if (!loadBytes(R, B))
      return false;
    Store.emplace(H, std::move(B));
  }
  return R.ok();
}

bool CacheReplayer::saveState(ByteWriter &W) const {
  W.u8(Dynamic ? 1 : 0);
  W.varint(Handles.size());
  for (const auto &[H, S] : Handles) {
    W.varint(H);
    saveBytes(W, S.Cm);
    saveBytes(W, S.Entry);
    W.u8((S.HasEntry ? 1 : 0) | (S.InClean ? 2 : 0) | (S.InDirty ? 4 : 0));
  }
  // The invariant-violation sets are derivable from Handles but cheap to
  // carry; persisting them keeps restore O(state) with no recomputation.
  saveHandleSet(W, CleanMismatch);
  saveHandleSet(W, BothLists);
  return true;
}

bool CacheReplayer::loadState(ByteReader &R) {
  Dynamic = R.u8() != 0;
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  Handles.clear();
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t H = R.varint();
    HandleShadow S;
    if (!loadBytes(R, S.Cm) || !loadBytes(R, S.Entry))
      return false;
    uint8_t Flags = R.u8();
    S.HasEntry = Flags & 1;
    S.InClean = Flags & 2;
    S.InDirty = Flags & 4;
    Handles.emplace(H, std::move(S));
  }
  return loadHandleSet(R, CleanMismatch) && loadHandleSet(R, BothLists) &&
         R.ok();
}
