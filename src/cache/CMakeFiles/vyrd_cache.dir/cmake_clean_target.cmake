file(REMOVE_RECURSE
  "libvyrd_cache.a"
)
