# Empty dependencies file for vyrd_cache.
# This may be replaced when dependencies are built.
