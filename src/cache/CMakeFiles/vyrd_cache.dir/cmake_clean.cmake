file(REMOVE_RECURSE
  "CMakeFiles/vyrd_cache.dir/BoxCache.cpp.o"
  "CMakeFiles/vyrd_cache.dir/BoxCache.cpp.o.d"
  "CMakeFiles/vyrd_cache.dir/CacheSpec.cpp.o"
  "CMakeFiles/vyrd_cache.dir/CacheSpec.cpp.o.d"
  "libvyrd_cache.a"
  "libvyrd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
