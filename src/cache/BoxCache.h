//===- BoxCache.h - The Boxwood cache module --------------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Boxwood Cache of Fig. 8, sitting between clients (the B-link tree)
/// and the Chunk Manager: clean and dirty entry lists guarded by one lock
/// (LOCK(clean)), a reader-writer reclaim lock, WRITE with the three commit
/// points of the pseudocode, FLUSH that writes aged dirty entries back to
/// the Chunk Manager, and an eviction path that discards clean entries.
///
/// Injectable bug (Sec. 7.2.2, the real bug VYRD found in Boxwood): the
/// dirty-hit path's COPY-TO-CACHE (Fig. 8 line 23) runs without
/// LOCK(clean), so a concurrent FLUSH can read a half-copied buffer and
/// write the torn bytes to the Chunk Manager, after which the entry is
/// marked clean. Entry buffers use relaxed atomic bytes so the torn
/// interleaving is well-defined in C++.
///
/// Runtime invariants from Sec. 7.2.1: (i) a clean entry's bytes equal the
/// Chunk Manager's bytes for that handle; (ii) no entry is in both lists.
/// These are evaluated by the replayer at every commit.
///
/// Instrumentation is automatic: LOCK(clean) is a `vyrd::Mutex` shim, the
/// reclaim lock a `vyrd::SharedMutex` (shared acquisitions open no commit
/// bracket — readers do not serialize state), and the `BoxCache` facade
/// dispatches through `Instrumented<T>`. WRITE's LogFn callback and READ's
/// out-parameter use custom argument/return encoders; the coarse replay
/// records (`cache.*` / `cm.write`) stay with the bespoke CacheReplayer,
/// which also evaluates the runtime invariants.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_CACHE_BOXCACHE_H
#define VYRD_CACHE_BOXCACHE_H

#include "chunk/ChunkManager.h"
#include "vyrd/Auto.h"

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>

namespace vyrd {
namespace cache {

using chunk::Bytes;
using chunk::ChunkManager;

/// Interned method and replay-op names for the cache.
struct CacheVocab {
  Name Write, Read, Flush, Evict, Revoke;
  Name OpNewEntry, OpCopy, OpAddClean, OpAddDirty, OpRemoveClean,
      OpRemoveDirty, OpCmWrite;
  static CacheVocab get();
};

/// The uninstrumented cache core (trailing-AutoContext protocol).
class BoxCacheImpl {
public:
  struct Options {
    /// Maximum chunk size the cache supports.
    size_t ChunkSize = 64;
    /// Inject the unprotected COPY-TO-CACHE on the dirty-hit path.
    bool BuggyUnprotectedCopy = false;
  };

  BoxCacheImpl(ChunkManager &CM, const Options &Opts, AutoContext &Ctx);

  BoxCacheImpl(const BoxCacheImpl &) = delete;
  BoxCacheImpl &operator=(const BoxCacheImpl &) = delete;

  /// Fig. 8 WRITE: stores \p B (size <= ChunkSize) for handle \p H in the
  /// cache, dirtying the entry.
  ///
  /// \p LogFn (optional) is invoked after the copy while LOCK(clean) is
  /// still held, so a client can append its own log records atomically
  /// with the write's visibility — required for clients whose readers
  /// access chunks without client-level locks (the B-link tree's
  /// lock-free descents): a reader that observes the new bytes is then
  /// guaranteed to do so after the commit record entered the log. Under
  /// the injected bug the dirty-path copy (and hence LogFn) runs without
  /// the lock, faithfully breaking that atomicity.
  void write(uint64_t H, const Bytes &B,
             const std::function<void()> &LogFn = {});

  /// Observer: current contents for \p H (from the cache, else the Chunk
  /// Manager). \returns false when the handle is unknown everywhere.
  bool read(uint64_t H, Bytes &Out);

  /// Fig. 8 FLUSH: writes all dirty entries back to the Chunk Manager and
  /// moves them to the clean list. \returns how many entries moved.
  size_t flush();

  /// Sec. 7.2.1's revoke: writes a *single* dirty entry back to the Chunk
  /// Manager and moves it to the clean list. \returns false when the
  /// handle has no dirty entry.
  bool revoke(uint64_t H);

  /// Discards all clean entries (the reclaim path). \returns how many.
  size_t evict();

  size_t cleanCount() const;
  size_t dirtyCount() const;

private:
  /// Entry buffers are relaxed-atomic so racy torn copies are well-defined.
  struct Entry {
    explicit Entry(size_t Cap)
        : Data(std::make_unique<std::atomic<uint8_t>[]>(Cap)) {}
    std::unique_ptr<std::atomic<uint8_t>[]> Data;
    std::atomic<size_t> Len{0};
  };
  using EntryPtr = std::shared_ptr<Entry>;

  void copyToCache(const Bytes &B, Entry &E);
  Bytes snapshotEntry(const Entry &E) const;

  ChunkManager &CM;
  Options Opts;
  AutoContext &Ctx;
  CacheVocab V;

  mutable Mutex CleanLock; // LOCK(clean): guards both maps
  SharedMutex ReclaimLock;
  std::unordered_map<uint64_t, EntryPtr> CleanMap;
  std::unordered_map<uint64_t, EntryPtr> DirtyMap;
};

} // namespace cache

template <> struct AutoMethods<cache::BoxCacheImpl> {
  using C = cache::BoxCacheImpl;
  using Bytes = cache::Bytes;
  static constexpr auto desc(MethodTag<&C::write>) {
    // The LogFn callback is not loggable state; WRITE has no return value
    // and is logged as the constant true.
    return method("CacheWrite")
        .args([](const uint64_t &H, const Bytes &B,
                 const std::function<void()> &) {
          return ValueList{Value(H), Value(B)};
        })
        .ret([](const uint64_t &, const Bytes &,
                const std::function<void()> &) { return Value(true); });
  }
  static constexpr auto desc(MethodTag<&C::read>) {
    // The result travels through the out-parameter: encode it after the
    // call, null on a miss.
    return observer("CacheRead")
        .args([](const uint64_t &H, const Bytes &) {
          return ValueList{Value(H)};
        })
        .ret([](const bool &Found, const uint64_t &, const Bytes &Out) {
          return Found ? Value(Out) : Value();
        });
  }
  static constexpr auto desc(MethodTag<&C::flush>) {
    return method("CacheFlush");
  }
  static constexpr auto desc(MethodTag<&C::revoke>) {
    return method("CacheRevoke");
  }
  static constexpr auto desc(MethodTag<&C::evict>) {
    return method("CacheEvict");
  }
};

namespace cache {

/// The instrumented cache facade.
class BoxCache : public Instrumented<BoxCacheImpl> {
public:
  using Options = BoxCacheImpl::Options;

  BoxCache(ChunkManager &CM, const Options &O, Hooks H)
      : Instrumented(H, CM, O) {}

  void write(uint64_t H, const Bytes &B,
             const std::function<void()> &LogFn = {}) {
    invoke<&BoxCacheImpl::write>(H, B, LogFn);
  }
  bool read(uint64_t H, Bytes &Out) {
    return invoke<&BoxCacheImpl::read>(H, Out);
  }
  size_t flush() { return invoke<&BoxCacheImpl::flush>(); }
  bool revoke(uint64_t H) { return invoke<&BoxCacheImpl::revoke>(H); }
  size_t evict() { return invoke<&BoxCacheImpl::evict>(); }

  size_t cleanCount() const { return raw().cleanCount(); }
  size_t dirtyCount() const { return raw().dirtyCount(); }
};

} // namespace cache
} // namespace vyrd

#endif // VYRD_CACHE_BOXCACHE_H
