//===- ChunkManager.h - Boxwood data-store substrate ------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Boxwood storage abstraction underneath the Cache (Sec. 7.2): every
/// shared variable is a byte array identified by a unique handle, with a
/// version number incremented on each write. The paper's verification
/// assumed the Chunk Manager itself was implemented correctly; here it is a
/// straightforward globally-locked store and carries no instrumentation of
/// its own (the Cache logs the writes it forwards).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_CHUNK_CHUNKMANAGER_H
#define VYRD_CHUNK_CHUNKMANAGER_H

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace vyrd {
namespace chunk {

using Bytes = std::vector<uint8_t>;

/// Thread-safe versioned byte-array store.
class ChunkManager {
public:
  ChunkManager() = default;

  ChunkManager(const ChunkManager &) = delete;
  ChunkManager &operator=(const ChunkManager &) = delete;

  /// Creates a fresh chunk (empty contents, version 0) and returns its
  /// handle. Handles are never reused.
  uint64_t allocate();

  /// Overwrites chunk \p H and bumps its version.
  /// \returns false when the handle is unknown.
  bool write(uint64_t H, const Bytes &B);

  /// Reads chunk \p H. \p Version (optional) receives its version.
  /// \returns false when the handle is unknown.
  bool read(uint64_t H, Bytes &Out, uint64_t *Version = nullptr) const;

  /// All allocated handles, in allocation order.
  std::vector<uint64_t> handles() const;

  size_t chunkCount() const;

private:
  struct Chunk {
    Bytes Data;
    uint64_t Version = 0;
  };

  mutable std::mutex M;
  std::unordered_map<uint64_t, Chunk> Chunks;
  std::vector<uint64_t> Order;
  uint64_t NextHandle = 1;
};

} // namespace chunk
} // namespace vyrd

#endif // VYRD_CHUNK_CHUNKMANAGER_H
