//===- ChunkManager.cpp - Boxwood data-store substrate --------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "chunk/ChunkManager.h"

using namespace vyrd;
using namespace vyrd::chunk;

uint64_t ChunkManager::allocate() {
  std::lock_guard Lock(M);
  uint64_t H = NextHandle++;
  Chunks.emplace(H, Chunk());
  Order.push_back(H);
  return H;
}

bool ChunkManager::write(uint64_t H, const Bytes &B) {
  std::lock_guard Lock(M);
  auto It = Chunks.find(H);
  if (It == Chunks.end())
    return false;
  It->second.Data = B;
  ++It->second.Version;
  return true;
}

bool ChunkManager::read(uint64_t H, Bytes &Out, uint64_t *Version) const {
  std::lock_guard Lock(M);
  auto It = Chunks.find(H);
  if (It == Chunks.end())
    return false;
  Out = It->second.Data;
  if (Version)
    *Version = It->second.Version;
  return true;
}

std::vector<uint64_t> ChunkManager::handles() const {
  std::lock_guard Lock(M);
  return Order;
}

size_t ChunkManager::chunkCount() const {
  std::lock_guard Lock(M);
  return Chunks.size();
}
