file(REMOVE_RECURSE
  "CMakeFiles/vyrd_chunk.dir/ChunkManager.cpp.o"
  "CMakeFiles/vyrd_chunk.dir/ChunkManager.cpp.o.d"
  "libvyrd_chunk.a"
  "libvyrd_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
