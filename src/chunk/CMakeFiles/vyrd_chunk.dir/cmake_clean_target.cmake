file(REMOVE_RECURSE
  "libvyrd_chunk.a"
)
