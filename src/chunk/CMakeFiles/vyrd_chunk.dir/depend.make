# Empty dependencies file for vyrd_chunk.
# This may be replaced when dependencies are built.
