//===- BLinkTree.cpp - Concurrent B-link tree over the Cache --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "blinktree/BLinkTree.h"

#include <cassert>
#include <thread>

using namespace vyrd;
using namespace vyrd::blinktree;

BltVocab BltVocab::get() {
  BltVocab V;
  V.Insert = internName("BltInsert");
  V.Delete = internName("BltDelete");
  V.Lookup = internName("BltLookup");
  V.Compress = internName("BltCompress");
  V.OpNode = internName("blt.node");
  V.OpData = internName("blt.data");
  V.OpRoot = internName("blt.root");
  return V;
}

BLinkTreeImpl::BLinkTreeImpl(cache::BoxCache &Cache, chunk::ChunkManager &CM,
                             const Options &Opts, AutoContext &Ctx)
    : Cache(Cache), CM(CM), Opts(Opts), Ctx(Ctx), V(BltVocab::get()) {
  // The initial root is an empty leaf; it anchors the leaf chain forever
  // (merges always absorb the *right* sibling, so the leftmost leaf never
  // dies).
  uint64_t RootH = CM.allocate();
  BNode Empty;
  writeNode(RootH, Empty);
  Root.store(RootH, std::memory_order_release);
  FirstLeaf = RootH;
  Ctx.replayOp(V.OpRoot, {Value(static_cast<int64_t>(RootH))});
}

Mutex &BLinkTreeImpl::lockFor(uint64_t Hd) {
  std::lock_guard Lock(LockTableM);
  auto &Slot = LockTable[Hd];
  if (!Slot)
    Slot = std::make_unique<Mutex>(Ctx);
  return *Slot;
}

BNode BLinkTreeImpl::readNode(uint64_t Hd) {
  Bytes B;
  bool Ok = Cache.read(Hd, B);
  assert(Ok && "reading an unallocated node");
  (void)Ok;
  BNode N;
  Ok = BNode::deserialize(B, N);
  assert(Ok && "malformed node chunk");
  return N;
}

void BLinkTreeImpl::writeNode(uint64_t Hd, const BNode &N, bool CommitHere) {
  Bytes B = N.serialize();
  Cache.write(Hd, B, [&] {
    Ctx.replayOp(V.OpNode, {Value(static_cast<int64_t>(Hd)), Value(B)});
    if (CommitHere)
      Ctx.commit();
  });
}

void BLinkTreeImpl::writeData(uint64_t Hd, const BData &D, bool CommitHere) {
  Cache.write(Hd, D.serialize(), [&] {
    Ctx.replayOp(V.OpData,
                 {Value(static_cast<int64_t>(Hd)),
                  Value(static_cast<int64_t>(D.Version)), Value(D.Data)});
    if (CommitHere)
      Ctx.commit();
  });
}

bool BLinkTreeImpl::readData(uint64_t Hd, BData &Out) {
  Bytes B;
  if (!Cache.read(Hd, B))
    return false;
  return BData::deserialize(B, Out);
}

uint64_t BLinkTreeImpl::descendToLeaf(int64_t Key,
                                      std::vector<uint64_t> &Stack,
                                      BNode &Snapshot) {
  while (true) {
    Stack.clear();
    uint64_t Hd = Root.load(std::memory_order_acquire);
    bool Restart = false;
    while (true) {
      BNode N = readNode(Hd);
      if (N.Dead) {
        Restart = true;
        break;
      }
      if (Key >= N.HighKey) {
        // The key escaped right during a split or merge: follow the link.
        Hd = N.Right;
        assert(Hd && "HighKey < MAX must imply a right sibling");
        continue;
      }
      if (N.IsLeaf) {
        Snapshot = std::move(N);
        return Hd;
      }
      Stack.push_back(Hd);
      Hd = N.route(Key);
      Chaos::point();
    }
    if (Restart)
      std::this_thread::yield(); // let the compressor finish re-pointing
  }
}

uint64_t BLinkTreeImpl::descendToLevel(int64_t Key, unsigned Level) {
  while (true) {
    uint64_t Hd = Root.load(std::memory_order_acquire);
    bool Restart = false;
    while (true) {
      BNode N = readNode(Hd);
      if (N.Dead) {
        Restart = true;
        break;
      }
      if (Key >= N.HighKey) {
        Hd = N.Right;
        continue;
      }
      if (N.Level == Level)
        return Hd;
      if (N.Level < Level) {
        // The tree is shallower than requested (root not grown yet):
        // retry until the root split completes.
        Restart = true;
        break;
      }
      Hd = N.route(Key);
    }
    if (Restart)
      std::this_thread::yield();
  }
}

uint64_t BLinkTreeImpl::lockCovering(uint64_t Hd, int64_t Key, BNode &N) {
  lockFor(Hd).lock();
  while (true) {
    N = readNode(Hd);
    if (N.Dead) {
      lockFor(Hd).unlock();
      return 0;
    }
    if (Key < N.HighKey)
      return Hd;
    uint64_t Next = N.Right;
    assert(Next && "HighKey < MAX must imply a right sibling");
    // Left-to-right lock coupling along the chain; the overlapping shim
    // holds keep any open commit bracket chained across the hand-off.
    lockFor(Next).lock();
    lockFor(Hd).unlock();
    Hd = Next;
  }
}

bool BLinkTreeImpl::insert(int64_t Key, const Bytes &Data) {
  while (true) {
    std::vector<uint64_t> Stack;
    BNode Snapshot;
    uint64_t LeafH = descendToLeaf(Key, Stack, Snapshot);

    // Presence decision. The buggy variant trusts the unlocked snapshot
    // (Fig. 9's line 12 check not repeated after locking); the correct
    // variant re-checks under the leaf lock below.
    bool SnapPresent = Snapshot.findKey(Key) != BNode::npos;
    uint64_t SnapDataH =
        SnapPresent ? Snapshot.Entries[Snapshot.findKey(Key)].Handle : 0;

    BNode N;
    uint64_t Locked = lockCovering(LeafH, Key, N);
    if (!Locked)
      continue; // landed on a merged-away leaf: restart the descent
    LeafH = Locked;

    bool Present;
    uint64_t DataH;
    if (Opts.BuggyDuplicates) {
      Chaos::point(); // widen the snapshot-to-lock window
      Present = SnapPresent;
      DataH = SnapDataH;
    } else {
      size_t Idx = N.findKey(Key);
      Present = Idx != BNode::npos;
      DataH = Present ? N.Entries[Idx].Handle : 0;
    }

    if (Present) {
      // Commit point 1: overwrite the existing data node (the leaf lock's
      // shim bracket covers the record).
      BData D;
      bool Ok = readData(DataH, D);
      assert(Ok && "leaf references an unallocated data node");
      (void)Ok;
      ++D.Version;
      D.Data = Data;
      writeData(DataH, D, /*CommitHere=*/true);
      lockFor(LeafH).unlock();
      return true;
    }

    uint64_t NewDataH = CM.allocate();
    BData D;
    D.Version = 1;
    D.Data = Data;
    size_t At = N.lowerBound(Key);
    N.Entries.insert(N.Entries.begin() + At, BEntry{Key, NewDataH});

    if (N.Entries.size() <= Opts.MaxLeafKeys) {
      // Commit points 2 and 4: the leaf write that publishes the key.
      writeData(NewDataH, D);
      writeNode(LeafH, N, /*CommitHere=*/true);
      lockFor(LeafH).unlock();
      return true;
    }

    // Commit point 3: split. Write the new right node first (unreachable
    // until the old leaf is rewritten), then publish atomically.
    uint64_t NewH = CM.allocate();
    BNode RightN;
    RightN.IsLeaf = true;
    RightN.Level = N.Level;
    size_t Mid = N.Entries.size() / 2;
    RightN.Entries.assign(N.Entries.begin() + Mid, N.Entries.end());
    RightN.HighKey = N.HighKey;
    RightN.Right = N.Right;
    N.Entries.resize(Mid);
    int64_t SepKey = RightN.Entries.front().Key;
    N.HighKey = SepKey;
    N.Right = NewH;
    writeData(NewDataH, D);
    writeNode(NewH, RightN);
    writeNode(LeafH, N, /*CommitHere=*/true);
    lockFor(LeafH).unlock();

    // Propagate the separator upward; purely structural (view-neutral).
    insertSeparator(Stack, 1, SepKey, NewH, LeafH);
    return true;
  }
}

void BLinkTreeImpl::insertSeparator(std::vector<uint64_t> &Stack,
                                    unsigned Level, int64_t SepKey,
                                    uint64_t NewChild, uint64_t SplitNode) {
  while (true) {
    uint64_t ParentH = 0;
    if (!Stack.empty()) {
      ParentH = Stack.back();
      Stack.pop_back();
      // The stacked hint may be from a lower level after retries.
      BNode Probe = readNode(ParentH);
      if (Probe.Dead || Probe.Level != Level)
        ParentH = 0;
    }
    if (!ParentH) {
      // No parent: either the split node is the root (grow the tree) or
      // the stack was stale (re-descend).
      bool Grew = false;
      {
        std::lock_guard RootLock(RootMutex);
        // The new child may have been merged away already (split, then
        // emptied and absorbed before this propagation ran). Installing a
        // route to a dead node would be permanent: nothing would ever
        // re-point it. The survivor covers its range, so simply drop the
        // separator.
        if (readNode(NewChild).Dead)
          return;
        if (Root.load(std::memory_order_acquire) == SplitNode) {
          uint64_t NewRootH = CM.allocate();
          BNode NewRoot;
          NewRoot.IsLeaf = false;
          NewRoot.Level = static_cast<uint8_t>(Level);
          NewRoot.Entries = {BEntry{INT64_MIN, SplitNode},
                             BEntry{SepKey, NewChild}};
          // RootMutex is not a shim, so both records below are standalone
          // (commit-free, single-record, view-neutral): structurally the
          // new root is unreachable until Root is re-pointed.
          writeNode(NewRootH, NewRoot);
          Root.store(NewRootH, std::memory_order_release);
          Ctx.replayOp(V.OpRoot, {Value(static_cast<int64_t>(NewRootH))});
          Grew = true;
        }
      }
      if (Grew)
        return;
      // Someone else grew the tree past us. Find the parent by descent —
      // outside RootMutex: the descent may have to wait for a concurrent
      // root growth, which needs that mutex (holding it here deadlocked).
      ParentH = descendToLevel(SepKey, Level);
    }

    BNode P;
    uint64_t Locked = lockCovering(ParentH, SepKey, P);
    if (!Locked)
      continue; // parent merged away: re-descend via the (now empty) stack
    ParentH = Locked;

    // Idempotence guard: a retried propagation may find the separator
    // already in place.
    size_t Idx = P.findKey(SepKey);
    if (Idx != BNode::npos && P.Entries[Idx].Handle == NewChild) {
      lockFor(ParentH).unlock();
      return;
    }
    // Re-verify the child is still alive *under the parent lock*: a
    // concurrent merge that killed it either happened before this read
    // (we skip — the survivor covers the range) or will run its
    // re-pointing pass after we release the lock (it will then find and
    // fix the entry we are about to insert). Either order is safe; an
    // unguarded insert of a dead route is not.
    if (readNode(NewChild).Dead) {
      lockFor(ParentH).unlock();
      return;
    }

    size_t At = P.lowerBound(SepKey);
    P.Entries.insert(P.Entries.begin() + At, BEntry{SepKey, NewChild});

    if (P.Entries.size() <= Opts.MaxInnerKeys) {
      writeNode(ParentH, P);
      lockFor(ParentH).unlock();
      return;
    }

    // Split the inner node and keep propagating.
    uint64_t NewH = CM.allocate();
    BNode RightP;
    RightP.IsLeaf = false;
    RightP.Level = P.Level;
    size_t Mid = P.Entries.size() / 2;
    RightP.Entries.assign(P.Entries.begin() + Mid, P.Entries.end());
    RightP.HighKey = P.HighKey;
    RightP.Right = P.Right;
    P.Entries.resize(Mid);
    int64_t UpKey = RightP.Entries.front().Key;
    P.HighKey = UpKey;
    P.Right = NewH;
    writeNode(NewH, RightP);
    writeNode(ParentH, P);
    lockFor(ParentH).unlock();

    SepKey = UpKey;
    NewChild = NewH;
    SplitNode = ParentH;
    ++Level;
  }
}

bool BLinkTreeImpl::remove(int64_t Key) {
  while (true) {
    std::vector<uint64_t> Stack;
    BNode Snapshot;
    uint64_t LeafH = descendToLeaf(Key, Stack, Snapshot);

    BNode N;
    uint64_t Locked = lockCovering(LeafH, Key, N);
    if (!Locked)
      continue;
    LeafH = Locked;

    size_t Idx = N.findKey(Key);
    if (Idx == BNode::npos) {
      // A false return is only legal while the key is actually absent, so
      // the failure commits under the leaf lock.
      Ctx.commit();
      lockFor(LeafH).unlock();
      return false;
    }

    N.Entries.erase(N.Entries.begin() + Idx);
    // The data node is orphaned, never reused.
    writeNode(LeafH, N, /*CommitHere=*/true);
    lockFor(LeafH).unlock();
    return true;
  }
}

Value BLinkTreeImpl::lookup(int64_t Key) {
  std::vector<uint64_t> Stack;
  BNode Snapshot;
  (void)descendToLeaf(Key, Stack, Snapshot);
  size_t Idx = Snapshot.findKey(Key);
  if (Idx == BNode::npos)
    return Value();
  BData D;
  bool Ok = readData(Snapshot.Entries[Idx].Handle, D);
  assert(Ok && "leaf references an unallocated data node");
  (void)Ok;
  return versionedValue(D.Version, D.Data);
}

bool BLinkTreeImpl::compress() {
  std::lock_guard Serial(CompressMutex);
  // Walk the leaf chain looking for an underfull leaf whose contents fit
  // into its left neighbor (with one slot of headroom against
  // merge/split thrash); empty leaves always qualify.
  auto Mergeable = [this](const BNode &Left, const BNode &Right) {
    return Right.Entries.empty() ||
           Left.Entries.size() + Right.Entries.size() + 1 <=
               Opts.MaxLeafKeys;
  };
  uint64_t A = FirstLeaf;
  while (true) {
    BNode NA = readNode(A);
    if (NA.Dead)
      break; // cannot happen for FirstLeaf; defensive for others
    uint64_t B = NA.Right;
    if (!B)
      break;
    BNode NB = readNode(B);
    if (!NB.IsLeaf)
      break;
    if (NB.Dead) {
      // A merge by a concurrent compressor is mid-flight; skip ahead.
      A = NB.Right ? NB.Right : 0;
      if (!A)
        break;
      continue;
    }
    if (!Mergeable(NA, NB)) {
      A = B;
      Chaos::point();
      continue;
    }

    // Candidate found: lock left-to-right, re-validate, merge. The right
    // node's entries (all greater than the left's) move into the left
    // node — structure changes, contents do not. The two shim locks open
    // one bracket that stays chained through the re-pointing sweep below.
    std::lock_guard LockA(lockFor(A));
    std::lock_guard LockB(lockFor(B));
    NA = readNode(A);
    NB = readNode(B);
    if (NA.Dead || NB.Dead || NA.Right != B || !Mergeable(NA, NB)) {
      Chaos::point();
      continue; // re-examine from the same spot
    }
    NA.Entries.insert(NA.Entries.end(), NB.Entries.begin(),
                      NB.Entries.end());
    NA.HighKey = NB.HighKey;
    NA.Right = NB.Right;
    NB.Dead = true;
    NB.Entries.clear();
    writeNode(A, NA);
    writeNode(B, NB);
    // Re-point the parent's reference for B to A so descents for B's old
    // range land on the absorbing node. Keeping the separator (rather than
    // deleting it) preserves B-link routing even when B was its parent's
    // leftmost entry.
    repointParent(/*Level=*/1, B, A);
    Ctx.commit(); // the view is unchanged: the entries only moved
    return true;
  }
  // No merge: state unchanged and the spec accepts any bool, so the auto
  // layer commits the failure return.
  return false;
}

void BLinkTreeImpl::repointParent(unsigned Level, uint64_t DeadChild,
                                  uint64_t Survivor) {
  // The tree may be too shallow (no parent at Level): nothing to do —
  // but decide under RootMutex so this serializes against a concurrent
  // root growth: either the growth completed (the scan below finds the
  // entry) or it runs after us and re-reads the dead child under the
  // same mutex and drops the route.
  {
    std::lock_guard RootLock(RootMutex);
    BNode RootN = readNode(Root.load(std::memory_order_acquire));
    if (RootN.Level < Level)
      return;
  }
  // Replace *every* reference to the dead child anywhere on the level:
  // earlier merges leave multiple entries routing to one node (each
  // repoint redirects a separator to the survivor), spread across
  // siblings, and a single fix-the-first pass would leave permanent dead
  // routes behind. The level is fanout-bounded and this runs on the
  // background compression path, so a full left-to-right sweep is cheap.
  uint64_t Cur = descendToLevel(INT64_MIN, Level);
  while (Cur) {
    lockFor(Cur).lock();
    BNode P = readNode(Cur);
    bool Changed = false;
    if (!P.Dead) {
      for (BEntry &E : P.Entries) {
        if (E.Handle == DeadChild) {
          E.Handle = Survivor;
          Changed = true;
        }
      }
    }
    if (Changed)
      writeNode(Cur, P);
    uint64_t Next = P.Right;
    lockFor(Cur).unlock();
    Cur = Next;
  }
}

unsigned BLinkTreeImpl::height() {
  BNode RootN = readNode(Root.load(std::memory_order_acquire));
  return RootN.Level + 1u;
}
