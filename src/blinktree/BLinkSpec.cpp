//===- BLinkSpec.cpp - Atomic spec + replayer for the B-link tree ---------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "blinktree/BLinkSpec.h"

#include <algorithm>
#include <cassert>

using namespace vyrd;
using namespace vyrd::blinktree;

//===----------------------------------------------------------------------===//
// BLinkSpec
//===----------------------------------------------------------------------===//

BLinkSpec::BLinkSpec() : V(BltVocab::get()) {}

bool BLinkSpec::isObserver(Name Method) const { return Method == V.Lookup; }

bool BLinkSpec::applyMutator(Name Method, const ValueList &Args,
                             const Value &Ret, View &ViewS) {
  if (Method == V.Compress) {
    // Compression must not modify the abstract contents.
    return Ret.isBool();
  }
  if (!Ret.isBool())
    return false;
  bool Success = Ret.asBool();

  if (Method == V.Insert) {
    if (Args.size() != 2 || !Args[0].isInt() || !Args[1].isBytes() ||
        !Success)
      return false; // insert always succeeds
    int64_t K = Args[0].asInt();
    auto It = M.find(K);
    if (It == M.end()) {
      BData D;
      D.Version = 1;
      D.Data = Args[1].asBytes();
      M.emplace(K, D);
      ViewS.add(Args[0], versionedValue(1, Args[1].asBytes()));
      return true;
    }
    ViewS.remove(Args[0], versionedValue(It->second.Version,
                                         It->second.Data));
    ++It->second.Version;
    It->second.Data = Args[1].asBytes();
    ViewS.add(Args[0], versionedValue(It->second.Version,
                                      It->second.Data));
    return true;
  }

  if (Method == V.Delete) {
    if (Args.size() != 1 || !Args[0].isInt())
      return false;
    auto It = M.find(Args[0].asInt());
    if (!Success)
      return It == M.end(); // failure iff the key is absent
    if (It == M.end())
      return false;
    ViewS.remove(Args[0], versionedValue(It->second.Version,
                                         It->second.Data));
    M.erase(It);
    return true;
  }

  return false;
}

bool BLinkSpec::returnAllowed(Name Method, const ValueList &Args,
                              const Value &Ret) const {
  if (Method != V.Lookup || Args.size() != 1 || !Args[0].isInt())
    return false;
  auto It = M.find(Args[0].asInt());
  if (It == M.end())
    return Ret.isNull();
  return Ret == versionedValue(It->second.Version, It->second.Data);
}

void BLinkSpec::buildView(View &Out) const {
  Out.clear();
  for (const auto &[K, D] : M)
    Out.add(Value(K), versionedValue(D.Version, D.Data));
}

//===----------------------------------------------------------------------===//
// BLinkReplayer
//===----------------------------------------------------------------------===//

BLinkReplayer::BLinkReplayer(uint64_t FirstLeafHandle)
    : V(BltVocab::get()), FirstLeaf(FirstLeafHandle) {}

Value BLinkReplayer::entryValue(uint64_t DataH) const {
  auto It = DataNodes.find(DataH);
  if (It == DataNodes.end())
    return Value(); // dangling reference: contributes a null (mismatch)
  return versionedValue(It->second.Version, It->second.Data);
}

void BLinkReplayer::applyUpdate(const Action &A, View &ViewI) {
  assert(A.Kind == ActionKind::AK_ReplayOp &&
         "B-link tree logs coarse-grained replay ops only");

  if (A.Var == V.OpRoot)
    return; // root identity is not part of the view

  if (A.Var == V.OpData) {
    assert(A.Args.size() == 3);
    uint64_t DH = static_cast<uint64_t>(A.Args[0].asInt());
    BData New;
    New.Version = static_cast<uint64_t>(A.Args[1].asInt());
    New.Data = A.Args[2].asBytes();
    auto It = DataNodes.find(DH);
    Value Old = entryValue(DH);
    Value NewVal = versionedValue(New.Version, New.Data);
    // Update every live leaf entry referencing this data node.
    auto RefIt = DataRefs.find(DH);
    if (RefIt != DataRefs.end()) {
      for (int64_t Key : RefIt->second) {
        ViewI.remove(Value(Key), Old);
        ViewI.add(Value(Key), NewVal);
      }
    }
    if (It == DataNodes.end())
      DataNodes.emplace(DH, std::move(New));
    else
      It->second = std::move(New);
    return;
  }

  if (A.Var == V.OpNode) {
    assert(A.Args.size() == 2);
    uint64_t NH = static_cast<uint64_t>(A.Args[0].asInt());
    BNode New;
    bool Ok = BNode::deserialize(A.Args[1].asBytes(), New);
    assert(Ok && "malformed node record");
    (void)Ok;
    if (!New.IsLeaf)
      return; // the indexing structure is abstracted away

    auto It = Leaves.find(NH);
    const std::vector<BEntry> NoEntries;
    const std::vector<BEntry> &OldE =
        (It != Leaves.end() && !It->second.Dead) ? It->second.Entries
                                                 : NoEntries;
    const std::vector<BEntry> &NewE = New.Dead ? NoEntries : New.Entries;

    // Diff the old and new entry lists (both sorted by key).
    size_t I = 0, J = 0;
    auto RemoveRef = [&](const BEntry &E) {
      ViewI.remove(Value(E.Key), entryValue(E.Handle));
      auto &Refs = DataRefs[E.Handle];
      auto Pos = std::find(Refs.begin(), Refs.end(), E.Key);
      if (Pos != Refs.end())
        Refs.erase(Pos);
    };
    auto AddRef = [&](const BEntry &E) {
      ViewI.add(Value(E.Key), entryValue(E.Handle));
      DataRefs[E.Handle].push_back(E.Key);
    };
    while (I < OldE.size() || J < NewE.size()) {
      if (J == NewE.size() ||
          (I < OldE.size() && OldE[I].Key < NewE[J].Key)) {
        RemoveRef(OldE[I++]);
      } else if (I == OldE.size() || NewE[J].Key < OldE[I].Key) {
        AddRef(NewE[J++]);
      } else {
        if (OldE[I].Handle != NewE[J].Handle) {
          RemoveRef(OldE[I]);
          AddRef(NewE[J]);
        }
        ++I;
        ++J;
      }
    }

    if (It == Leaves.end())
      Leaves.emplace(NH, std::move(New));
    else
      It->second = std::move(New);
    return;
  }

  assert(false && "unknown B-link replay op");
}

void BLinkReplayer::buildView(View &Out) const {
  Out.clear();
  // Left-to-right traversal of the leaf chain (Sec. 7.2.4), guarded
  // against cycles.
  std::unordered_map<uint64_t, bool> Visited;
  uint64_t H = FirstLeaf;
  while (H && !Visited[H]) {
    Visited[H] = true;
    auto It = Leaves.find(H);
    if (It == Leaves.end())
      break;
    const BNode &N = It->second;
    if (!N.Dead)
      for (const BEntry &E : N.Entries)
        Out.add(Value(E.Key), entryValue(E.Handle));
    H = N.Right;
  }
}

//===----------------------------------------------------------------------===//
// Snapshot support
//===----------------------------------------------------------------------===//

bool BLinkSpec::saveState(ByteWriter &W) const {
  W.varint(M.size());
  for (const auto &[K, D] : M) {
    W.svarint(K);
    W.varint(D.Version);
    W.varint(D.Data.size());
    W.bytes(D.Data.data(), D.Data.size());
  }
  return true;
}

bool BLinkSpec::loadState(ByteReader &R) {
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  M.clear();
  for (uint64_t I = 0; I < N; ++I) {
    int64_t K = R.svarint();
    BData D;
    D.Version = R.varint();
    uint64_t Size = R.varint();
    if (!R.ok() || Size > (1u << 24))
      return false;
    D.Data.resize(Size);
    if (Size && !R.bytes(D.Data.data(), Size))
      return false;
    M.emplace(K, std::move(D));
  }
  return R.ok();
}

namespace {

template <typename MapT>
std::vector<uint64_t> sortedKeys(const MapT &M) {
  std::vector<uint64_t> Keys;
  Keys.reserve(M.size());
  for (const auto &KV : M)
    Keys.push_back(KV.first);
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

} // namespace

bool BLinkReplayer::saveState(ByteWriter &W) const {
  // Unordered storage, canonical blob: every map emits sorted by handle.
  W.varint(FirstLeaf);

  W.varint(Leaves.size());
  for (uint64_t H : sortedKeys(Leaves)) {
    W.varint(H);
    Bytes Img = Leaves.at(H).serialize();
    W.varint(Img.size());
    W.bytes(Img.data(), Img.size());
  }

  W.varint(DataNodes.size());
  for (uint64_t H : sortedKeys(DataNodes)) {
    const BData &D = DataNodes.at(H);
    W.varint(H);
    W.varint(D.Version);
    W.varint(D.Data.size());
    W.bytes(D.Data.data(), D.Data.size());
  }

  // DataRefs is semantically a multiset of keys per handle (only membership
  // counts), so entries sort and empty sets drop without changing behavior.
  size_t NonEmpty = 0;
  for (const auto &[H, Refs] : DataRefs)
    NonEmpty += !Refs.empty();
  W.varint(NonEmpty);
  for (uint64_t H : sortedKeys(DataRefs)) {
    std::vector<int64_t> Refs = DataRefs.at(H);
    if (Refs.empty())
      continue;
    std::sort(Refs.begin(), Refs.end());
    W.varint(H);
    W.varint(Refs.size());
    for (int64_t K : Refs)
      W.svarint(K);
  }
  return true;
}

bool BLinkReplayer::loadState(ByteReader &R) {
  FirstLeaf = R.varint();

  uint64_t NLeaves = R.varint();
  if (!R.ok() || NLeaves > (1u << 24))
    return false;
  Leaves.clear();
  for (uint64_t I = 0; I < NLeaves; ++I) {
    uint64_t H = R.varint();
    uint64_t Size = R.varint();
    if (!R.ok() || Size > (1u << 24))
      return false;
    Bytes Img(Size);
    if (Size && !R.bytes(Img.data(), Size))
      return false;
    BNode N;
    if (!BNode::deserialize(Img, N))
      return false;
    Leaves.emplace(H, std::move(N));
  }

  uint64_t NData = R.varint();
  if (!R.ok() || NData > (1u << 24))
    return false;
  DataNodes.clear();
  for (uint64_t I = 0; I < NData; ++I) {
    uint64_t H = R.varint();
    BData D;
    D.Version = R.varint();
    uint64_t Size = R.varint();
    if (!R.ok() || Size > (1u << 24))
      return false;
    D.Data.resize(Size);
    if (Size && !R.bytes(D.Data.data(), Size))
      return false;
    DataNodes.emplace(H, std::move(D));
  }

  uint64_t NRefs = R.varint();
  if (!R.ok() || NRefs > (1u << 24))
    return false;
  DataRefs.clear();
  for (uint64_t I = 0; I < NRefs; ++I) {
    uint64_t H = R.varint();
    uint64_t Count = R.varint();
    if (!R.ok() || Count > (1u << 24))
      return false;
    std::vector<int64_t> Refs(Count);
    for (uint64_t J = 0; J < Count; ++J)
      Refs[J] = R.svarint();
    DataRefs.emplace(H, std::move(Refs));
  }
  return R.ok();
}
