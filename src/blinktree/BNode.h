//===- BNode.h - B-link tree node representation ----------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In Boxwood every tree node is a byte array stored behind the Cache
/// (Sec. 7.2). BNode is the in-memory form plus its (de)serialization;
/// nodes are read and written atomically as whole chunks, which is what
/// makes the lock-free B-link descent sound.
///
/// Leaf nodes map keys to *data node* handles; data nodes carry the value
/// bytes and a version number (bumped on each overwrite), matching the
/// viewI definition of Sec. 7.2.4 ("the sorted list of all the (key, data)
/// pairs in the tree, along with their version numbers"). Inner nodes map
/// separator keys to child handles: entry (K, C) routes keys >= K (and
/// below the next separator) to child C.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_BLINKTREE_BNODE_H
#define VYRD_BLINKTREE_BNODE_H

#include "chunk/ChunkManager.h"
#include "vyrd/Serialize.h"

#include <cstdint>
#include <vector>

namespace vyrd {
namespace blinktree {

using chunk::Bytes;

/// One (key, handle) slot of a node.
struct BEntry {
  int64_t Key;
  uint64_t Handle;
};

/// In-memory node image.
struct BNode {
  bool IsLeaf = true;
  /// Set when the node has been merged away; descents that land here
  /// restart from the root.
  bool Dead = false;
  /// Height of the node: 0 for leaves, parents one above their children.
  uint8_t Level = 0;
  /// Exclusive upper bound of this node's key range; keys >= HighKey moved
  /// right. INT64_MAX on the rightmost node of a level.
  int64_t HighKey = INT64_MAX;
  /// Right sibling handle (B-link pointer); 0 when rightmost.
  uint64_t Right = 0;
  /// Sorted by Key. Leaf: key -> data node. Inner: separator -> child.
  std::vector<BEntry> Entries;

  /// Index of the first entry with Key >= \p K, or Entries.size().
  size_t lowerBound(int64_t K) const;
  /// Leaf: index of an entry with exactly \p K, or npos.
  size_t findKey(int64_t K) const;
  /// Inner: child covering \p K (last entry with Key <= K; entry 0 covers
  /// everything below its separator too, as the leftmost child).
  uint64_t route(int64_t K) const;

  static constexpr size_t npos = static_cast<size_t>(-1);

  Bytes serialize() const;
  /// \returns false on malformed input.
  static bool deserialize(const Bytes &B, BNode &Out);
};

/// Data node payload: value bytes plus a version number.
struct BData {
  uint64_t Version = 0;
  Bytes Data;

  Bytes serialize() const;
  static bool deserialize(const Bytes &B, BData &Out);
};

/// Encodes (version, bytes) into the canonical view value (also the
/// Lookup return value): 8-byte little-endian version followed by the
/// data bytes.
Value versionedValue(uint64_t Version, const Bytes &Data);

} // namespace blinktree
} // namespace vyrd

#endif // VYRD_BLINKTREE_BNODE_H
