# Empty dependencies file for vyrd_blinktree.
# This may be replaced when dependencies are built.
