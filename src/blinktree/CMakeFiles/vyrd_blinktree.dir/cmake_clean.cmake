file(REMOVE_RECURSE
  "CMakeFiles/vyrd_blinktree.dir/BLinkSpec.cpp.o"
  "CMakeFiles/vyrd_blinktree.dir/BLinkSpec.cpp.o.d"
  "CMakeFiles/vyrd_blinktree.dir/BLinkTree.cpp.o"
  "CMakeFiles/vyrd_blinktree.dir/BLinkTree.cpp.o.d"
  "CMakeFiles/vyrd_blinktree.dir/BNode.cpp.o"
  "CMakeFiles/vyrd_blinktree.dir/BNode.cpp.o.d"
  "libvyrd_blinktree.a"
  "libvyrd_blinktree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd_blinktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
