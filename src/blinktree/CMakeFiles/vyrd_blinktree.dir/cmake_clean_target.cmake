file(REMOVE_RECURSE
  "libvyrd_blinktree.a"
)
