//===- BNode.cpp - B-link tree node representation -------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "blinktree/BNode.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::blinktree;

size_t BNode::lowerBound(int64_t K) const {
  size_t Lo = 0, Hi = Entries.size();
  while (Lo < Hi) {
    size_t Mid = (Lo + Hi) / 2;
    if (Entries[Mid].Key < K)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

size_t BNode::findKey(int64_t K) const {
  size_t I = lowerBound(K);
  if (I < Entries.size() && Entries[I].Key == K)
    return I;
  return npos;
}

uint64_t BNode::route(int64_t K) const {
  assert(!IsLeaf && "routing in a leaf");
  assert(!Entries.empty() && "routing in an empty inner node");
  size_t I = lowerBound(K);
  // Entry I has Key >= K; the covering child is the one before it, except
  // that keys below the first separator go to the leftmost child.
  if (I < Entries.size() && Entries[I].Key == K)
    return Entries[I].Handle;
  return Entries[I == 0 ? 0 : I - 1].Handle;
}

Bytes BNode::serialize() const {
  ByteWriter W;
  uint8_t Flags = (IsLeaf ? 1 : 0) | (Dead ? 2 : 0);
  W.u8(Flags);
  W.u8(Level);
  W.svarint(HighKey);
  W.varint(Right);
  W.varint(Entries.size());
  for (const BEntry &E : Entries) {
    W.svarint(E.Key);
    W.varint(E.Handle);
  }
  return W.buffer();
}

bool BNode::deserialize(const Bytes &B, BNode &Out) {
  ByteReader R(B.data(), B.size());
  uint8_t Flags = R.u8();
  Out.IsLeaf = (Flags & 1) != 0;
  Out.Dead = (Flags & 2) != 0;
  Out.Level = R.u8();
  Out.HighKey = R.svarint();
  Out.Right = R.varint();
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 16))
    return false;
  Out.Entries.clear();
  Out.Entries.reserve(N);
  for (uint64_t I = 0; I < N; ++I) {
    BEntry E;
    E.Key = R.svarint();
    E.Handle = R.varint();
    Out.Entries.push_back(E);
  }
  return R.ok();
}

Bytes BData::serialize() const {
  ByteWriter W;
  W.varint(Version);
  W.varint(Data.size());
  W.bytes(Data.data(), Data.size());
  return W.buffer();
}

bool BData::deserialize(const Bytes &B, BData &Out) {
  ByteReader R(B.data(), B.size());
  Out.Version = R.varint();
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 20))
    return false;
  Out.Data.resize(N);
  if (N && !R.bytes(Out.Data.data(), N))
    return false;
  return R.ok();
}

Value vyrd::blinktree::versionedValue(uint64_t Version, const Bytes &Data) {
  Value::Bytes Out(8 + Data.size());
  for (unsigned I = 0; I < 8; ++I)
    Out[I] = static_cast<uint8_t>(Version >> (8 * I));
  std::copy(Data.begin(), Data.end(), Out.begin() + 8);
  return Value(std::move(Out));
}
