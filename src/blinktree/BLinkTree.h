//===- BLinkTree.h - Concurrent B-link tree over the Cache ------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The BLinkTree module of Boxwood (Sec. 7.2.3): a Sagiv-style concurrent
/// B-link tree storing (key, data) pairs, built on the Cache + Chunk
/// Manager data store. Lookups descend without locks (whole-node reads are
/// atomic through the cache); mutators lock one node at a time, moving
/// right along B-link pointers when keys escape during splits; a
/// compression routine merges empty leaves into their left neighbors and
/// re-points parent references without changing the contents.
///
/// Commit points follow Fig. 9: the single leaf-level (or data-node) write
/// that publishes the method's effect, selected per execution path:
///   1. overwrite of an existing key's data node,
///   2. insert into a leaf with room,
///   3. insert that splits a leaf,
///   4. insert into a leaf that is also the root (split creates a root).
/// All other writes (separator propagation, root creation, compression)
/// re-structure the tree without changing the view.
///
/// Instrumentation: the `BLinkTree` facade dispatches through
/// `Instrumented<T>`; the per-node lock table hands out `vyrd::Mutex`
/// shims, so the left-to-right lock coupling of mutators yields one
/// chained commit bracket per locked region. `RootMutex`, `CompressMutex`
/// and the lock-table mutex are internal coordination locks (they guard
/// no logged state) and stay `std::mutex`. Replay records are appended
/// inside the cache's critical section via the write callback, so a
/// lock-free reader that observes a node write also observes its log
/// records.
///
/// Injectable bug (Table 1, "Allowing duplicated data nodes"): the insert
/// decides presence of the key from its unlocked descent-time snapshot of
/// the leaf instead of re-checking under the leaf lock, so two concurrent
/// inserts of the same key can both add a data node for it.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_BLINKTREE_BLINKTREE_H
#define VYRD_BLINKTREE_BLINKTREE_H

#include "blinktree/BNode.h"
#include "cache/BoxCache.h"
#include "vyrd/Auto.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>

namespace vyrd {
namespace blinktree {

/// Interned method and replay-op names for the B-link tree.
struct BltVocab {
  Name Insert, Delete, Lookup, Compress;
  Name OpNode, OpData, OpRoot;
  static BltVocab get();
};

/// The uninstrumented B-link tree core (trailing-AutoContext protocol).
class BLinkTreeImpl {
public:
  struct Options {
    /// Maximum entries per leaf / inner node before splitting.
    size_t MaxLeafKeys = 8;
    size_t MaxInnerKeys = 8;
    /// Inject the duplicated-data-nodes bug.
    bool BuggyDuplicates = false;
  };

  BLinkTreeImpl(cache::BoxCache &Cache, chunk::ChunkManager &CM,
                const Options &Opts, AutoContext &Ctx);

  BLinkTreeImpl(const BLinkTreeImpl &) = delete;
  BLinkTreeImpl &operator=(const BLinkTreeImpl &) = delete;

  /// Inserts or overwrites \p Key with \p Data (version bumps on
  /// overwrite). Always succeeds.
  bool insert(int64_t Key, const Bytes &Data);

  /// Removes \p Key. \returns false when absent.
  bool remove(int64_t Key);

  /// Observer: the versioned value for \p Key (see versionedValue), or
  /// null when absent.
  Value lookup(int64_t Key);

  /// One compression step: merges the first empty leaf into its left
  /// neighbor and re-points the parent reference (Sec. 7.2.3's compression
  /// thread, which must not modify the view). \returns whether a merge
  /// happened.
  bool compress();

  /// Handle of the leftmost leaf (the initial root); the replayer anchors
  /// its chain walk here.
  uint64_t firstLeafHandle() const { return FirstLeaf; }

  /// Current tree height (levels), for tests.
  unsigned height();

private:
  BNode readNode(uint64_t H);
  /// Writes the node; the replay record (and the commit action when
  /// \p CommitHere) is appended inside the cache's critical section so a
  /// lock-free reader that observes the write also observes its log
  /// records (the "logged action atomic with log update" requirement).
  void writeNode(uint64_t H, const BNode &N, bool CommitHere = false);
  void writeData(uint64_t H, const BData &D, bool CommitHere = false);
  bool readData(uint64_t H, BData &Out);
  Mutex &lockFor(uint64_t H);

  /// Lock-free descent to the leaf covering \p Key; fills \p Stack with
  /// the inner handles visited (top = leaf's parent). \p Snapshot receives
  /// the unlocked leaf image.
  uint64_t descendToLeaf(int64_t Key, std::vector<uint64_t> &Stack,
                         BNode &Snapshot);
  /// Lock-free descent to the node at \p Level covering \p Key.
  uint64_t descendToLevel(int64_t Key, unsigned Level);

  /// Locks the leaf chain node covering \p Key starting from \p H,
  /// moving right as needed. \returns the locked handle and its image, or
  /// 0 when a dead node forces a restart.
  uint64_t lockCovering(uint64_t H, int64_t Key, BNode &N);

  /// Propagates separator (\p SepKey -> \p NewChild) into the parent level
  /// \p Level, splitting upward as needed. \p Stack holds descent hints.
  void insertSeparator(std::vector<uint64_t> &Stack, unsigned Level,
                       int64_t SepKey, uint64_t NewChild,
                       uint64_t SplitNode);

  /// Re-points every parent-level entry referencing merged-away leaf
  /// \p DeadChild to \p Survivor (a full sweep of level \p Level: earlier
  /// merges can leave several entries routing to one node, spread across
  /// siblings).
  void repointParent(unsigned Level, uint64_t DeadChild,
                     uint64_t Survivor);

  cache::BoxCache &Cache;
  chunk::ChunkManager &CM;
  Options Opts;
  AutoContext &Ctx;
  BltVocab V;

  std::atomic<uint64_t> Root;
  uint64_t FirstLeaf;
  std::mutex RootMutex; // guards root replacement
  /// Serializes whole compress() calls: a merge's level-wide re-pointing
  /// sweep must complete before the next merge may redirect routes again,
  /// or chained merges could resurrect stale routes mid-sweep.
  std::mutex CompressMutex;

  std::mutex LockTableM;
  std::map<uint64_t, std::unique_ptr<Mutex>> LockTable;
};

} // namespace blinktree

template <> struct AutoMethods<blinktree::BLinkTreeImpl> {
  using T = blinktree::BLinkTreeImpl;
  static constexpr auto desc(MethodTag<&T::insert>) {
    return method("BltInsert");
  }
  static constexpr auto desc(MethodTag<&T::remove>) {
    return method("BltDelete");
  }
  static constexpr auto desc(MethodTag<&T::lookup>) {
    return observer("BltLookup");
  }
  static constexpr auto desc(MethodTag<&T::compress>) {
    return method("BltCompress");
  }
};

namespace blinktree {

/// The instrumented B-link tree facade.
class BLinkTree : public Instrumented<BLinkTreeImpl> {
public:
  using Options = BLinkTreeImpl::Options;

  BLinkTree(cache::BoxCache &Cache, chunk::ChunkManager &CM,
            const Options &Opts, Hooks H)
      : Instrumented(H, Cache, CM, Opts) {}

  bool insert(int64_t Key, const Bytes &Data) {
    return invoke<&BLinkTreeImpl::insert>(Key, Data);
  }
  bool remove(int64_t Key) { return invoke<&BLinkTreeImpl::remove>(Key); }
  Value lookup(int64_t Key) { return invoke<&BLinkTreeImpl::lookup>(Key); }
  bool compress() { return invoke<&BLinkTreeImpl::compress>(); }

  uint64_t firstLeafHandle() const { return raw().firstLeafHandle(); }
  unsigned height() { return raw().height(); }
};

} // namespace blinktree
} // namespace vyrd

#endif // VYRD_BLINKTREE_BLINKTREE_H
