//===- BLinkSpec.h - Atomic spec + replayer for the B-link tree -*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification (an atomic ordered map key -> versioned bytes) and
/// replayer for the B-link tree. viewI follows Sec. 7.2.4: the sorted list
/// of (key, data) pairs with version numbers obtained by a left-to-right
/// traversal of the leaf chain, with the indexing structure abstracted
/// away — maintained incrementally by diffing each rewritten leaf and
/// tracking data-node contents.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_BLINKTREE_BLINKSPEC_H
#define VYRD_BLINKTREE_BLINKSPEC_H

#include "blinktree/BLinkTree.h"
#include "vyrd/Replayer.h"
#include "vyrd/Spec.h"

#include <map>
#include <unordered_map>

namespace vyrd {
namespace blinktree {

/// Specification state: key -> (version, bytes).
class BLinkSpec : public Spec {
public:
  BLinkSpec();

  bool isObserver(Name Method) const override;
  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override;
  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

  size_t size() const { return M.size(); }

private:
  BltVocab V;
  std::map<int64_t, BData> M;
};

/// Shadow state: leaf nodes (from `blt.node` records) and data nodes
/// (from `blt.data` records); anchored at the first leaf handle.
class BLinkReplayer : public Replayer {
public:
  explicit BLinkReplayer(uint64_t FirstLeafHandle);

  void applyUpdate(const Action &A, View &ViewI) override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

private:
  /// The view value currently contributed for a (leaf entry) pair.
  Value entryValue(uint64_t DataH) const;

  BltVocab V;
  uint64_t FirstLeaf;
  /// Leaf images (non-leaf node records are ignored: the indexing
  /// structure is abstracted away).
  std::unordered_map<uint64_t, BNode> Leaves;
  std::unordered_map<uint64_t, BData> DataNodes;
  /// Data handle -> number of live leaf entries referencing it (the
  /// duplicated-data-nodes bug makes this exceed 1 across keys).
  std::unordered_map<uint64_t, std::vector<int64_t>> DataRefs;
};

} // namespace blinktree
} // namespace vyrd

#endif // VYRD_BLINKTREE_BLINKSPEC_H
