//===- ScanFs.h - A Scan-like write-optimized file system -------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniScan: a small write-optimized file system in the spirit of the
/// Scan file system the VYRD prototype was first applied to (Sec. 7.3,
/// [9,13]). A flat root directory maps names to inodes; inodes reference
/// data blocks; every structure lives in Chunk Manager blocks accessed
/// through the write-back cache. File rewrites always go to *fresh*
/// blocks (write-optimized, no in-place data overwrite); a Sync method
/// flushes the cache.
///
/// Locking: a directory lock orders name resolution; per-inode locks
/// protect file metadata and (in the correct variant) data-block writes;
/// lock order is directory -> inode. Readers take the same locks, so every
/// commit record is appended while the lock that makes it visible is
/// held. Both locks are `vyrd::Mutex` shims and the `ScanFs` facade
/// dispatches through `Instrumented<T>`; a dir -> inode hand-off is one
/// chained commit bracket. The coarse replay records (`fs.dir` /
/// `fs.inode` / `fs.block`) stay with the bespoke ScanFsReplayer, which
/// reconstructs files from the serialized images.
///
/// Injectable bug (the classic ordering bug of write-back file systems,
/// of the same family as the Scan cache bugs): WriteFile *publishes the
/// inode first* — new size and fresh block handles, commit — releases the
/// inode lock, and only then writes the data blocks, unlocked. A
/// concurrent read sees the new metadata with missing/stale data; view
/// refinement catches the divergence at the inode commit itself.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_SCANFS_SCANFS_H
#define VYRD_SCANFS_SCANFS_H

#include "cache/BoxCache.h"
#include "vyrd/Auto.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vyrd {
namespace scanfs {

using chunk::Bytes;

/// Interned method and replay-op names for MiniScan.
struct FsVocab {
  Name Create, Unlink, Write, Append, Read, List, Sync;
  Name OpDir, OpInode, OpBlock;
  static FsVocab get();
};

/// On-"disk" inode image.
struct Inode {
  bool Used = false;
  /// File size in bytes.
  uint64_t Size = 0;
  /// Data block handles, in order; together they cover Size bytes.
  std::vector<uint64_t> Blocks;

  Bytes serialize() const;
  static bool deserialize(const Bytes &B, Inode &Out);
};

/// On-"disk" directory image: sorted name -> inode index.
struct Directory {
  std::map<std::string, uint32_t> Entries;

  Bytes serialize() const;
  static bool deserialize(const Bytes &B, Directory &Out);
};

/// The uninstrumented file-system core (trailing-AutoContext protocol).
class ScanFsImpl {
public:
  struct Options {
    uint32_t MaxFiles = 32;
    uint32_t MaxBlocksPerFile = 8;
    uint32_t BlockSize = 64;
    /// Inject the metadata-before-data ordering bug in Write/Append.
    bool BuggyEagerInodePublish = false;
  };

  ScanFsImpl(cache::BoxCache &Cache, chunk::ChunkManager &CM,
             const Options &Opts, AutoContext &Ctx);

  ScanFsImpl(const ScanFsImpl &) = delete;
  ScanFsImpl &operator=(const ScanFsImpl &) = delete;

  /// Creates an empty file. \returns false when the name exists or no
  /// inode is free.
  bool create(const std::string &Name);

  /// Removes a file. \returns false when absent.
  bool unlink(const std::string &Name);

  /// Replaces a file's contents. \returns false when the file is absent
  /// or the data exceeds MaxBlocksPerFile * BlockSize.
  bool write(const std::string &Name, const Bytes &Data);

  /// Appends to a file (same failure conditions as write).
  bool append(const std::string &Name, const Bytes &Data);

  /// Observer: a file's contents, or null when absent.
  Value read(const std::string &Name);

  /// Observer: all file names, sorted, joined with '\n'.
  std::string list();

  /// Flushes the write-back cache to the chunk manager. \returns the
  /// number of blocks written back.
  int64_t sync();

  /// Handles of the directory and inode chunks, in layout order (the
  /// replayer is constructed from these).
  uint64_t dirHandle() const { return DirHandle; }
  std::vector<uint64_t> inodeHandles() const { return InodeHandles; }
  const Options &options() const { return Opts; }

private:
  Directory readDir();
  void writeDir(const Directory &D, bool CommitHere);
  Inode readInode(uint32_t Idx);
  void writeInode(uint32_t Idx, const Inode &Ino, bool CommitHere);
  Bytes readBlock(uint64_t Handle);
  void writeBlock(uint64_t Handle, const Bytes &B);
  /// Splits \p Data into fresh blocks and returns their handles.
  std::vector<uint64_t> allocBlocks(const Bytes &Data,
                                    std::vector<Bytes> &Chunks);
  /// Shared rewrite path for write/append.
  bool rewriteFile(const std::string &FileName, const Bytes &NewContents);

  cache::BoxCache &Cache;
  chunk::ChunkManager &CM;
  Options Opts;
  AutoContext &Ctx;
  FsVocab V;

  uint64_t DirHandle = 0;
  std::vector<uint64_t> InodeHandles;

  Mutex DirLock;
  std::vector<std::unique_ptr<Mutex>> InodeLocks;
};

} // namespace scanfs

template <> struct AutoMethods<scanfs::ScanFsImpl> {
  using F = scanfs::ScanFsImpl;
  static constexpr auto desc(MethodTag<&F::create>) {
    return method("FsCreate");
  }
  static constexpr auto desc(MethodTag<&F::unlink>) {
    return method("FsUnlink");
  }
  static constexpr auto desc(MethodTag<&F::write>) { return method("FsWrite"); }
  static constexpr auto desc(MethodTag<&F::append>) {
    return method("FsAppend");
  }
  static constexpr auto desc(MethodTag<&F::read>) { return observer("FsRead"); }
  static constexpr auto desc(MethodTag<&F::list>) { return observer("FsList"); }
  static constexpr auto desc(MethodTag<&F::sync>) { return method("FsSync"); }
};

namespace scanfs {

/// The instrumented file-system facade.
class ScanFs : public Instrumented<ScanFsImpl> {
public:
  using Options = ScanFsImpl::Options;

  ScanFs(cache::BoxCache &Cache, chunk::ChunkManager &CM, const Options &O,
         Hooks H)
      : Instrumented(H, Cache, CM, O) {}

  bool create(const std::string &Name) {
    return invoke<&ScanFsImpl::create>(Name);
  }
  bool unlink(const std::string &Name) {
    return invoke<&ScanFsImpl::unlink>(Name);
  }
  bool write(const std::string &Name, const Bytes &Data) {
    return invoke<&ScanFsImpl::write>(Name, Data);
  }
  bool append(const std::string &Name, const Bytes &Data) {
    return invoke<&ScanFsImpl::append>(Name, Data);
  }
  Value read(const std::string &Name) { return invoke<&ScanFsImpl::read>(Name); }
  std::string list() { return invoke<&ScanFsImpl::list>(); }
  int64_t sync() { return invoke<&ScanFsImpl::sync>(); }

  uint64_t dirHandle() const { return raw().dirHandle(); }
  std::vector<uint64_t> inodeHandles() const { return raw().inodeHandles(); }
  const Options &options() const { return raw().options(); }
};

} // namespace scanfs
} // namespace vyrd

#endif // VYRD_SCANFS_SCANFS_H
