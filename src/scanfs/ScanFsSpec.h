//===- ScanFsSpec.h - Atomic spec + replayer for MiniScan -------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification (an atomic map name -> contents) and replayer (shadow
/// directory / inodes / blocks reconstructed from `fs.*` replay records)
/// for the MiniScan file system. The view holds one (name, contents)
/// entry per file. The replayer additionally checks two file-system
/// invariants at every commit: every directory entry points to a used
/// inode, and no two entries share an inode.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_SCANFS_SCANFSSPEC_H
#define VYRD_SCANFS_SCANFSSPEC_H

#include "scanfs/ScanFs.h"
#include "vyrd/Replayer.h"
#include "vyrd/Spec.h"

#include <unordered_map>

namespace vyrd {
namespace scanfs {

/// Specification state: name -> file contents.
class ScanFsSpec : public Spec {
public:
  explicit ScanFsSpec(uint32_t MaxFiles);

  bool isObserver(Name Method) const override;
  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override;
  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override;
  void buildView(View &Out) const override;

  const Bytes *contents(const std::string &Name) const;
  size_t fileCount() const { return Files.size(); }

private:
  FsVocab V;
  uint32_t MaxFiles;
  std::map<std::string, Bytes> Files;
};

/// Shadow state from fs.dir / fs.inode / fs.block records.
class ScanFsReplayer : public Replayer {
public:
  ScanFsReplayer();

  void applyUpdate(const Action &A, View &ViewI) override;
  void buildView(View &Out) const override;
  bool checkInvariants(std::string &Message) const override;

private:
  /// Current contents of the file stored in inode \p Idx.
  Bytes fileContents(uint32_t Idx) const;
  /// Replaces the view entry for the file named \p Name (inode \p Idx).
  void refreshFile(const std::string &Name, uint32_t Idx, View &ViewI);

  FsVocab V;
  Directory Dir;
  std::unordered_map<uint32_t, Inode> Inodes;
  std::unordered_map<uint64_t, Bytes> BlockData;
  /// Reverse index: inode -> name (unique by invariant).
  std::unordered_map<uint32_t, std::string> InodeName;
  /// Reverse index: block handle -> inode referencing it.
  std::unordered_map<uint64_t, uint32_t> BlockOwner;
};

} // namespace scanfs
} // namespace vyrd

#endif // VYRD_SCANFS_SCANFSSPEC_H
