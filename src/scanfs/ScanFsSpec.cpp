//===- ScanFsSpec.cpp - Atomic spec + replayer for MiniScan ---------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "scanfs/ScanFsSpec.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::scanfs;

//===----------------------------------------------------------------------===//
// ScanFsSpec
//===----------------------------------------------------------------------===//

ScanFsSpec::ScanFsSpec(uint32_t MaxFiles)
    : V(FsVocab::get()), MaxFiles(MaxFiles) {}

bool ScanFsSpec::isObserver(Name Method) const {
  return Method == V.Read || Method == V.List;
}

bool ScanFsSpec::applyMutator(Name Method, const ValueList &Args,
                              const Value &Ret, View &ViewS) {
  if (Method == V.Sync) {
    // Cache maintenance: no abstract change; any count is fine.
    return Ret.isInt();
  }
  if (!Ret.isBool())
    return false;
  bool Success = Ret.asBool();
  if (Args.empty() || !Args[0].isStr())
    return false;
  const std::string &Name = Args[0].asStr();

  if (Method == V.Create) {
    if (Args.size() != 1)
      return false;
    if (!Success)
      return true; // exists or no free inode: always permitted
    if (Files.count(Name) || Files.size() >= MaxFiles)
      return false;
    Files.emplace(Name, Bytes());
    ViewS.add(Value(Name), Value(Bytes()));
    return true;
  }

  if (Method == V.Unlink) {
    if (Args.size() != 1)
      return false;
    auto It = Files.find(Name);
    if (!Success)
      return It == Files.end(); // unlink fails exactly when absent
    if (It == Files.end())
      return false;
    ViewS.remove(Value(Name), Value(It->second));
    Files.erase(It);
    return true;
  }

  if (Method == V.Write || Method == V.Append) {
    if (Args.size() != 2 || !Args[1].isBytes())
      return false;
    if (!Success)
      return true; // absent or over the size limit: permitted
    auto It = Files.find(Name);
    if (It == Files.end())
      return false;
    Bytes NewContents = Method == V.Write ? Args[1].asBytes() : It->second;
    if (Method == V.Append) {
      const Bytes &Tail = Args[1].asBytes();
      NewContents.insert(NewContents.end(), Tail.begin(), Tail.end());
    }
    ViewS.remove(Value(Name), Value(It->second));
    It->second = std::move(NewContents);
    ViewS.add(Value(Name), Value(It->second));
    return true;
  }

  return false;
}

bool ScanFsSpec::returnAllowed(Name Method, const ValueList &Args,
                               const Value &Ret) const {
  if (Method == V.Read) {
    if (Args.size() != 1 || !Args[0].isStr())
      return false;
    auto It = Files.find(Args[0].asStr());
    if (It == Files.end())
      return Ret.isNull();
    return Ret.isBytes() && Ret.asBytes() == It->second;
  }
  if (Method == V.List) {
    if (!Args.empty() || !Ret.isStr())
      return false;
    std::string Expect;
    for (const auto &[Name, Contents] : Files) {
      (void)Contents;
      if (!Expect.empty())
        Expect += '\n';
      Expect += Name;
    }
    return Ret.asStr() == Expect;
  }
  return false;
}

void ScanFsSpec::buildView(View &Out) const {
  Out.clear();
  for (const auto &[Name, Contents] : Files)
    Out.add(Value(Name), Value(Contents));
}

const Bytes *ScanFsSpec::contents(const std::string &Name) const {
  auto It = Files.find(Name);
  return It == Files.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// ScanFsReplayer
//===----------------------------------------------------------------------===//

ScanFsReplayer::ScanFsReplayer() : V(FsVocab::get()) {}

Bytes ScanFsReplayer::fileContents(uint32_t Idx) const {
  auto It = Inodes.find(Idx);
  if (It == Inodes.end() || !It->second.Used)
    return Bytes();
  Bytes Out;
  for (uint64_t BH : It->second.Blocks) {
    auto BIt = BlockData.find(BH);
    if (BIt != BlockData.end())
      Out.insert(Out.end(), BIt->second.begin(), BIt->second.end());
  }
  Out.resize(It->second.Size);
  return Out;
}

void ScanFsReplayer::refreshFile(const std::string &Name, uint32_t Idx,
                                 View &ViewI) {
  // Entry value transitions are computed by the callers around mutations;
  // here we recompute and swap in the new value. Remove whatever is
  // currently recorded under the name and add the fresh value.
  ViewI.removeKey(Value(Name));
  ViewI.add(Value(Name), Value(fileContents(Idx)));
}

void ScanFsReplayer::applyUpdate(const Action &A, View &ViewI) {
  assert(A.Kind == ActionKind::AK_ReplayOp &&
         "MiniScan logs coarse-grained replay ops only");

  if (A.Var == V.OpDir) {
    assert(A.Args.size() == 1 && A.Args[0].isBytes());
    Directory New;
    bool Ok = Directory::deserialize(A.Args[0].asBytes(), New);
    assert(Ok && "malformed directory record");
    (void)Ok;
    // Diff old vs new entries.
    for (const auto &[Name, Idx] : Dir.Entries) {
      auto It = New.Entries.find(Name);
      if (It == New.Entries.end()) {
        ViewI.removeKey(Value(Name));
        InodeName.erase(Idx);
      }
    }
    for (const auto &[Name, Idx] : New.Entries) {
      auto It = Dir.Entries.find(Name);
      if (It == Dir.Entries.end() || It->second != Idx) {
        if (It != Dir.Entries.end())
          InodeName.erase(It->second);
        InodeName[Idx] = Name;
        ViewI.removeKey(Value(Name));
        ViewI.add(Value(Name), Value(fileContents(Idx)));
      }
    }
    Dir = std::move(New);
    return;
  }

  if (A.Var == V.OpInode) {
    assert(A.Args.size() == 2 && A.Args[0].isInt() && A.Args[1].isBytes());
    uint32_t Idx = static_cast<uint32_t>(A.Args[0].asInt());
    Inode New;
    bool Ok = Inode::deserialize(A.Args[1].asBytes(), New);
    assert(Ok && "malformed inode record");
    (void)Ok;
    auto It = Inodes.find(Idx);
    if (It != Inodes.end())
      for (uint64_t BH : It->second.Blocks)
        BlockOwner.erase(BH);
    for (uint64_t BH : New.Blocks)
      BlockOwner[BH] = Idx;
    Inodes[Idx] = std::move(New);
    auto NameIt = InodeName.find(Idx);
    if (NameIt != InodeName.end())
      refreshFile(NameIt->second, Idx, ViewI);
    return;
  }

  if (A.Var == V.OpBlock) {
    assert(A.Args.size() == 2 && A.Args[0].isInt() && A.Args[1].isBytes());
    uint64_t BH = static_cast<uint64_t>(A.Args[0].asInt());
    BlockData[BH] = A.Args[1].asBytes();
    auto OwnerIt = BlockOwner.find(BH);
    if (OwnerIt != BlockOwner.end()) {
      auto NameIt = InodeName.find(OwnerIt->second);
      if (NameIt != InodeName.end())
        refreshFile(NameIt->second, OwnerIt->second, ViewI);
    }
    return;
  }

  assert(false && "unknown MiniScan replay op");
}

void ScanFsReplayer::buildView(View &Out) const {
  Out.clear();
  for (const auto &[Name, Idx] : Dir.Entries)
    Out.add(Value(Name), Value(fileContents(Idx)));
}

bool ScanFsReplayer::checkInvariants(std::string &Message) const {
  std::unordered_map<uint32_t, const std::string *> Seen;
  for (const auto &[Name, Idx] : Dir.Entries) {
    auto It = Inodes.find(Idx);
    if (It == Inodes.end() || !It->second.Used) {
      Message = "fs invariant violated: directory entry '" + Name +
                "' points to unused inode " + std::to_string(Idx);
      return false;
    }
    auto [SeenIt, Inserted] = Seen.emplace(Idx, &Name);
    if (!Inserted) {
      Message = "fs invariant violated: inode " + std::to_string(Idx) +
                " shared by '" + *SeenIt->second + "' and '" + Name + "'";
      return false;
    }
  }
  return true;
}
