file(REMOVE_RECURSE
  "libvyrd_scanfs.a"
)
