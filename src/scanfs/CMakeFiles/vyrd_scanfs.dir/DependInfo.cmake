
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scanfs/ScanFs.cpp" "src/scanfs/CMakeFiles/vyrd_scanfs.dir/ScanFs.cpp.o" "gcc" "src/scanfs/CMakeFiles/vyrd_scanfs.dir/ScanFs.cpp.o.d"
  "/root/repo/src/scanfs/ScanFsSpec.cpp" "src/scanfs/CMakeFiles/vyrd_scanfs.dir/ScanFsSpec.cpp.o" "gcc" "src/scanfs/CMakeFiles/vyrd_scanfs.dir/ScanFsSpec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/vyrd_core.dir/DependInfo.cmake"
  "/root/repo/src/cache/CMakeFiles/vyrd_cache.dir/DependInfo.cmake"
  "/root/repo/src/chunk/CMakeFiles/vyrd_chunk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
