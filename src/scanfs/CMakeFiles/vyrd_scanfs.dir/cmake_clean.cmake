file(REMOVE_RECURSE
  "CMakeFiles/vyrd_scanfs.dir/ScanFs.cpp.o"
  "CMakeFiles/vyrd_scanfs.dir/ScanFs.cpp.o.d"
  "CMakeFiles/vyrd_scanfs.dir/ScanFsSpec.cpp.o"
  "CMakeFiles/vyrd_scanfs.dir/ScanFsSpec.cpp.o.d"
  "libvyrd_scanfs.a"
  "libvyrd_scanfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd_scanfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
