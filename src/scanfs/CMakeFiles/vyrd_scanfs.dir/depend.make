# Empty dependencies file for vyrd_scanfs.
# This may be replaced when dependencies are built.
