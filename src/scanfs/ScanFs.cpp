//===- ScanFs.cpp - A Scan-like write-optimized file system ---------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "scanfs/ScanFs.h"

#include "vyrd/Serialize.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::scanfs;

FsVocab FsVocab::get() {
  FsVocab V;
  V.Create = internName("FsCreate");
  V.Unlink = internName("FsUnlink");
  V.Write = internName("FsWrite");
  V.Append = internName("FsAppend");
  V.Read = internName("FsRead");
  V.List = internName("FsList");
  V.Sync = internName("FsSync");
  V.OpDir = internName("fs.dir");
  V.OpInode = internName("fs.inode");
  V.OpBlock = internName("fs.block");
  return V;
}

//===----------------------------------------------------------------------===//
// On-disk images
//===----------------------------------------------------------------------===//

Bytes Inode::serialize() const {
  ByteWriter W;
  W.u8(Used ? 1 : 0);
  W.varint(Size);
  W.varint(Blocks.size());
  for (uint64_t B : Blocks)
    W.varint(B);
  return W.buffer();
}

bool Inode::deserialize(const Bytes &B, Inode &Out) {
  ByteReader R(B.data(), B.size());
  Out.Used = R.u8() != 0;
  Out.Size = R.varint();
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 16))
    return false;
  Out.Blocks.clear();
  for (uint64_t I = 0; I < N; ++I)
    Out.Blocks.push_back(R.varint());
  return R.ok();
}

Bytes Directory::serialize() const {
  ByteWriter W;
  W.varint(Entries.size());
  for (const auto &[Name, Idx] : Entries) {
    W.str(Name);
    W.varint(Idx);
  }
  return W.buffer();
}

bool Directory::deserialize(const Bytes &B, Directory &Out) {
  ByteReader R(B.data(), B.size());
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 16))
    return false;
  Out.Entries.clear();
  for (uint64_t I = 0; I < N; ++I) {
    std::string Name = R.str();
    uint32_t Idx = static_cast<uint32_t>(R.varint());
    if (!R.ok())
      return false;
    Out.Entries.emplace(std::move(Name), Idx);
  }
  return R.ok();
}

//===----------------------------------------------------------------------===//
// ScanFs
//===----------------------------------------------------------------------===//

ScanFs::ScanFs(cache::BoxCache &Cache, chunk::ChunkManager &CM,
               const Options &Opts, Hooks H)
    : Cache(Cache), CM(CM), Opts(Opts), H(H), V(FsVocab::get()) {
  // Lay out the volume: one directory chunk + MaxFiles inode chunks.
  DirHandle = CM.allocate();
  writeDir(Directory(), /*CommitHere=*/false);
  InodeHandles.reserve(Opts.MaxFiles);
  InodeLocks.reserve(Opts.MaxFiles);
  for (uint32_t I = 0; I < Opts.MaxFiles; ++I) {
    InodeHandles.push_back(CM.allocate());
    InodeLocks.push_back(std::make_unique<std::mutex>());
    writeInode(I, Inode(), /*CommitHere=*/false);
  }
}

Directory ScanFs::readDir() {
  Bytes B;
  bool Ok = Cache.read(DirHandle, B);
  assert(Ok && "directory chunk missing");
  (void)Ok;
  Directory D;
  Ok = Directory::deserialize(B, D);
  assert(Ok && "malformed directory chunk");
  return D;
}

void ScanFs::writeDir(const Directory &D, bool CommitHere) {
  Bytes B = D.serialize();
  Cache.write(DirHandle, B);
  H.replayOp(V.OpDir, {Value(B)});
  if (CommitHere)
    H.commit();
}

Inode ScanFs::readInode(uint32_t Idx) {
  Bytes B;
  bool Ok = Cache.read(InodeHandles[Idx], B);
  assert(Ok && "inode chunk missing");
  (void)Ok;
  Inode Ino;
  Ok = Inode::deserialize(B, Ino);
  assert(Ok && "malformed inode chunk");
  return Ino;
}

void ScanFs::writeInode(uint32_t Idx, const Inode &Ino, bool CommitHere) {
  Bytes B = Ino.serialize();
  Cache.write(InodeHandles[Idx], B);
  H.replayOp(V.OpInode, {Value(Idx), Value(B)});
  if (CommitHere)
    H.commit();
}

Bytes ScanFs::readBlock(uint64_t Handle) {
  Bytes B;
  if (!Cache.read(Handle, B))
    return Bytes();
  return B;
}

void ScanFs::writeBlock(uint64_t Handle, const Bytes &B) {
  Cache.write(Handle, B);
  H.replayOp(V.OpBlock, {Value(static_cast<int64_t>(Handle)), Value(B)});
}

std::vector<uint64_t> ScanFs::allocBlocks(const Bytes &Data,
                                          std::vector<Bytes> &Chunks) {
  std::vector<uint64_t> Handles;
  for (size_t Off = 0; Off < Data.size(); Off += Opts.BlockSize) {
    size_t Len = Data.size() - Off;
    if (Len > Opts.BlockSize)
      Len = Opts.BlockSize;
    Chunks.emplace_back(Data.begin() + Off, Data.begin() + Off + Len);
    Handles.push_back(CM.allocate());
  }
  return Handles;
}

bool ScanFs::create(const std::string &Name) {
  MethodScope Scope(H, V.Create, {Value(Name)});
  std::lock_guard Dir(DirLock);
  Directory D = readDir();
  if (D.Entries.count(Name)) {
    H.commit(); // failure: name exists; state unchanged
    Scope.setReturn(Value(false));
    return false;
  }
  // Find a free inode (the directory lock serializes allocation).
  uint32_t Idx = Opts.MaxFiles;
  for (uint32_t I = 0; I < Opts.MaxFiles; ++I) {
    if (!readInode(I).Used) {
      Idx = I;
      break;
    }
  }
  if (Idx == Opts.MaxFiles) {
    H.commit(); // failure: no free inode
    Scope.setReturn(Value(false));
    return false;
  }
  std::lock_guard Ino(*InodeLocks[Idx]);
  CommitBlock Block(H);
  Inode NewIno;
  NewIno.Used = true;
  writeInode(Idx, NewIno, /*CommitHere=*/false);
  D.Entries.emplace(Name, Idx);
  writeDir(D, /*CommitHere=*/true); // visibility: the directory entry
  Scope.setReturn(Value(true));
  return true;
}

bool ScanFs::unlink(const std::string &Name) {
  MethodScope Scope(H, V.Unlink, {Value(Name)});
  std::lock_guard Dir(DirLock);
  Directory D = readDir();
  auto It = D.Entries.find(Name);
  if (It == D.Entries.end()) {
    H.commit();
    Scope.setReturn(Value(false));
    return false;
  }
  uint32_t Idx = It->second;
  std::lock_guard Ino(*InodeLocks[Idx]);
  CommitBlock Block(H);
  D.Entries.erase(It);
  writeDir(D, /*CommitHere=*/true); // visibility: entry removal
  writeInode(Idx, Inode(), /*CommitHere=*/false); // free the inode
  // (Old data blocks are orphaned: write-optimized layouts reclaim them
  // with a background scan; we simply never reuse them.)
  Scope.setReturn(Value(true));
  return true;
}

bool ScanFs::rewriteFile(Name Method, const std::string &FileName,
                         const Bytes &NewContents, bool) {
  if (NewContents.size() >
      static_cast<size_t>(Opts.MaxBlocksPerFile) * Opts.BlockSize) {
    H.commit(); // failure: too large
    return false;
  }

  // Resolve under the directory lock, then hold the inode lock
  // (dir -> inode order, shared with all paths).
  std::unique_lock Dir(DirLock);
  Directory D = readDir();
  auto It = D.Entries.find(FileName);
  if (It == D.Entries.end()) {
    H.commit();
    return false;
  }
  uint32_t Idx = It->second;
  std::unique_lock Ino(*InodeLocks[Idx]);
  Dir.unlock();

  std::vector<Bytes> Chunks;
  std::vector<uint64_t> Handles = allocBlocks(NewContents, Chunks);
  Inode NewIno;
  NewIno.Used = true;
  NewIno.Size = NewContents.size();
  NewIno.Blocks = Handles;

  if (Opts.BuggyEagerInodePublish) {
    // BUG: publish the metadata first, then write the data blocks after
    // releasing the inode lock. A concurrent read resolves the new inode
    // and finds the fresh blocks empty (or half-written).
    {
      CommitBlock Block(H);
      writeInode(Idx, NewIno, /*CommitHere=*/true);
    }
    Ino.unlock();
    Chaos::point();
    for (size_t I = 0; I < Handles.size(); ++I) {
      writeBlock(Handles[I], Chunks[I]);
      Chaos::point();
    }
    (void)Method;
    return true;
  }

  // Correct order: data blocks first, inode last, all under the inode
  // lock and in one commit block; the inode write is the commit point.
  {
    CommitBlock Block(H);
    for (size_t I = 0; I < Handles.size(); ++I)
      writeBlock(Handles[I], Chunks[I]);
    writeInode(Idx, NewIno, /*CommitHere=*/true);
  }
  Ino.unlock();
  return true;
}

bool ScanFs::write(const std::string &Name, const Bytes &Data) {
  MethodScope Scope(H, V.Write, {Value(Name), Value(Data)});
  bool Ok = rewriteFile(V.Write, Name, Data, true);
  Scope.setReturn(Value(Ok));
  return Ok;
}

bool ScanFs::append(const std::string &Name, const Bytes &Data) {
  MethodScope Scope(H, V.Append, {Value(Name), Value(Data)});
  // Snapshot the current contents under the locks, then rewrite.
  Bytes NewContents;
  bool Ok = false;
  {
    std::unique_lock Dir(DirLock);
    Directory D = readDir();
    auto It = D.Entries.find(Name);
    if (It != D.Entries.end()) {
      uint32_t Idx = It->second;
      std::unique_lock Ino(*InodeLocks[Idx]);
      Dir.unlock();
      Inode Cur = readInode(Idx);
      for (uint64_t BH : Cur.Blocks) {
        Bytes Chunk = readBlock(BH);
        NewContents.insert(NewContents.end(), Chunk.begin(), Chunk.end());
      }
      NewContents.resize(Cur.Size);
      NewContents.insert(NewContents.end(), Data.begin(), Data.end());
      if (NewContents.size() <=
          static_cast<size_t>(Opts.MaxBlocksPerFile) * Opts.BlockSize) {
        std::vector<Bytes> Chunks;
        std::vector<uint64_t> Handles = allocBlocks(NewContents, Chunks);
        Inode NewIno;
        NewIno.Used = true;
        NewIno.Size = NewContents.size();
        NewIno.Blocks = Handles;
        if (Opts.BuggyEagerInodePublish) {
          {
            CommitBlock Block(H);
            writeInode(Idx, NewIno, /*CommitHere=*/true);
          }
          Ino.unlock();
          Chaos::point();
          for (size_t I = 0; I < Handles.size(); ++I) {
            writeBlock(Handles[I], Chunks[I]);
            Chaos::point();
          }
        } else {
          CommitBlock Block(H);
          for (size_t I = 0; I < Handles.size(); ++I)
            writeBlock(Handles[I], Chunks[I]);
          writeInode(Idx, NewIno, /*CommitHere=*/true);
        }
        Ok = true;
      }
    }
  }
  if (!Ok)
    H.commit(); // failure paths: state unchanged
  Scope.setReturn(Value(Ok));
  return Ok;
}

Value ScanFs::read(const std::string &Name) {
  MethodScope Scope(H, V.Read, {Value(Name)});
  std::unique_lock Dir(DirLock);
  Directory D = readDir();
  auto It = D.Entries.find(Name);
  if (It == D.Entries.end()) {
    Scope.setReturn(Value());
    return Value();
  }
  uint32_t Idx = It->second;
  std::unique_lock Ino(*InodeLocks[Idx]);
  Dir.unlock();
  Inode Cur = readInode(Idx);
  Bytes Contents;
  for (uint64_t BH : Cur.Blocks) {
    Bytes Chunk = readBlock(BH);
    Contents.insert(Contents.end(), Chunk.begin(), Chunk.end());
  }
  Contents.resize(Cur.Size);
  Value Ret = Value(std::move(Contents));
  Scope.setReturn(Ret);
  return Ret;
}

std::string ScanFs::list() {
  MethodScope Scope(H, V.List, {});
  std::string Out;
  {
    std::lock_guard Dir(DirLock);
    Directory D = readDir();
    for (const auto &[Name, Idx] : D.Entries) {
      (void)Idx;
      if (!Out.empty())
        Out += '\n';
      Out += Name;
    }
  }
  Scope.setReturn(Value(Out));
  return Out;
}

int64_t ScanFs::sync() {
  MethodScope Scope(H, V.Sync, {});
  int64_t Flushed = static_cast<int64_t>(Cache.flush());
  H.commit();
  Scope.setReturn(Value(Flushed));
  return Flushed;
}
