//===- ScanFs.cpp - A Scan-like write-optimized file system ---------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "scanfs/ScanFs.h"

#include "vyrd/Serialize.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::scanfs;

FsVocab FsVocab::get() {
  FsVocab V;
  V.Create = internName("FsCreate");
  V.Unlink = internName("FsUnlink");
  V.Write = internName("FsWrite");
  V.Append = internName("FsAppend");
  V.Read = internName("FsRead");
  V.List = internName("FsList");
  V.Sync = internName("FsSync");
  V.OpDir = internName("fs.dir");
  V.OpInode = internName("fs.inode");
  V.OpBlock = internName("fs.block");
  return V;
}

//===----------------------------------------------------------------------===//
// On-disk images
//===----------------------------------------------------------------------===//

Bytes Inode::serialize() const {
  ByteWriter W;
  W.u8(Used ? 1 : 0);
  W.varint(Size);
  W.varint(Blocks.size());
  for (uint64_t B : Blocks)
    W.varint(B);
  return W.buffer();
}

bool Inode::deserialize(const Bytes &B, Inode &Out) {
  ByteReader R(B.data(), B.size());
  Out.Used = R.u8() != 0;
  Out.Size = R.varint();
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 16))
    return false;
  Out.Blocks.clear();
  for (uint64_t I = 0; I < N; ++I)
    Out.Blocks.push_back(R.varint());
  return R.ok();
}

Bytes Directory::serialize() const {
  ByteWriter W;
  W.varint(Entries.size());
  for (const auto &[Name, Idx] : Entries) {
    W.str(Name);
    W.varint(Idx);
  }
  return W.buffer();
}

bool Directory::deserialize(const Bytes &B, Directory &Out) {
  ByteReader R(B.data(), B.size());
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 16))
    return false;
  Out.Entries.clear();
  for (uint64_t I = 0; I < N; ++I) {
    std::string Name = R.str();
    uint32_t Idx = static_cast<uint32_t>(R.varint());
    if (!R.ok())
      return false;
    Out.Entries.emplace(std::move(Name), Idx);
  }
  return R.ok();
}

//===----------------------------------------------------------------------===//
// ScanFsImpl
//===----------------------------------------------------------------------===//

ScanFsImpl::ScanFsImpl(cache::BoxCache &Cache, chunk::ChunkManager &CM,
                       const Options &Opts, AutoContext &Ctx)
    : Cache(Cache), CM(CM), Opts(Opts), Ctx(Ctx), V(FsVocab::get()),
      DirLock(Ctx) {
  // Lay out the volume: one directory chunk + MaxFiles inode chunks.
  DirHandle = CM.allocate();
  writeDir(Directory(), /*CommitHere=*/false);
  InodeHandles.reserve(Opts.MaxFiles);
  InodeLocks.reserve(Opts.MaxFiles);
  for (uint32_t I = 0; I < Opts.MaxFiles; ++I) {
    InodeHandles.push_back(CM.allocate());
    InodeLocks.push_back(std::make_unique<Mutex>(Ctx));
    writeInode(I, Inode(), /*CommitHere=*/false);
  }
}

Directory ScanFsImpl::readDir() {
  Bytes B;
  bool Ok = Cache.read(DirHandle, B);
  assert(Ok && "directory chunk missing");
  (void)Ok;
  Directory D;
  Ok = Directory::deserialize(B, D);
  assert(Ok && "malformed directory chunk");
  return D;
}

void ScanFsImpl::writeDir(const Directory &D, bool CommitHere) {
  Bytes B = D.serialize();
  Cache.write(DirHandle, B);
  Ctx.replayOp(V.OpDir, {Value(B)});
  if (CommitHere)
    Ctx.commit();
}

Inode ScanFsImpl::readInode(uint32_t Idx) {
  Bytes B;
  bool Ok = Cache.read(InodeHandles[Idx], B);
  assert(Ok && "inode chunk missing");
  (void)Ok;
  Inode Ino;
  Ok = Inode::deserialize(B, Ino);
  assert(Ok && "malformed inode chunk");
  return Ino;
}

void ScanFsImpl::writeInode(uint32_t Idx, const Inode &Ino, bool CommitHere) {
  Bytes B = Ino.serialize();
  Cache.write(InodeHandles[Idx], B);
  Ctx.replayOp(V.OpInode, {Value(Idx), Value(B)});
  if (CommitHere)
    Ctx.commit();
}

Bytes ScanFsImpl::readBlock(uint64_t Handle) {
  Bytes B;
  if (!Cache.read(Handle, B))
    return Bytes();
  return B;
}

void ScanFsImpl::writeBlock(uint64_t Handle, const Bytes &B) {
  Cache.write(Handle, B);
  Ctx.replayOp(V.OpBlock, {Value(static_cast<int64_t>(Handle)), Value(B)});
}

std::vector<uint64_t> ScanFsImpl::allocBlocks(const Bytes &Data,
                                              std::vector<Bytes> &Chunks) {
  std::vector<uint64_t> Handles;
  for (size_t Off = 0; Off < Data.size(); Off += Opts.BlockSize) {
    size_t Len = Data.size() - Off;
    if (Len > Opts.BlockSize)
      Len = Opts.BlockSize;
    Chunks.emplace_back(Data.begin() + Off, Data.begin() + Off + Len);
    Handles.push_back(CM.allocate());
  }
  return Handles;
}

bool ScanFsImpl::create(const std::string &Name) {
  LockGuard Dir(DirLock);
  Directory D = readDir();
  if (D.Entries.count(Name))
    return false; // name exists; always permitted, auto-commit
  // Find a free inode (the directory lock serializes allocation).
  uint32_t Idx = Opts.MaxFiles;
  for (uint32_t I = 0; I < Opts.MaxFiles; ++I) {
    if (!readInode(I).Used) {
      Idx = I;
      break;
    }
  }
  if (Idx == Opts.MaxFiles)
    return false; // no free inode; auto-commit
  LockGuard Ino(*InodeLocks[Idx]);
  Inode NewIno;
  NewIno.Used = true;
  writeInode(Idx, NewIno, /*CommitHere=*/false);
  D.Entries.emplace(Name, Idx);
  writeDir(D, /*CommitHere=*/true); // visibility: the directory entry
  return true;
}

bool ScanFsImpl::unlink(const std::string &Name) {
  LockGuard Dir(DirLock);
  Directory D = readDir();
  auto It = D.Entries.find(Name);
  if (It == D.Entries.end()) {
    // A false return is only legal while the name is actually absent, so
    // the failure commits under the directory lock.
    Ctx.commit();
    return false;
  }
  uint32_t Idx = It->second;
  LockGuard Ino(*InodeLocks[Idx]);
  D.Entries.erase(It);
  writeDir(D, /*CommitHere=*/true); // visibility: entry removal
  writeInode(Idx, Inode(), /*CommitHere=*/false); // free the inode
  // (Old data blocks are orphaned: write-optimized layouts reclaim them
  // with a background scan; we simply never reuse them.)
  return true;
}

bool ScanFsImpl::rewriteFile(const std::string &FileName,
                             const Bytes &NewContents) {
  if (NewContents.size() >
      static_cast<size_t>(Opts.MaxBlocksPerFile) * Opts.BlockSize)
    return false; // too large; always permitted, auto-commit

  // Resolve under the directory lock, then hold the inode lock
  // (dir -> inode order, shared with all paths).
  UniqueLock Dir(DirLock);
  Directory D = readDir();
  auto It = D.Entries.find(FileName);
  if (It == D.Entries.end())
    return false; // absent; always permitted, auto-commit
  uint32_t Idx = It->second;
  UniqueLock Ino(*InodeLocks[Idx]);
  Dir.unlock();

  std::vector<Bytes> Chunks;
  std::vector<uint64_t> Handles = allocBlocks(NewContents, Chunks);
  Inode NewIno;
  NewIno.Used = true;
  NewIno.Size = NewContents.size();
  NewIno.Blocks = Handles;

  if (Opts.BuggyEagerInodePublish) {
    // BUG: publish the metadata first, then write the data blocks after
    // releasing the inode lock. A concurrent read resolves the new inode
    // and finds the fresh blocks empty (or half-written).
    writeInode(Idx, NewIno, /*CommitHere=*/true);
    Ino.unlock();
    Chaos::point();
    for (size_t I = 0; I < Handles.size(); ++I) {
      writeBlock(Handles[I], Chunks[I]);
      Chaos::point();
    }
    return true;
  }

  // Correct order: data blocks first, inode last, all under the inode
  // lock in one commit bracket; the inode write is the commit point.
  for (size_t I = 0; I < Handles.size(); ++I)
    writeBlock(Handles[I], Chunks[I]);
  writeInode(Idx, NewIno, /*CommitHere=*/true);
  Ino.unlock();
  return true;
}

bool ScanFsImpl::write(const std::string &Name, const Bytes &Data) {
  return rewriteFile(Name, Data);
}

bool ScanFsImpl::append(const std::string &Name, const Bytes &Data) {
  // Snapshot the current contents under the locks, then rewrite.
  Bytes NewContents;
  bool Ok = false;
  {
    UniqueLock Dir(DirLock);
    Directory D = readDir();
    auto It = D.Entries.find(Name);
    if (It != D.Entries.end()) {
      uint32_t Idx = It->second;
      UniqueLock Ino(*InodeLocks[Idx]);
      Dir.unlock();
      Inode Cur = readInode(Idx);
      for (uint64_t BH : Cur.Blocks) {
        Bytes Chunk = readBlock(BH);
        NewContents.insert(NewContents.end(), Chunk.begin(), Chunk.end());
      }
      NewContents.resize(Cur.Size);
      NewContents.insert(NewContents.end(), Data.begin(), Data.end());
      if (NewContents.size() <=
          static_cast<size_t>(Opts.MaxBlocksPerFile) * Opts.BlockSize) {
        std::vector<Bytes> Chunks;
        std::vector<uint64_t> Handles = allocBlocks(NewContents, Chunks);
        Inode NewIno;
        NewIno.Used = true;
        NewIno.Size = NewContents.size();
        NewIno.Blocks = Handles;
        if (Opts.BuggyEagerInodePublish) {
          writeInode(Idx, NewIno, /*CommitHere=*/true);
          Ino.unlock();
          Chaos::point();
          for (size_t I = 0; I < Handles.size(); ++I) {
            writeBlock(Handles[I], Chunks[I]);
            Chaos::point();
          }
        } else {
          for (size_t I = 0; I < Handles.size(); ++I)
            writeBlock(Handles[I], Chunks[I]);
          writeInode(Idx, NewIno, /*CommitHere=*/true);
        }
        Ok = true;
      }
    }
  }
  // Failure paths leave the state unchanged and are always permitted;
  // the auto layer commits them.
  return Ok;
}

Value ScanFsImpl::read(const std::string &Name) {
  UniqueLock Dir(DirLock);
  Directory D = readDir();
  auto It = D.Entries.find(Name);
  if (It == D.Entries.end())
    return Value();
  uint32_t Idx = It->second;
  UniqueLock Ino(*InodeLocks[Idx]);
  Dir.unlock();
  Inode Cur = readInode(Idx);
  Bytes Contents;
  for (uint64_t BH : Cur.Blocks) {
    Bytes Chunk = readBlock(BH);
    Contents.insert(Contents.end(), Chunk.begin(), Chunk.end());
  }
  Contents.resize(Cur.Size);
  return Value(std::move(Contents));
}

std::string ScanFsImpl::list() {
  std::string Out;
  LockGuard Dir(DirLock);
  Directory D = readDir();
  for (const auto &[Name, Idx] : D.Entries) {
    (void)Idx;
    if (!Out.empty())
      Out += '\n';
    Out += Name;
  }
  return Out;
}

int64_t ScanFsImpl::sync() {
  // Cache maintenance: the spec accepts any count; auto-commit suffices.
  return static_cast<int64_t>(Cache.flush());
}
